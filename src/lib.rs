//! # txproc
//!
//! **Concurrency control and recovery for transactional processes** — a
//! from-scratch Rust reproduction of H. Schuldt, G. Alonso, H.-J. Schek,
//! *"Concurrency Control and Recovery in Transactional Process Management"*,
//! PODS 1999.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] (`txproc-core`) — the formal model: flex processes
//!   (compensatable / pivot / retriable activities, preference-ordered
//!   alternatives), process schedules, completed schedules (Definition 8),
//!   reducibility RED (Definition 9), prefix-reducibility **PRED**
//!   (Definition 10), process-recoverability (Definition 11), and the
//!   scheduling protocol of Lemmas 1–3,
//! * [`subsystem`] (`txproc-subsystem`) — simulated transactional
//!   subsystems: local transactions, compensation, 2PC, commit-order
//!   (weak order) support, crash simulation,
//! * [`sim`] (`txproc-sim`) — deterministic simulation substrate and
//!   synthetic workload generation,
//! * [`engine`] (`txproc-engine`) — a WISE-style transactional process
//!   scheduler: certified PRED scheduling, deferred 2PC commits, cascading
//!   aborts, crash recovery, plus baseline schedulers,
//! * [`bench`] (`txproc-bench`) — the experiment suite regenerating every
//!   figure and result of the paper (see `EXPERIMENTS.md`).
//!
//! Start with `examples/quickstart.rs`.

#![warn(missing_docs)]

pub use txproc_bench as bench;
pub use txproc_core as core;
pub use txproc_engine as engine;
pub use txproc_sim as sim;
pub use txproc_subsystem as subsystem;
