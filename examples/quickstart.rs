//! Quickstart: define a transactional process, analyze its structure, and
//! check schedules against the paper's PRED criterion.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use txproc_core::activity::Catalog;
use txproc_core::conflict::ConflictMatrix;
use txproc_core::flex::{valid_executions, FlexAnalysis};
use txproc_core::ids::{GlobalActivityId, ProcessId};
use txproc_core::pred::check_pred;
use txproc_core::process::ProcessBuilder;
use txproc_core::schedule::{render, Schedule};
use txproc_core::spec::Spec;

fn main() {
    // 1. Declare the services of the transactional subsystems (Â).
    //    Compensatable services get an auto-registered compensation;
    //    pivots can fail for good; retriables always eventually commit.
    let mut catalog = Catalog::new();
    let (reserve, _) = catalog.compensatable("reserve_room");
    let pay = catalog.pivot("charge_card");
    let confirm = catalog.retriable("send_confirmation");
    let waitlist = catalog.retriable("put_on_waitlist");

    // 2. Declare which services conflict (do not commute). The relation is
    //    closed under perfect commutativity: reserve⁻¹ conflicts whatever
    //    reserve conflicts.
    let mut conflicts = ConflictMatrix::new(&catalog);
    conflicts.declare_self_conflict(&catalog, reserve).unwrap();

    // 3. Define a process P = (A, ≪, ◁): reserve ≪ pay ≪ confirm, with the
    //    preference-ordered alternative pay ≪ waitlist if confirmation work
    //    can't proceed — here: if `pay` fails, fall back to the waitlist.
    let booking = |pid: u32| {
        let mut b = ProcessBuilder::new(ProcessId(pid), format!("booking-{pid}"));
        let a_res = b.activity("reserve", reserve);
        let a_pay = b.activity("pay", pay);
        let a_conf = b.activity("confirm", confirm);
        let a_wait = b.activity("waitlist", waitlist);
        b.chain(&[a_res, a_pay, a_conf]);
        b.precede(a_res, a_wait);
        b.prefer(a_res, a_pay, a_wait);
        b.build(&catalog).expect("valid structure")
    };
    let p1 = booking(1);
    let p2 = booking(2);

    // 4. Verify guaranteed termination (well-formed flex structure, §3.1).
    let analysis = FlexAnalysis::analyze(&p1, &catalog);
    println!(
        "guaranteed termination: {}",
        analysis.has_guaranteed_termination()
    );
    println!("strict well-formed flex: {}", analysis.strict_well_formed);
    println!("valid executions:");
    for e in valid_executions(&p1, &catalog, 16).unwrap() {
        println!("  {e}");
    }

    // 5. Check concurrent schedules for PRED (Definition 10).
    let mut spec = Spec::new(catalog, conflicts);
    spec.add_process(p1);
    spec.add_process(p2);
    let a = |p: u32, k: u32| GlobalActivityId::new(ProcessId(p), txproc_core::ids::ActivityId(k));

    // A clean interleaving: P1's conflicting reserve precedes P2's, and P2
    // holds its pivot until P1 committed.
    let mut good = Schedule::new();
    good.execute(a(1, 0))
        .execute(a(1, 1))
        .execute(a(2, 0))
        .execute(a(1, 2))
        .commit(ProcessId(1))
        .execute(a(2, 1))
        .execute(a(2, 2))
        .commit(ProcessId(2));
    let report = check_pred(&spec, &good).unwrap();
    println!("\nschedule: {}", render(&good));
    println!("PRED: {}", report.pred);

    // The Example-8 trap: P2 reads past P1's uncommitted reserve and then
    // commits its own pivot — if P1 now aborts, reserve⁻¹ closes a conflict
    // cycle. The checker finds the violating prefix.
    let mut bad = Schedule::new();
    bad.execute(a(1, 0)).execute(a(2, 0)).execute(a(2, 1));
    let report = check_pred(&spec, &bad).unwrap();
    println!("\nschedule: {}", render(&bad));
    println!(
        "PRED: {} (first violating prefix: {:?})",
        report.pred, report.first_violation
    );
}
