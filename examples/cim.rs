//! The paper's CIM scenario (Figure 1): a construction process and a
//! production process coupled through the PDM system, executed by the
//! transactional process scheduler.
//!
//! §2.2: "as no inverse for the production activity exists, it must not be
//! executed before the test terminated successfully." The PRED scheduler
//! enforces exactly that; the unsafe concurrency-control-only scheduler does
//! not, and its histories stop being prefix-reducible when the test fails.
//!
//! ```text
//! cargo run --example cim
//! ```

use txproc_bench::scenarios::cim_workload;
use txproc_core::pred::check_pred;
use txproc_core::schedule::render;
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::PolicyKind;

fn main() {
    // 45% failure probability + seed scan: find a run where the test
    // activity of the construction process actually fails.
    let (fx, workload) = cim_workload(0.45);
    for kind in [PolicyKind::Pred, PolicyKind::UnsafeCc] {
        println!("=== scheduler: {} ===", kind.label());
        for seed in 0..200 {
            let result = run(
                &workload,
                RunConfig {
                    policy: kind,
                    seed,
                    check_pred: true,
                    // Stagger arrivals so production reads the BOM the
                    // construction process wrote (Figure 1's timeline).
                    arrival_gap: 70,
                    ..RunConfig::default()
                },
            );
            let test_failed = result.history.events().iter().any(|e| {
                matches!(e, txproc_core::schedule::Event::Fail(g)
                    if *g == fx.construction_activity("test"))
            });
            if !test_failed {
                continue;
            }
            println!("history: {}", render(&result.history));
            println!(
                "committed: {}, aborted: {}, compensations: {}, deferred 2PC commits: {}",
                result.metrics.committed,
                result.metrics.aborted,
                result.metrics.compensations,
                result.metrics.deferred_commits,
            );
            let report = check_pred(&workload.spec, &result.history).unwrap();
            println!(
                "PRED: {}{}",
                report.pred,
                report
                    .first_violation
                    .map(|k| format!(" (violating prefix: {k})"))
                    .unwrap_or_default()
            );
            break;
        }
        println!();
    }
}
