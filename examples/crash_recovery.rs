//! Scheduler crash recovery (§3.3): kill the scheduler mid-run, then
//! recover by group-aborting all active processes from the durable logs —
//! compensations in reverse order, then the retriable forward recovery
//! paths — and verify the extended history reduces (RED).
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use txproc_core::reduction::is_reducible;
use txproc_core::schedule::render;
use txproc_engine::engine::{Engine, RunConfig};
use txproc_engine::recovery::recover;
use txproc_sim::workload::{generate, WorkloadConfig};

fn main() {
    let workload = generate(&WorkloadConfig {
        seed: 11,
        processes: 6,
        conflict_density: 0.4,
        failure_probability: 0.1,
        ..WorkloadConfig::default()
    });

    for crash_after in [3usize, 10, 25] {
        println!("=== crash after {crash_after} history events ===");
        let mut engine = Engine::new(&workload, RunConfig::default());
        engine.run_until_history(crash_after);
        println!("history at crash: {}", render(engine.history()));

        // The scheduler dies: volatile state is gone; the durable history,
        // invocation log, 2PC decision log, and the subsystems survive.
        let image = engine.crash();
        let report = recover(&workload, image).expect("recovery always terminates");
        println!(
            "recovered: {} group-aborted, {} compensations, {} forward-recovery steps, {} in-doubt 2PC groups resolved, {} prepared invocations aborted",
            report.aborted.len(),
            report.compensations,
            report.forward,
            report.resolved_groups,
            report.aborted_prepared,
        );
        println!(
            "extended history is RED: {}",
            is_reducible(&workload.spec, &report.history).unwrap()
        );
        println!();
    }
}
