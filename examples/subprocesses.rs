//! Subprocess composition — the paper's stated future work: "identify
//! transactional execution guarantees of subprocesses".
//!
//! Embedding a subprocess does *not* automatically preserve guaranteed
//! termination; the composition must be re-analyzed. This example shows a
//! composition that keeps the guarantee, one that silently breaks it, and
//! how an all-retriable fallback subprocess *repairs* a non-guaranteed
//! parent (the recursive well-formed flex shape).
//!
//! ```text
//! cargo run --example subprocesses
//! ```

use txproc_core::activity::Catalog;
use txproc_core::compose::{compose, Attach};
use txproc_core::flex::FlexAnalysis;
use txproc_core::ids::{ActivityId, ProcessId};
use txproc_core::process::ProcessBuilder;

fn main() {
    let mut catalog = Catalog::new();
    let (order, _) = catalog.compensatable("order_parts");
    let assemble = catalog.pivot("assemble");
    let ship = catalog.retriable("ship");
    let (draft, _) = catalog.compensatable("draft_docs");
    let publish = catalog.pivot("publish_docs");
    let archive = catalog.retriable("archive");

    // Parent: order ≪ assemble ≪ ship — well formed.
    let mut b = ProcessBuilder::new(ProcessId(1), "manufacture");
    let a0 = b.activity("order", order);
    let a1 = b.activity("assemble", assemble);
    let a2 = b.activity("ship", ship);
    b.chain(&[a0, a1, a2]);
    let parent = b.build(&catalog).unwrap();
    println!(
        "parent guaranteed: {}",
        FlexAnalysis::analyze(&parent, &catalog).has_guaranteed_termination()
    );

    // Documentation subprocess with its own pivot.
    let mut b = ProcessBuilder::new(ProcessId(2), "document");
    let d0 = b.activity("draft", draft);
    let d1 = b.activity("publish", publish);
    b.precede(d0, d1);
    let docs = b.build(&catalog).unwrap();

    // Embedding it after `ship` BREAKS the parent's guarantee: the
    // subprocess's pivot can fail after the parent is already F-REC.
    let broken = compose(&catalog, &parent, &docs, Attach::After(a2), ProcessId(3)).unwrap();
    println!(
        "manufacture + document guaranteed: {} ({:?})",
        broken.analysis.has_guaranteed_termination(),
        broken.analysis.guaranteed_termination
    );

    // An all-retriable archival subprocess as the pivot's fallback REPAIRS
    // the composition: this is exactly the recursive well-formed shape.
    let mut b = ProcessBuilder::new(ProcessId(4), "archive_only");
    let r0 = b.activity("archive", archive);
    let _ = r0;
    let fallback = b.build(&catalog).unwrap();
    // Rebuild a parent whose pivot is followed by the risky doc subprocess…
    let mut b = ProcessBuilder::new(ProcessId(5), "manufacture2");
    let m0 = b.activity("order", order);
    let m1 = b.activity("assemble", assemble);
    let m2 = b.activity("draft", draft);
    let m3 = b.activity("publish", publish);
    b.chain(&[m0, m1, m2, m3]);
    let risky = b.build(&catalog).unwrap();
    println!(
        "risky parent guaranteed: {}",
        FlexAnalysis::analyze(&risky, &catalog).has_guaranteed_termination()
    );
    let repaired = compose(
        &catalog,
        &risky,
        &fallback,
        Attach::AsFallbackOf(ActivityId(m1.0)),
        ProcessId(6),
    )
    .unwrap();
    println!(
        "repaired composition guaranteed: {} (strict well-formed: {})",
        repaired.analysis.has_guaranteed_termination(),
        repaired.analysis.strict_well_formed
    );
}
