//! §3.6 — strong vs. weak orders between conflicting activities.
//!
//! A *strong* order executes the second activity only after the first
//! terminated. A *weak* order lets both run in parallel as long as the
//! subsystem guarantees commit-order serializability; the scheduler only
//! classifies which conflicting pairs may be weakened (same subsystem,
//! commit-order support). This example shows the classification, the
//! makespan gain, the retriable restart cascade, and the subsystem-level
//! commit-order machinery.
//!
//! ```text
//! cargo run --example weak_orders
//! ```

use txproc_core::ids::{ActivityId, GlobalActivityId, ProcessId};
use txproc_core::weak::{classify, makespan, restart_cascade, OrderConstraint, OrderKind, Task};
use txproc_subsystem::kv::{Key, Program};
use txproc_subsystem::subsystem::{Subsystem, SubsystemId};

fn main() {
    // A chain of 6 conflicting activities (e.g. updates of the same PDM
    // object by six processes), 10 time units each.
    let tasks: Vec<Task> = (0..6)
        .map(|i| Task {
            gid: GlobalActivityId::new(ProcessId(i), ActivityId(0)),
            duration: 10,
            subsystem: if i < 4 { 0 } else { 1 },
        })
        .collect();

    // Classification: pairs on the same commit-order-capable subsystem can
    // be weakly ordered, cross-subsystem pairs stay strong.
    println!("pair classification (subsystem 0 supports commit order):");
    let constraints: Vec<OrderConstraint> = tasks
        .windows(2)
        .map(|w| {
            let kind = classify(&w[0], &w[1], |sid| sid == 0);
            println!(
                "  {} -> {}: {:?} (subsystems {} / {})",
                w[0].gid, w[1].gid, kind, w[0].subsystem, w[1].subsystem
            );
            OrderConstraint {
                first: w[0].gid,
                second: w[1].gid,
                kind,
            }
        })
        .collect();

    let strong_only: Vec<OrderConstraint> = constraints
        .iter()
        .map(|c| OrderConstraint {
            kind: OrderKind::Strong,
            ..*c
        })
        .collect();
    let strong = makespan(&tasks, &strong_only).unwrap();
    let mixed = makespan(&tasks, &constraints).unwrap();
    println!("\nmakespan strong-only: {}", strong.makespan);
    println!("makespan with weak orders: {}", mixed.makespan);
    println!(
        "speedup: {:.2}x",
        strong.makespan as f64 / mixed.makespan as f64
    );

    // §3.6's restart rule: when the weakly-ordered predecessor (a retriable
    // activity) aborts transiently and restarts, the dependent restarts too
    // — without raising a process-level exception.
    let (f1, f2) = restart_cascade(&tasks[0], &tasks[1], 50);
    println!("\nrestart cascade at t=50: predecessor finishes {f1}, dependent {f2}");

    // The subsystem machinery behind weak orders: both transactions execute
    // concurrently, the commit order is enforced.
    let mut sub = Subsystem::new(SubsystemId(0), "pdm");
    let (t1, _) = sub.execute(&Program::add(Key(1), 5)).unwrap();
    let (t2, _) = sub.execute(&Program::add(Key(1), 7)).unwrap();
    sub.order_commits(t1, t2).unwrap();
    println!(
        "\nsubsystem: t2 commit before t1 -> {:?}",
        sub.commit(t2).unwrap_err()
    );
    sub.commit(t1).unwrap();
    sub.commit(t2).unwrap();
    println!("after ordered commits, key 1 = {:?}", sub.peek(Key(1)));
}
