//! A workflow-management scenario: many concurrent trip-booking processes
//! (flight ≪ hotel ≪ charge ≪ ticket, with a refund-voucher fallback)
//! competing for shared inventory, scheduled by the PRED protocol.
//!
//! Demonstrates the engine end to end: alternative execution paths on pivot
//! failure, compensation, deferred 2PC commits, cascading aborts, metrics.
//!
//! ```text
//! cargo run --example travel_booking
//! ```

use txproc_core::activity::Catalog;
use txproc_core::conflict::ConflictMatrix;
use txproc_core::ids::ProcessId;
use txproc_core::process::ProcessBuilder;
use txproc_core::spec::Spec;
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::PolicyKind;
use txproc_sim::workload::{Workload, WorkloadConfig};
use txproc_subsystem::deploy::Deployment;
use txproc_subsystem::kv::{Key, KvOp, Program};
use txproc_subsystem::subsystem::SubsystemId;

fn main() {
    let trips = 8;
    // Services: booking decrements shared inventory (compensatable),
    // charging is the pivot, ticketing/vouchers are retriable.
    let mut catalog = Catalog::new();
    let (book_flight, _) = catalog.compensatable("book_flight");
    let (book_hotel, _) = catalog.compensatable("book_hotel");
    let charge = catalog.pivot("charge_card");
    let ticket = catalog.retriable("issue_ticket");
    let voucher = catalog.retriable("issue_voucher");

    let mut conflicts = ConflictMatrix::new(&catalog);
    for s in [book_flight, book_hotel] {
        conflicts.declare_self_conflict(&catalog, s).unwrap();
    }

    let mut spec_processes = Vec::new();
    for i in 0..trips {
        let mut b = ProcessBuilder::new(ProcessId(i), format!("trip-{i}"));
        let f = b.activity("flight", book_flight);
        let h = b.activity("hotel", book_hotel);
        let c = b.activity("charge", charge);
        let t = b.activity("ticket", ticket);
        let v = b.activity("voucher", voucher);
        b.chain(&[f, h, c, t]);
        // If charging ultimately cannot complete the preferred path, issue a
        // voucher instead (the all-retriable fallback of the flex structure).
        b.precede(h, v);
        b.prefer(h, c, v);
        spec_processes.push(b.build(&catalog).expect("valid trip process"));
    }

    // Physical deployment: airline, hotel chain, payment provider, mailer.
    let airline = SubsystemId(0);
    let hotels = SubsystemId(1);
    let payments = SubsystemId(2);
    let mailer = SubsystemId(3);
    let seats = Key(1);
    let rooms = Key(2);
    let mut deployment = Deployment::new();
    deployment.place_with_duration(book_flight, airline, Program::add(seats, -1), 8);
    deployment.place_with_duration(book_hotel, hotels, Program::add(rooms, -1), 6);
    deployment.place_with_duration(
        charge,
        payments,
        Program::empty().then(KvOp::Add(Key(3), 100)),
        12,
    );
    deployment.place_with_duration(ticket, mailer, Program::add(Key(4), 1), 3);
    deployment.place_with_duration(voucher, mailer, Program::add(Key(5), 1), 3);

    let mut spec = Spec::new(catalog, conflicts);
    for p in spec_processes {
        spec.add_process(p);
    }
    let workload = Workload {
        spec,
        deployment,
        config: WorkloadConfig {
            failure_probability: 0.25,
            ..WorkloadConfig::default()
        },
    };

    for kind in [PolicyKind::Pred, PolicyKind::Serial] {
        let result = run(
            &workload,
            RunConfig {
                policy: kind,
                seed: 2026,
                check_pred: true,
                ..RunConfig::default()
            },
        );
        println!("=== scheduler: {} ===", kind.label());
        println!(
            "makespan: {}  committed: {}/{trips}  aborted: {}  compensations: {}  retries: {}",
            result.metrics.makespan,
            result.metrics.committed,
            result.metrics.aborted,
            result.metrics.compensations,
            result.metrics.retries,
        );
        println!(
            "latency p50/p95: {:?}/{:?}  waits: {}  deferred 2PC commits: {}",
            result.metrics.latency_percentile(0.5),
            result.metrics.latency_percentile(0.95),
            result.metrics.waits,
            result.metrics.deferred_commits,
        );
        println!("history PRED: {:?}\n", result.pred_ok);
    }
}
