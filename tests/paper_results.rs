//! Cross-crate integration tests: every figure and formal claim of the
//! paper, checked end to end through the public API.

use txproc::bench::scenarios::{figure4a_st2, figure4b_st2, figure7, figure9};
use txproc::core::fixtures::paper_world;
use txproc::core::flex::{valid_executions, FlexAnalysis};
use txproc::core::ids::ProcessId;
use txproc::core::pred::{check_pred, is_pred};
use txproc::core::recoverability::{is_proc_rec, sot_like, theorem1_holds};
use txproc::core::reduction::{is_reducible, reduce};
use txproc::core::schedule::Schedule;
use txproc::core::serializability::is_serializable;

#[test]
fn figure2_p1_is_well_formed() {
    let fx = paper_world();
    let analysis = FlexAnalysis::analyze(&fx.p1, &fx.spec.catalog);
    assert!(analysis.has_guaranteed_termination());
    assert!(analysis.strict_well_formed);
}

#[test]
fn figure3_four_valid_executions() {
    let fx = paper_world();
    let execs = valid_executions(&fx.p1, &fx.spec.catalog, 64).unwrap();
    assert_eq!(execs.len(), 4);
    assert_eq!(execs.iter().filter(|e| e.committed).count(), 3);
    assert_eq!(execs.iter().filter(|e| !e.committed).count(), 1);
}

#[test]
fn figure4_serializability_verdicts() {
    let fx = paper_world();
    assert!(is_serializable(&fx.spec, &figure4a_st2(&fx)).unwrap());
    assert!(!is_serializable(&fx.spec, &figure4b_st2(&fx)).unwrap());
}

#[test]
fn example6_st2_reduces_with_one_cancelled_pair() {
    let fx = paper_world();
    let completed = txproc::core::completion::complete(&fx.spec, &figure4a_st2(&fx)).unwrap();
    let outcome = reduce(&fx.spec, &completed);
    assert!(outcome.reducible);
    assert_eq!(outcome.cancelled_pairs.len(), 1);
}

#[test]
fn example8_red_but_not_pred() {
    let fx = paper_world();
    let report = check_pred(&fx.spec, &figure4a_st2(&fx)).unwrap();
    assert!(report.reducible());
    assert!(!report.pred);
}

#[test]
fn figure7_is_pred() {
    let fx = paper_world();
    assert!(is_pred(&fx.spec, &figure7(&fx)).unwrap());
}

#[test]
fn figure9_quasi_commit_is_pred() {
    let fx = paper_world();
    assert!(is_pred(&fx.spec, &figure9(&fx)).unwrap());
}

#[test]
fn theorem1_on_paper_schedules() {
    let fx = paper_world();
    for s in [
        figure4a_st2(&fx),
        figure4b_st2(&fx),
        figure7(&fx),
        figure9(&fx),
    ] {
        assert!(theorem1_holds(&fx.spec, &s).unwrap());
    }
}

#[test]
fn pred_schedule_is_serializable_and_proc_rec() {
    let fx = paper_world();
    let s = figure7(&fx);
    assert!(is_pred(&fx.spec, &s).unwrap());
    assert!(is_serializable(&fx.spec, &s).unwrap());
    assert!(is_proc_rec(&fx.spec, &s).unwrap());
}

#[test]
fn sot_like_criterion_is_unsound_for_processes() {
    // §3.5: a criterion inspecting only S accepts the non-PRED prefix S_t1.
    let fx = paper_world();
    let mut s_t1 = Schedule::new();
    s_t1.execute(fx.a(1, 1))
        .execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3));
    assert!(sot_like(&fx.spec, &s_t1).unwrap());
    assert!(!is_pred(&fx.spec, &s_t1).unwrap());
}

#[test]
fn full_failure_handling_execution_is_reducible() {
    // P₁ takes its alternative path after a1_4 fails; P₂ commits; the whole
    // history must be reducible and PRED.
    let fx = paper_world();
    let mut s = Schedule::new();
    for k in 1..=5 {
        s.execute(fx.a(2, k));
    }
    s.commit(ProcessId(2));
    s.execute(fx.a(1, 1))
        .execute(fx.a(1, 2))
        .execute(fx.a(1, 3))
        .fail(fx.a(1, 4))
        .compensate(fx.a(1, 3))
        .execute(fx.a(1, 5))
        .execute(fx.a(1, 6))
        .commit(ProcessId(1));
    assert!(is_reducible(&fx.spec, &s).unwrap());
    assert!(is_pred(&fx.spec, &s).unwrap());
}
