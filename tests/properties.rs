//! Property-based tests over the whole stack: random legal histories,
//! random workloads through the engine, and cross-validation of the two RED
//! deciders.

mod common;

use proptest::prelude::*;
use txproc::core::fixtures::paper_world;
use txproc::core::pred::{check_pred, is_pred};
use txproc::core::pred_incremental::{check_pred_incremental, IncrementalPred};
use txproc::core::recoverability::theorem1_holds;
use txproc::core::reduction::{reduce, reduce_exhaustive, ExhaustiveOutcome};
use txproc::core::serializability::is_serializable_committed;
use txproc::engine::engine::{run, RunConfig};
use txproc::engine::policy::PolicyKind;
use txproc::sim::workload::{generate, WorkloadConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random legal history replays cleanly and satisfies Theorem 1.
    #[test]
    fn random_histories_satisfy_theorem1(seed in 0u64..5000) {
        let fx = paper_world();
        let s = common::random_history(&fx, seed, 40);
        prop_assert!(s.replay(&fx.spec).is_ok());
        prop_assert!(theorem1_holds(&fx.spec, &s).unwrap());
    }

    /// PRED is prefix-closed by construction: every prefix of a PRED history
    /// is PRED.
    #[test]
    fn pred_is_prefix_closed(seed in 0u64..5000, cut in 0usize..30) {
        let fx = paper_world();
        let s = common::random_history(&fx, seed, 40);
        if is_pred(&fx.spec, &s).unwrap() {
            let prefix = s.prefix(cut.min(s.len()));
            prop_assert!(is_pred(&fx.spec, &prefix).unwrap());
        }
    }

    /// The graph-based RED decider agrees with the literal rule-rewriting
    /// search on random completed schedules.
    #[test]
    fn red_deciders_agree(seed in 0u64..5000) {
        let fx = paper_world();
        let s = common::random_history(&fx, seed, 14);
        let completed = txproc::core::completion::complete(&fx.spec, &s).unwrap();
        if completed.ops.len() > 12 {
            // Keep the exhaustive search tractable.
            return Ok(());
        }
        let fast = reduce(&fx.spec, &completed).reducible;
        match reduce_exhaustive(&fx.spec, &completed, 400_000) {
            ExhaustiveOutcome::Reducible(_) => prop_assert!(fast, "rewriter found a serial form, graph decider said no"),
            ExhaustiveOutcome::NotReducible => prop_assert!(!fast, "graph decider said reducible, exhaustive search disagrees"),
            ExhaustiveOutcome::Inconclusive => {}
        }
    }

    /// PRED histories have serializable committed projections.
    #[test]
    fn pred_implies_committed_serializability(seed in 0u64..5000) {
        let fx = paper_world();
        let s = common::random_history(&fx, seed, 40);
        if is_pred(&fx.spec, &s).unwrap() {
            prop_assert!(is_serializable_committed(&fx.spec, &s).unwrap());
        }
    }

    /// The certified engine always emits PRED histories and terminates every
    /// process, across random workloads.
    #[test]
    fn engine_emits_pred_histories(seed in 0u64..400, density in 0.0f64..0.8, failures in 0.0f64..0.4) {
        let w = generate(&WorkloadConfig {
            seed,
            processes: 5,
            conflict_density: density,
            failure_probability: failures,
            ..WorkloadConfig::default()
        });
        let r = run(&w, RunConfig { seed, ..RunConfig::default() });
        prop_assert!(r.stalled.is_empty(), "stalled: {:?}", r.stalled);
        prop_assert_eq!(r.metrics.terminated(), 5);
        prop_assert!(
            is_pred(&w.spec, &r.history).unwrap(),
            "non-PRED history: {}",
            txproc::core::schedule::render(&r.history)
        );
    }

    /// Serial execution is always PRED regardless of workload.
    #[test]
    fn serial_engine_is_always_pred(seed in 0u64..400) {
        let w = generate(&WorkloadConfig {
            seed,
            processes: 4,
            conflict_density: 0.6,
            failure_probability: 0.3,
            ..WorkloadConfig::default()
        });
        let r = run(
            &w,
            RunConfig {
                policy: PolicyKind::Serial,
                seed,
                ..RunConfig::default()
            },
        );
        prop_assert!(is_pred(&w.spec, &r.history).unwrap());
    }

    /// Engine histories always replay as legal schedules (Definition 7.1).
    #[test]
    fn engine_histories_replay(seed in 0u64..400, kind_idx in 0usize..6) {
        let kind = PolicyKind::all()[kind_idx];
        let w = generate(&WorkloadConfig {
            seed,
            processes: 4,
            conflict_density: 0.4,
            failure_probability: 0.2,
            ..WorkloadConfig::default()
        });
        let r = run(&w, RunConfig { policy: kind, seed, ..RunConfig::default() });
        prop_assert!(r.history.replay(&w.spec).is_ok());
    }

    /// Differential oracle over engine-emitted histories: the incremental
    /// certifier's full report equals the batch reference on every random
    /// workload the certified engine produces.
    #[test]
    fn incremental_agrees_with_batch_on_engine_histories(
        seed in 0u64..400,
        density in 0.0f64..0.8,
        failures in 0.0f64..0.4,
    ) {
        let w = generate(&WorkloadConfig {
            seed,
            processes: 5,
            conflict_density: density,
            failure_probability: failures,
            ..WorkloadConfig::default()
        });
        let r = run(&w, RunConfig { seed, ..RunConfig::default() });
        let batch = check_pred(&w.spec, &r.history).unwrap();
        let incremental = check_pred_incremental(&w.spec, &r.history).unwrap();
        prop_assert_eq!(batch, incremental);
    }

    /// On small random histories the incremental certifier also agrees with
    /// the literal rule-rewriting search (`reduce_exhaustive`) prefix by
    /// prefix — a second, independently derived oracle.
    #[test]
    fn incremental_agrees_with_exhaustive_on_small_histories(seed in 0u64..5000) {
        let fx = paper_world();
        let s = common::random_history(&fx, seed, 10);
        let report = check_pred_incremental(&fx.spec, &s).unwrap();
        for cut in 0..=s.len() {
            let prefix = s.prefix(cut);
            let completed = txproc::core::completion::complete(&fx.spec, &prefix).unwrap();
            if completed.ops.len() > 12 {
                return Ok(());
            }
            match reduce_exhaustive(&fx.spec, &completed, 400_000) {
                ExhaustiveOutcome::Reducible(_) => prop_assert!(
                    report.prefix_reducible[cut],
                    "prefix {cut}: rewriter reduces, incremental certifier says no"
                ),
                ExhaustiveOutcome::NotReducible => prop_assert!(
                    !report.prefix_reducible[cut],
                    "prefix {cut}: incremental certifier says reducible, exhaustive search disagrees"
                ),
                ExhaustiveOutcome::Inconclusive => {}
            }
        }
    }

    /// The PRED report's prefix vector is consistent with its verdicts.
    #[test]
    fn pred_report_is_consistent(seed in 0u64..2000) {
        let fx = paper_world();
        let s = common::random_history(&fx, seed, 25);
        let report = check_pred(&fx.spec, &s).unwrap();
        prop_assert_eq!(report.prefix_reducible.len(), s.len() + 1);
        prop_assert_eq!(report.pred, report.prefix_reducible.iter().all(|&r| r));
        match report.first_violation {
            Some(k) => {
                prop_assert!(!report.prefix_reducible[k]);
                prop_assert!(report.prefix_reducible[..k].iter().all(|&r| r));
            }
            None => prop_assert!(report.pred),
        }
    }
}

/// The central differential oracle of the incremental certifier: across 256
/// random legal histories, drive [`IncrementalPred`] event by event and
/// demand that (a) every pure `certify` verdict, (b) every applied `record`
/// verdict, and (c) the final report agree exactly with the batch
/// `check_pred` reference. Deterministic (fixed seeds), so a failure is a
/// one-line repro.
#[test]
fn incremental_certifier_agrees_with_batch_event_by_event() {
    let fx = paper_world();
    for seed in 0..256u64 {
        let s = common::random_history(&fx, seed, 24);
        let batch = check_pred(&fx.spec, &s).unwrap();
        let mut inc = IncrementalPred::new(&fx.spec);
        for (i, event) in s.events().iter().enumerate() {
            let previewed = inc
                .certify(event)
                .unwrap_or_else(|e| panic!("seed {seed} event {i}: certify failed: {e}"));
            assert_eq!(
                previewed.reducible,
                batch.prefix_reducible[i + 1],
                "seed {seed} event {i}: certify disagrees with batch on prefix {}",
                i + 1
            );
            let applied = inc
                .record(event)
                .unwrap_or_else(|e| panic!("seed {seed} event {i}: record failed: {e}"));
            assert_eq!(
                previewed, applied,
                "seed {seed} event {i}: certify and record verdicts diverge"
            );
        }
        assert_eq!(
            inc.report(),
            batch,
            "seed {seed}: final incremental report diverges from batch:\n{}",
            txproc::core::schedule::render(&s)
        );
    }
}
