//! Engine-level integration tests spanning crates: scheduler invariants,
//! crash recovery sweeps, the thread-per-process driver, and the CIM
//! scenario's specific guarantees.

use txproc::core::pred::is_pred;
use txproc::core::reduction::is_reducible;
use txproc::core::schedule::Event;
use txproc::engine::concurrent::{run_concurrent, ConcurrentConfig};
use txproc::engine::engine::{run, Engine, RunConfig};
use txproc::engine::policy::PolicyKind;
use txproc::engine::recovery::recover;
use txproc::sim::workload::{generate, WorkloadConfig};

fn workload(
    seed: u64,
    processes: usize,
    density: f64,
    failures: f64,
) -> txproc::sim::workload::Workload {
    generate(&WorkloadConfig {
        seed,
        processes,
        conflict_density: density,
        failure_probability: failures,
        ..WorkloadConfig::default()
    })
}

#[test]
fn certified_scheduler_is_pred_across_seeds() {
    for seed in 0..12 {
        let w = workload(seed, 6, 0.4, 0.2);
        let r = run(
            &w,
            RunConfig {
                seed,
                check_pred: true,
                ..RunConfig::default()
            },
        );
        assert!(r.stalled.is_empty(), "seed {seed} stalled");
        assert_eq!(r.pred_ok, Some(true), "seed {seed} violated PRED");
        assert_eq!(r.metrics.terminated(), 6, "seed {seed} lost processes");
    }
}

#[test]
fn crash_recovery_sweep_is_always_reducible() {
    let w = workload(21, 8, 0.3, 0.15);
    // First find how long a full run's history is.
    let full = run(&w, RunConfig::default());
    let len = full.history.len();
    for crash_at in (0..=len).step_by(3) {
        let mut engine = Engine::new(&w, RunConfig::default());
        engine.run_until_history(crash_at);
        let report = recover(&w, engine.crash()).expect("recovery succeeds");
        assert!(
            is_reducible(&w.spec, &report.history).unwrap(),
            "crash at {crash_at}: not reducible"
        );
        let replay = report.history.replay(&w.spec).unwrap();
        assert!(replay.active_processes().is_empty(), "crash at {crash_at}");
    }
}

#[test]
fn concurrent_driver_matches_invariants() {
    for seed in 0..3 {
        let w = workload(seed + 100, 5, 0.3, 0.15);
        let result = run_concurrent(
            &w,
            ConcurrentConfig {
                seed,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(result.metrics.terminated(), 5, "seed {seed}");
        assert!(
            is_pred(&w.spec, &result.history).unwrap(),
            "seed {seed}: concurrent history not PRED"
        );
    }
}

#[test]
fn unsafe_scheduler_violates_but_serial_never_does() {
    let mut unsafe_violations = 0;
    for seed in 0..12 {
        let w = workload(seed, 6, 0.6, 0.3);
        let unsafe_run = run(
            &w,
            RunConfig {
                policy: PolicyKind::UnsafeCc,
                seed,
                check_pred: true,
                ..RunConfig::default()
            },
        );
        if unsafe_run.pred_ok == Some(false) {
            unsafe_violations += 1;
        }
        let serial_run = run(
            &w,
            RunConfig {
                policy: PolicyKind::Serial,
                seed,
                check_pred: true,
                ..RunConfig::default()
            },
        );
        assert_eq!(
            serial_run.pred_ok,
            Some(true),
            "seed {seed}: serial violated PRED"
        );
    }
    assert!(
        unsafe_violations > 0,
        "unsafe scheduler never violated — suspicious"
    );
}

#[test]
fn cim_production_never_starts_before_construction_outcome() {
    // §2.2: production (no inverse) must not run before the construction
    // test terminated. Under the PRED scheduler, in every run where the
    // test failed, the production pivot must not have committed earlier
    // than the failure.
    let (fx, w) = txproc::bench::scenarios::cim_workload(0.2);
    let mut exercised = 0;
    for seed in 0..80 {
        // Stagger arrivals so production reads the BOM the construction
        // process wrote (the paper's Figure 1 timeline).
        let r = run(
            &w,
            RunConfig {
                seed,
                check_pred: true,
                arrival_gap: 70,
                ..RunConfig::default()
            },
        );
        assert_eq!(r.pred_ok, Some(true), "seed {seed}");
        let events = r.history.events();
        // The outcome of the construction's test activity: success or
        // definitive failure.
        let test_outcome = events.iter().position(|e| {
            matches!(e, Event::Execute(g) | Event::Fail(g)
                if *g == fx.construction_activity("test"))
        });
        let prod_pos = events.iter().position(
            |e| matches!(e, Event::Execute(g) if *g == fx.production_activity("production")),
        );
        // The §2.2 constraint applies when production read the BOM the
        // construction process wrote (pdm_entry before read_bom); if the
        // production process serialized first, it is independent.
        let pdm_pos = events.iter().position(
            |e| matches!(e, Event::Execute(g) if *g == fx.construction_activity("pdm_entry")),
        );
        let read_pos = events.iter().position(
            |e| matches!(e, Event::Execute(g) if *g == fx.production_activity("read_bom")),
        );
        let depends = matches!((pdm_pos, read_pos), (Some(w), Some(r)) if w < r);
        if let (Some(p), true) = (prod_pos, depends) {
            exercised += 1;
            let t = test_outcome.expect("production ran, so the test terminated first");
            assert!(
                p > t,
                "seed {seed}: production committed before the test outcome"
            );
        }
    }
    assert!(exercised > 0, "no run exercised the production case");
}

#[test]
fn deterministic_across_identical_configs() {
    let w = workload(7, 6, 0.4, 0.2);
    let r1 = run(&w, RunConfig::default());
    let r2 = run(&w, RunConfig::default());
    assert_eq!(r1.history, r2.history);
    assert_eq!(r1.metrics.makespan, r2.metrics.makespan);
    assert_eq!(r1.metrics.committed, r2.metrics.committed);
}

#[test]
fn arrival_gap_reduces_contention() {
    let w = workload(9, 8, 0.5, 0.0);
    let packed = run(
        &w,
        RunConfig {
            inject_failures: false,
            ..RunConfig::default()
        },
    );
    let staggered = run(
        &w,
        RunConfig {
            inject_failures: false,
            arrival_gap: 200,
            ..RunConfig::default()
        },
    );
    // With processes fully staggered, scheduling conflicts vanish.
    assert!(staggered.metrics.rejections <= packed.metrics.rejections);
    assert_eq!(staggered.metrics.committed + staggered.metrics.aborted, 8);
}
