// Shared helpers for the integration/property test suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txproc::core::fixtures::PaperWorld;
use txproc::core::ids::ProcessId;
use txproc::core::schedule::Schedule;
use txproc::core::state::{FailureOutcome, ProcessState};

/// Generates a random *legal* history over the paper world's processes by
/// driving the per-process state machines with random choices: each step
/// picks an active process and either executes, fails (if failable), or
/// compensates its next pending step; finished processes commit with
/// probability 1/2 per opportunity.
pub fn random_history(fx: &PaperWorld, seed: u64, max_events: usize) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schedule = Schedule::new();
    let processes: Vec<_> = fx.spec.processes().collect();
    let mut states: Vec<ProcessState<'_>> = processes
        .iter()
        .map(|p| ProcessState::new(p, &fx.spec.catalog).expect("tree process"))
        .collect();
    for _ in 0..max_events {
        let live: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_active())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            break;
        }
        let i = live[rng.gen_range(0..live.len())];
        let pid = ProcessId(processes[i].id.0);
        let st = &mut states[i];
        if let Some(c) = st.next_compensation() {
            let gid = txproc::core::ids::GlobalActivityId::new(pid, c);
            st.apply_compensation(c).expect("queued");
            schedule.compensate(gid);
        } else if let Some(a) = st.next_activity() {
            let gid = txproc::core::ids::GlobalActivityId::new(pid, a);
            let termination = fx.spec.catalog.termination(processes[i].service(a));
            if termination.can_fail() && rng.gen_bool(0.25) {
                match st.apply_failure(a).expect("failable frontier") {
                    FailureOutcome::Stuck => unreachable!("paper processes terminate"),
                    _ => {
                        schedule.fail(gid);
                    }
                }
            } else {
                st.apply_commit(a).expect("frontier");
                schedule.execute(gid);
            }
        } else if st.can_commit() && rng.gen_bool(0.5) {
            st.apply_process_commit().expect("finished");
            schedule.commit(pid);
        }
    }
    schedule
}
