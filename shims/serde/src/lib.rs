//! Offline stand-in for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this shim uses a small
//! tree data model ([`Value`]): `Serialize` renders a type into a `Value`,
//! `Deserialize` rebuilds the type from one. The companion `serde_derive`
//! shim derives both traits for plain structs and enums (no generics, no
//! `#[serde(...)]` attributes — which is all this workspace uses), and the
//! `serde_json` shim converts `Value` to and from JSON text. Maps with
//! non-string keys are encoded as sequences of `[key, value]` pairs, which
//! round-trips through our own JSON layer.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    //! Compatibility aliases mirroring `serde::de`.

    /// In this shim every `Deserialize` impl is already owned.
    pub use crate::Deserialize as DeserializeOwned;
}

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX` or the
    /// source type is unsigned).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// String-keyed map in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path-free message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in a map value (derive-generated code calls
/// this).
pub fn map_field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The `Value` representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses a `Value` produced by [`Serialize::to_value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) if *x <= i64::MAX as u64 => *x as i64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected signed integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(x) => Ok(*x as f64),
            Value::U64(x) => Ok(*x as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::new(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(BTreeSet::from_iter)
    }
}

/// Maps serialize as a sequence of `[key, value]` pairs so non-string keys
/// round-trip through JSON.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v
            .as_seq()
            .ok_or_else(|| DeError::new(format!("expected map pairs, got {v:?}")))?;
        seq.iter()
            .map(|pair| {
                let kv = pair
                    .as_seq()
                    .ok_or_else(|| DeError::new("expected [key, value] pair"))?;
                if kv.len() != 2 {
                    return Err(DeError::new("expected [key, value] pair"));
                }
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| DeError::new(format!("expected tuple, got {v:?}")))?;
                let expected = [$($i,)+].len();
                if seq.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of {expected}, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            Value::U64(self.as_secs()),
            Value::U64(self.subsec_nanos() as u64),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (secs, nanos) = <(u64, u32)>::from_value(v)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let m: BTreeMap<u32, String> = [(1, "a".into()), (2, "b".into())].into();
        assert_eq!(BTreeMap::from_value(&m.to_value()).unwrap(), m);
        let o: Option<u8> = Some(3);
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&none.to_value()).unwrap(), none);
        let t = (1u64, "x".to_string(), -3i64);
        assert_eq!(<(u64, String, i64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_reported() {
        assert!(u64::from_value(&Value::Str("no".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
        assert!(map_field(&[], "missing").is_err());
    }
}
