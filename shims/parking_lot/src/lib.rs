//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Exposes the non-poisoning API shape the workspace uses: `Mutex::lock`
//! returning a guard directly, and `Condvar::{wait, wait_for}` taking the
//! guard by `&mut`. Poison from a panicking holder is ignored (the guard is
//! recovered), matching parking_lot's semantics of not poisoning.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion lock (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with `&mut`-guard wait methods.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |inner| {
            self.0.wait(inner).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |inner| {
            let (g, r) = self
                .0
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Temporarily moves the inner std guard out of `guard`, runs `f`
    /// (which must return a live replacement guard for the same mutex),
    /// and moves the result back in. `f` must not panic; both closures
    /// used above only forward to std waits that return a guard.
    fn replace_guard<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
    ) {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let replacement = f(inner);
            std::ptr::write(&mut guard.0, replacement);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = c.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let other = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, c) = &*other;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*shared;
        let mut g = m.lock();
        while !*g {
            let r = c.wait_for(&mut g, Duration::from_millis(200));
            if r.timed_out() && !*g {
                panic!("missed notification");
            }
        }
        t.join().unwrap();
    }
}
