//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` runner macro
//! this workspace uses. Differences from upstream: no shrinking (a failing
//! case reports its inputs via the assertion message only), and the case
//! stream is seeded deterministically from the test's name, so failures
//! reproduce across runs.

pub mod test_runner {
    //! Runner configuration and failure plumbing.

    pub use rand::rngs::StdRng as TestRng;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Result of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a hash of the test name, used as the deterministic seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Deterministic generator for the named test (callers need not depend
    /// on `rand` themselves).
    pub fn rng_for(name: &str) -> TestRng {
        <TestRng as rand::SeedableRng>::seed_from_u64(seed_for(name))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S + Clone,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategy: `self` is the leaf; `branch` builds inner
        /// nodes from a strategy for the children. `_size` / `_branch_hint`
        /// are accepted for upstream signature compatibility.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _size: u32,
            _branch_hint: u32,
            branch: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        {
            Recursive {
                leaf: self.boxed(),
                branch: Rc::new(move |inner| branch(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let next = (self.f)(self.inner.generate(rng));
            next.generate(rng)
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        leaf: BoxedStrategy<T>,
        branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                leaf: self.leaf.clone(),
                branch: Rc::clone(&self.branch),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            if self.depth == 0 || rng.gen_bool(0.25) {
                return self.leaf.generate(rng);
            }
            let inner = Recursive {
                leaf: self.leaf.clone(),
                branch: Rc::clone(&self.branch),
                depth: self.depth - 1,
            }
            .boxed();
            (self.branch)(inner).generate(rng)
        }
    }

    /// Weighted choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Creates a weighted union; weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy value.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Fair coin strategy.
    #[derive(Debug, Clone)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = ::std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed at {}:{}: {}",
                    file!(),
                    line!(),
                    stringify!($cond)
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed at {}:{}: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    file!(),
                    line!(),
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Declares property test functions: each named function runs its body for
/// every generated case, with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let __outcome: $crate::test_runner::TestCaseResult =
                    (|__rng: &mut $crate::test_runner::TestRng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })(&mut __rng);
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 12, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y), "y out of range: {}", y);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0usize..5, 0usize..5), v in crate::collection::vec(0u8..3, 1..6)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn oneof_weights_cover_all_arms(k in prop_oneof![2 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(k == 1 || k == 2);
        }

        #[test]
        fn recursion_is_bounded(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u64..1000, 5..10);
        let mut r1 = crate::test_runner::TestRng::seed_from_u64(9);
        let mut r2 = crate::test_runner::TestRng::seed_from_u64(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
