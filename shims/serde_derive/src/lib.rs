//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stand-in.
//!
//! Parses the item declaration directly from the `proc_macro` token stream
//! (no syn/quote available offline) and emits impls against the shim's
//! `Value` tree model. Supported shapes — which cover every derived type in
//! this workspace — are non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like. The only `#[serde(...)]`
//! attribute honoured is `#[serde(default)]` on named fields (a missing map
//! entry deserializes to `Default::default()`); every other serde attribute
//! is rejected loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named field plus whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

/// A parsed field list.
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

/// A parsed item: struct or enum with its fields/variants.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => struct_serialize(name, fields),
        Item::Enum { name, variants } => enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => struct_deserialize(name, fields),
        Item::Enum { name, variants } => enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive shim does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_commas(g.stream()).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            let variants = split_top_commas(body)
                .into_iter()
                .map(|seg| parse_variant(&seg, &name))
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skips `#[...]` attributes. Returns whether a `#[serde(default)]` was
/// among them; any other `#[serde(...)]` attribute is rejected.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let body: String = g
                .stream()
                .to_string()
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect();
            if body == "serde(default)" {
                has_default = true;
            } else if body.starts_with("serde") {
                panic!(
                    "unsupported #[serde(...)] attribute (the offline shim \
                     only honours #[serde(default)]): #[{body}]"
                );
            }
        }
        *i += 2;
    }
    has_default
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Splits a token stream on top-level commas. Nested `()`/`[]`/`{}` groups
/// are single trees, but generic arguments use plain `<`/`>` puncts, so
/// angle-bracket depth is tracked explicitly.
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts field names (and their `#[serde(default)]` marker) from a
/// named-fields body.
fn named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_commas(stream)
        .iter()
        .map(|seg| {
            let mut i = 0;
            let default = skip_attributes(seg, &mut i);
            skip_visibility(seg, &mut i);
            match seg.get(i) {
                Some(TokenTree::Ident(id)) => Field {
                    name: id.to_string(),
                    default,
                },
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_variant(seg: &[TokenTree], enum_name: &str) -> (String, Fields) {
    let mut i = 0;
    skip_attributes(seg, &mut i);
    let name = match seg.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected variant name in `{enum_name}`, found {other:?}"),
    };
    i += 1;
    let fields = match seg.get(i) {
        None => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(split_top_commas(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(named_fields(g.stream()))
        }
        other => panic!("unsupported variant shape `{enum_name}::{name}`: {other:?}"),
    };
    (name, fields)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fs) => {
            let entries: Vec<String> = fs
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Deserialization initializer of one named field: a `#[serde(default)]`
/// field falls back to `Default::default()` when the map entry is missing.
fn named_field_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match ::serde::map_field(__m, \"{name}\") {{\n\
             ::std::result::Result::Ok(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
             ::std::result::Result::Err(_) => ::std::default::Default::default(),\n\
             }}"
        )
    } else {
        format!(
            "{name}: ::serde::Deserialize::from_value(\
             ::serde::map_field(__m, \"{name}\")?)?"
        )
    }
}

fn struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fs) => {
            let inits: Vec<String> = fs.iter().map(named_field_init).collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::DeError::new(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::DeError::new(\"expected sequence for {name}\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::new(\"wrong arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => {
                format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))")
            }
            Fields::Tuple(1) => format!(
                "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{v}\"), \
                 ::serde::Serialize::to_value(__f0))])"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let vals: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                    .collect();
                format!(
                    "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                     ::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Seq(::std::vec![{}]))])",
                    binds.join(", "),
                    vals.join(", ")
                )
            }
            Fields::Named(fs) => {
                let binds = fs
                    .iter()
                    .map(|f| f.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ");
                let entries: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        let f = &f.name;
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                     ::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Map(::std::vec![{}]))])",
                    entries.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
         }}",
        arms.join(",\n")
    )
}

fn enum_deserialize(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                 ::serde::Deserialize::from_value(__inner)?))"
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{v}\" => {{\n\
                     let __s = __inner.as_seq().ok_or_else(|| \
                     ::serde::DeError::new(\"expected sequence for {name}::{v}\"))?;\n\
                     if __s.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::new(\"wrong arity for {name}::{v}\")); }}\n\
                     ::std::result::Result::Ok({name}::{v}({}))\n}}",
                    inits.join(", ")
                ))
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs.iter().map(named_field_init).collect();
                Some(format!(
                    "\"{v}\" => {{\n\
                     let __m = __inner.as_map().ok_or_else(|| \
                     ::serde::DeError::new(\"expected map for {name}::{v}\"))?;\n\
                     ::std::result::Result::Ok({name}::{v} {{ {} }})\n}}",
                    inits.join(", ")
                ))
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n\
         match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {}\n\
         __other => ::std::result::Result::Err(::serde::DeError::new(\
         ::std::format!(\"unknown {name} variant {{__other}}\")))\n\
         }},\n\
         ::serde::Value::Map(__m1) if __m1.len() == 1 => {{\n\
         let (__tag, __inner) = &__m1[0];\n\
         match __tag.as_str() {{\n\
         {}\n\
         __other => ::std::result::Result::Err(::serde::DeError::new(\
         ::std::format!(\"unknown {name} variant {{__other}}\")))\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::DeError::new(\
         ::std::format!(\"cannot read {name} from {{__other:?}}\")))\n\
         }}\n\
         }}\n\
         }}",
        if unit_arms.is_empty() {
            String::new()
        } else {
            format!("{},", unit_arms.join(",\n"))
        },
        if tagged_arms.is_empty() {
            String::new()
        } else {
            format!("{},", tagged_arms.join(",\n"))
        },
    )
}
