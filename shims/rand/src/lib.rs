//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, plus `Rng::{gen_range, gen_bool}` over
//! integer ranges. The generator is xoshiro256** with a SplitMix64 seed
//! expansion — high-quality and deterministic, though the stream differs
//! from upstream `rand`'s ChaCha-based `StdRng` (tests that depend on the
//! concrete stream pick their own seeds against this implementation).

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** generator state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire-style rejection (simplified:
/// modulo with rejection of the biased tail).
fn uniform_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    /// Small generator; identical to [`StdRng`] in this stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = a.gen_range(0..17);
            assert_eq!(x, b.gen_range(0..17));
            assert!(x < 17);
        }
    }

    #[test]
    fn inclusive_and_signed_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: u64 = r.gen_range(1..=3);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn float_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
