//! Offline stand-in for `criterion`.
//!
//! Measures wall-clock time with warmup and multiple samples and prints a
//! `name: median ns/iter (n samples)` line per benchmark. No plotting, no
//! statistical regression — enough to compare implementations and read off
//! scaling curves.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// A parameterised benchmark label, rendered `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, recorded by `iter`.
    last_ns: f64,
}

impl Bencher {
    /// Times `f`, recording the median over several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and batch-size calibration: grow the batch until one batch
        // takes ~1ms so per-iteration timing noise stays small.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = samples[samples.len() / 2];
    }
}

fn run_one(group: Option<&str>, name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_ns: 0.0,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!(
        "{full:<60} {:>14} ns/iter ({} samples)",
        format_ns(b.last_ns),
        samples
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1e3 {
        let v = ns as u64;
        let s = v.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push('_');
            }
            out.push(c);
        }
        out
    } else {
        format!("{ns:.1}")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(Some(&self.name), &id.label, self.samples, f);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(Some(&self.name), &id.label, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; accepted for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.effective_samples();
        BenchmarkGroup {
            name: name.into(),
            samples,
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let samples = self.effective_samples();
        run_one(None, name, samples, f);
        self
    }

    /// Sets the default number of samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.samples == 0 {
            10
        } else {
            self.samples
        }
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| 2 * 2));
    }
}
