//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree to JSON text and parses JSON text back into it.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or escape;
                    // validating only this chunk keeps parsing linear.
                    let start = self.pos;
                    while matches!(self.bytes.get(self.pos), Some(b) if *b != b'"' && *b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_containers() {
        let m: BTreeMap<u32, Vec<String>> =
            [(1, vec!["a".into(), "b\n".into()]), (2, vec![])].into();
        let text = to_string_pretty(&m).unwrap();
        let back: BTreeMap<u32, Vec<String>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parses_plain_json() {
        let v: Vec<i64> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(v, vec![1, -2, 3]);
        let opt: Option<bool> = from_str("null").unwrap();
        assert_eq!(opt, None);
        let f: f64 = from_str("2.5e1").unwrap();
        assert!((f - 25.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
