//! Scheduling policies: the paper's PRED protocol and the baselines it is
//! evaluated against.
//!
//! * [`PredPolicy`] — the protocol of Lemmas 1–3 / §3.5 (wraps
//!   [`txproc_core::protocol::Protocol`]): serializability enforcement,
//!   deferment of non-compensatable activities behind active conflicting
//!   predecessors, commit ordering, cascading aborts honouring quasi-commits.
//! * [`SerialPolicy`] — executes processes one at a time: trivially correct,
//!   zero parallelism. The lower bound.
//! * [`ConservativePolicy`] — process-level conflict locking (a static
//!   2PL-style scheduler): a process starts only when no live process holds
//!   any conflicting service. Correct, but conflicting processes never
//!   interleave.
//! * [`UnsafeCcPolicy`] — concurrency control only: serializability is
//!   enforced but every recovery-related obligation is ignored (no
//!   deferment, no commit ordering, no cascades). Under failures it emits
//!   non-PRED histories — the situation of §2.2 and Example 8 that the
//!   paper's unified treatment exists to prevent.

use std::collections::{BTreeMap, BTreeSet};
use txproc_core::ids::{GlobalActivityId, ProcessId, ServiceId};
use txproc_core::protocol::{Admission, CompletionGate, DeferPolicy, Protocol};
use txproc_core::spec::Spec;

/// Scheduler policy interface used by the engine.
pub trait Policy {
    /// Display name (report tables).
    fn name(&self) -> &'static str;
    /// A process was admitted.
    fn register(&mut self, pid: ProcessId);
    /// May `pid` execute `gid` (invoking `service`) now?
    fn request(&mut self, pid: ProcessId, gid: GlobalActivityId, service: ServiceId) -> Admission;
    /// A forward activity executed (`deferred`: prepared, commit deferred).
    /// Returns the serialization edges newly added by the execution, for
    /// decision tracing; policies without an explicit serialization order
    /// return the empty vector.
    fn record_executed(
        &mut self,
        gid: GlobalActivityId,
        deferred: bool,
    ) -> Vec<(ProcessId, ProcessId)>;
    /// A deferred activity's subsystem commit was released.
    fn record_deferred_released(&mut self, gid: GlobalActivityId);
    /// A deferred (prepared) activity was aborted before release: it leaves
    /// no effects.
    fn record_prepared_aborted(&mut self, _gid: GlobalActivityId) {}
    /// A compensating activity executed.
    fn record_compensated(&mut self, gid: GlobalActivityId);
    /// May the process commit now (Definition 11.1)?
    fn can_commit(&mut self, pid: ProcessId) -> Result<(), Vec<ProcessId>>;
    /// The process committed; returns deferred activities to release, per
    /// dependent process.
    fn on_commit(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)>;
    /// Which dependents must cascade when `pid` aborts (victims in reverse
    /// dependency order).
    fn plan_abort(
        &mut self,
        pid: ProcessId,
        compensations: &[GlobalActivityId],
        forward_services: &[ServiceId],
    ) -> Vec<ProcessId>;
    /// The process aborted (completion finished); returns deferred
    /// activities to release, per dependent process.
    fn on_abort(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)>;
    /// The process's abort was initiated (its completion starts executing).
    fn on_abort_begin(&mut self, _pid: ProcessId) {}
    /// Gate for a compensation step of a completion (see
    /// [`CompletionGate`]). Policies without recovery obligations always
    /// answer [`CompletionGate::Ready`].
    fn compensation_gate(&self, _gid: GlobalActivityId) -> CompletionGate {
        CompletionGate::Ready
    }
    /// Gate for a forward-recovery step of a completion.
    fn forward_gate(&self, _pid: ProcessId, _service: ServiceId) -> CompletionGate {
        CompletionGate::Ready
    }
    /// Debug dump of internal state (diagnostics only).
    fn debug_state(&self) -> String {
        String::new()
    }
}

/// The paper's PRED scheduling protocol.
pub struct PredPolicy<'a> {
    protocol: Protocol<'a>,
    name: &'static str,
}

impl<'a> PredPolicy<'a> {
    /// Creates the policy over a spec.
    pub fn new(spec: &'a Spec, defer: DeferPolicy) -> Self {
        Self::with_name(
            spec,
            defer,
            match defer {
                DeferPolicy::PrepareAndDefer => "pred",
                DeferPolicy::DeferExecution => "pred-wait",
            },
        )
    }

    /// Creates the policy with an explicit display name.
    pub fn with_name(spec: &'a Spec, defer: DeferPolicy, name: &'static str) -> Self {
        Self {
            protocol: Protocol::new(spec, defer),
            name,
        }
    }
}

impl Policy for PredPolicy<'_> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn register(&mut self, pid: ProcessId) {
        self.protocol.register(pid);
    }
    fn request(&mut self, pid: ProcessId, _gid: GlobalActivityId, service: ServiceId) -> Admission {
        self.protocol.request(pid, service)
    }
    fn record_executed(
        &mut self,
        gid: GlobalActivityId,
        deferred: bool,
    ) -> Vec<(ProcessId, ProcessId)> {
        self.protocol.record_executed(gid, deferred)
    }
    fn record_deferred_released(&mut self, gid: GlobalActivityId) {
        self.protocol.record_deferred_released(gid);
    }
    fn record_prepared_aborted(&mut self, gid: GlobalActivityId) {
        self.protocol.record_prepared_aborted(gid);
    }
    fn record_compensated(&mut self, gid: GlobalActivityId) {
        self.protocol.record_compensated(gid);
    }
    fn can_commit(&mut self, pid: ProcessId) -> Result<(), Vec<ProcessId>> {
        self.protocol.can_commit(pid)
    }
    fn on_commit(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.protocol.record_process_commit(pid)
    }
    fn plan_abort(
        &mut self,
        pid: ProcessId,
        compensations: &[GlobalActivityId],
        forward_services: &[ServiceId],
    ) -> Vec<ProcessId> {
        self.protocol
            .plan_abort(pid, compensations, forward_services)
    }
    fn on_abort(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.protocol.record_process_abort(pid)
    }
    fn on_abort_begin(&mut self, pid: ProcessId) {
        self.protocol.mark_aborting(pid);
    }
    fn compensation_gate(&self, gid: GlobalActivityId) -> CompletionGate {
        self.protocol.compensation_gate(gid)
    }
    fn forward_gate(&self, pid: ProcessId, service: ServiceId) -> CompletionGate {
        self.protocol.forward_gate(pid, service)
    }
    fn debug_state(&self) -> String {
        self.protocol.debug_ops()
    }
}

/// The PRED protocol answered exclusively by the retained scan-based
/// oracle (`scan_*` methods of [`Protocol`]): identical decisions to
/// [`PredPolicy`] under [`PolicyKind::PredProtocol`], but every decision
/// rescans the full operation log / edge set — the pre-index formulation.
///
/// Kept as a live baseline: the bench harness measures the indexed hot
/// path against it (E19), and the engine-level differential tests replay
/// identical seeds under both and require bit-identical histories.
pub struct ScanPredPolicy<'a> {
    protocol: Protocol<'a>,
}

impl<'a> ScanPredPolicy<'a> {
    /// Creates the policy over a spec.
    pub fn new(spec: &'a Spec, defer: DeferPolicy) -> Self {
        Self {
            protocol: Protocol::new(spec, defer),
        }
    }
}

impl Policy for ScanPredPolicy<'_> {
    fn name(&self) -> &'static str {
        "pred-scan"
    }
    fn register(&mut self, pid: ProcessId) {
        self.protocol.register(pid);
    }
    fn request(&mut self, pid: ProcessId, _gid: GlobalActivityId, service: ServiceId) -> Admission {
        self.protocol.scan_request(pid, service)
    }
    fn record_executed(
        &mut self,
        gid: GlobalActivityId,
        deferred: bool,
    ) -> Vec<(ProcessId, ProcessId)> {
        self.protocol.record_executed(gid, deferred)
    }
    fn record_deferred_released(&mut self, gid: GlobalActivityId) {
        self.protocol.record_deferred_released(gid);
    }
    fn record_prepared_aborted(&mut self, gid: GlobalActivityId) {
        self.protocol.record_prepared_aborted(gid);
    }
    fn record_compensated(&mut self, gid: GlobalActivityId) {
        self.protocol.record_compensated(gid);
    }
    fn can_commit(&mut self, pid: ProcessId) -> Result<(), Vec<ProcessId>> {
        self.protocol.scan_can_commit(pid)
    }
    fn on_commit(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.protocol.record_process_commit(pid)
    }
    fn plan_abort(
        &mut self,
        pid: ProcessId,
        compensations: &[GlobalActivityId],
        forward_services: &[ServiceId],
    ) -> Vec<ProcessId> {
        self.protocol
            .scan_plan_abort(pid, compensations, forward_services)
    }
    fn on_abort(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.protocol.record_process_abort(pid)
    }
    fn on_abort_begin(&mut self, pid: ProcessId) {
        self.protocol.mark_aborting(pid);
    }
    fn compensation_gate(&self, gid: GlobalActivityId) -> CompletionGate {
        self.protocol.scan_compensation_gate(gid)
    }
    fn forward_gate(&self, pid: ProcessId, service: ServiceId) -> CompletionGate {
        self.protocol.scan_forward_gate(pid, service)
    }
    fn debug_state(&self) -> String {
        self.protocol.debug_ops()
    }
}

/// Serial execution: one process at a time, admission order.
#[derive(Debug, Default)]
pub struct SerialPolicy {
    order: Vec<ProcessId>,
    terminated: BTreeSet<ProcessId>,
}

impl SerialPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn head(&self) -> Option<ProcessId> {
        self.order
            .iter()
            .copied()
            .find(|p| !self.terminated.contains(p))
    }
}

impl Policy for SerialPolicy {
    fn name(&self) -> &'static str {
        "serial"
    }
    fn register(&mut self, pid: ProcessId) {
        if !self.order.contains(&pid) {
            self.order.push(pid);
        }
    }
    fn request(
        &mut self,
        pid: ProcessId,
        _gid: GlobalActivityId,
        _service: ServiceId,
    ) -> Admission {
        match self.head() {
            Some(h) if h == pid => Admission::Allow,
            Some(h) => Admission::Wait { blockers: vec![h] },
            None => Admission::Allow,
        }
    }
    fn record_executed(
        &mut self,
        _gid: GlobalActivityId,
        _deferred: bool,
    ) -> Vec<(ProcessId, ProcessId)> {
        Vec::new()
    }
    fn record_deferred_released(&mut self, _gid: GlobalActivityId) {}
    fn record_compensated(&mut self, _gid: GlobalActivityId) {}
    fn can_commit(&mut self, _pid: ProcessId) -> Result<(), Vec<ProcessId>> {
        Ok(())
    }
    fn on_commit(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.terminated.insert(pid);
        Vec::new()
    }
    fn plan_abort(
        &mut self,
        _pid: ProcessId,
        _compensations: &[GlobalActivityId],
        _forward_services: &[ServiceId],
    ) -> Vec<ProcessId> {
        Vec::new()
    }
    fn on_abort(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.terminated.insert(pid);
        Vec::new()
    }
}

/// Process-level conflict locking: a process acquires (logical) locks on all
/// services it may invoke before its first activity runs; conflicting
/// processes are serialized entirely.
pub struct ConservativePolicy<'a> {
    spec: &'a Spec,
    /// Lock sets of live processes.
    held: BTreeMap<ProcessId, Vec<ServiceId>>,
    /// Registered processes that have not acquired their locks yet.
    pending: BTreeSet<ProcessId>,
}

impl<'a> ConservativePolicy<'a> {
    /// Creates the policy over a spec.
    pub fn new(spec: &'a Spec) -> Self {
        Self {
            spec,
            held: BTreeMap::new(),
            pending: BTreeSet::new(),
        }
    }

    fn lock_set(&self, pid: ProcessId) -> Vec<ServiceId> {
        let process = self.spec.process(pid).expect("registered process");
        let mut set: Vec<ServiceId> = process.iter().map(|(id, _)| process.service(id)).collect();
        set.sort();
        set.dedup();
        set
    }

    fn conflicts_with_held(&self, pid: ProcessId, wanted: &[ServiceId]) -> Vec<ProcessId> {
        let oracle = self.spec.oracle();
        self.held
            .iter()
            .filter(|&(&other, _)| other != pid)
            .filter(|(_, theirs)| {
                wanted
                    .iter()
                    .any(|&w| theirs.iter().any(|&t| oracle.conflict(w, t)))
            })
            .map(|(&other, _)| other)
            .collect()
    }
}

impl Policy for ConservativePolicy<'_> {
    fn name(&self) -> &'static str {
        "conservative"
    }
    fn register(&mut self, pid: ProcessId) {
        self.pending.insert(pid);
    }
    fn request(
        &mut self,
        pid: ProcessId,
        _gid: GlobalActivityId,
        _service: ServiceId,
    ) -> Admission {
        if self.held.contains_key(&pid) {
            return Admission::Allow;
        }
        let wanted = self.lock_set(pid);
        let blockers = self.conflicts_with_held(pid, &wanted);
        if blockers.is_empty() {
            self.pending.remove(&pid);
            self.held.insert(pid, wanted);
            Admission::Allow
        } else {
            Admission::Wait { blockers }
        }
    }
    fn record_executed(
        &mut self,
        _gid: GlobalActivityId,
        _deferred: bool,
    ) -> Vec<(ProcessId, ProcessId)> {
        Vec::new()
    }
    fn record_deferred_released(&mut self, _gid: GlobalActivityId) {}
    fn record_compensated(&mut self, _gid: GlobalActivityId) {}
    fn can_commit(&mut self, _pid: ProcessId) -> Result<(), Vec<ProcessId>> {
        Ok(())
    }
    fn on_commit(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.held.remove(&pid);
        Vec::new()
    }
    fn plan_abort(
        &mut self,
        _pid: ProcessId,
        _compensations: &[GlobalActivityId],
        _forward_services: &[ServiceId],
    ) -> Vec<ProcessId> {
        Vec::new()
    }
    fn on_abort(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.held.remove(&pid);
        Vec::new()
    }
}

/// Concurrency control without recovery: serializability only.
pub struct UnsafeCcPolicy<'a> {
    protocol: Protocol<'a>,
}

impl<'a> UnsafeCcPolicy<'a> {
    /// Creates the policy over a spec.
    pub fn new(spec: &'a Spec) -> Self {
        Self {
            // The inner protocol is only used for edge/cycle tracking.
            protocol: Protocol::new(spec, DeferPolicy::PrepareAndDefer),
        }
    }
}

impl Policy for UnsafeCcPolicy<'_> {
    fn name(&self) -> &'static str {
        "unsafe-cc"
    }
    fn register(&mut self, pid: ProcessId) {
        self.protocol.register(pid);
    }
    fn request(&mut self, pid: ProcessId, _gid: GlobalActivityId, service: ServiceId) -> Admission {
        match self.protocol.request(pid, service) {
            Admission::Reject { conflicting } => Admission::Reject { conflicting },
            // Ignore every recovery-related obligation.
            _ => Admission::Allow,
        }
    }
    fn record_executed(
        &mut self,
        gid: GlobalActivityId,
        _deferred: bool,
    ) -> Vec<(ProcessId, ProcessId)> {
        self.protocol.record_executed(gid, false)
    }
    fn record_deferred_released(&mut self, _gid: GlobalActivityId) {}
    fn record_compensated(&mut self, gid: GlobalActivityId) {
        self.protocol.record_compensated(gid);
    }
    fn can_commit(&mut self, _pid: ProcessId) -> Result<(), Vec<ProcessId>> {
        Ok(())
    }
    fn on_commit(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.protocol.record_process_commit(pid);
        Vec::new()
    }
    fn plan_abort(
        &mut self,
        _pid: ProcessId,
        _compensations: &[GlobalActivityId],
        _forward_services: &[ServiceId],
    ) -> Vec<ProcessId> {
        Vec::new()
    }
    fn on_abort(&mut self, pid: ProcessId) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.protocol.record_process_abort(pid);
        Vec::new()
    }
}

/// Selectable policy kind (run configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// The paper's PRED scheduler: protocol pre-filter (Lemmas 1–3) *plus*
    /// per-event certification of the completed prefix (§3.5: "the
    /// completed process schedule has always to be considered").
    Pred,
    /// Certified PRED, but non-compensatable activities wait instead of
    /// executing under deferred 2PC commit (ablation).
    PredWait,
    /// Protocol rules only, no prefix certification (ablation: the lemma
    /// obligations are necessary but not sufficient; this measures how often
    /// they fall short).
    PredProtocol,
    /// `PredProtocol` answered by the retained scan-based oracle — the
    /// pre-index formulation, kept as a measurable baseline (not part of
    /// [`PolicyKind::all`] sweeps).
    PredScan,
    /// Serial execution.
    Serial,
    /// Process-level conflict locking.
    Conservative,
    /// Serializability without recovery obligations (unsafe baseline).
    UnsafeCc,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build<'a>(self, spec: &'a Spec) -> Box<dyn Policy + Send + 'a> {
        match self {
            PolicyKind::Pred => Box::new(PredPolicy::new(spec, DeferPolicy::PrepareAndDefer)),
            PolicyKind::PredProtocol => Box::new(PredPolicy::with_name(
                spec,
                DeferPolicy::PrepareAndDefer,
                "pred-protocol",
            )),
            PolicyKind::PredWait => Box::new(PredPolicy::new(spec, DeferPolicy::DeferExecution)),
            PolicyKind::PredScan => {
                Box::new(ScanPredPolicy::new(spec, DeferPolicy::PrepareAndDefer))
            }
            PolicyKind::Serial => Box::new(SerialPolicy::new()),
            PolicyKind::Conservative => Box::new(ConservativePolicy::new(spec)),
            PolicyKind::UnsafeCc => Box::new(UnsafeCcPolicy::new(spec)),
        }
    }

    /// Whether the engine certifies every effect event against the completed
    /// prefix before emitting it.
    pub fn certified(self) -> bool {
        matches!(self, PolicyKind::Pred | PolicyKind::PredWait)
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Pred => "pred",
            PolicyKind::PredWait => "pred-wait",
            PolicyKind::PredProtocol => "pred-protocol",
            PolicyKind::PredScan => "pred-scan",
            PolicyKind::Serial => "serial",
            PolicyKind::Conservative => "conservative",
            PolicyKind::UnsafeCc => "unsafe-cc",
        }
    }

    /// All kinds swept by reports. Excludes [`PolicyKind::PredScan`], which
    /// duplicates `pred-protocol` decisions and exists only as the
    /// pre-index perf baseline.
    pub fn all() -> [PolicyKind; 6] {
        [
            PolicyKind::Pred,
            PolicyKind::PredWait,
            PolicyKind::PredProtocol,
            PolicyKind::Serial,
            PolicyKind::Conservative,
            PolicyKind::UnsafeCc,
        ]
    }
}

/// Selectable implementation of the §3.5 certifier (run configuration).
///
/// Certified policies gate every effect event on the question "does the
/// extended prefix still have a reducible completed schedule?". Two
/// implementations answer it:
///
/// * [`CertifierKind::Batch`] — the reference: clone the history, append the
///   candidate event, rebuild the completion (Definition 8) and reduce it
///   from scratch. O(n²) per event, O(n³) over a run.
/// * [`CertifierKind::Incremental`] — the incremental certifier
///   ([`IncrementalPred`](txproc_core::pred_incremental::IncrementalPred)):
///   maintains the serialization/weak-order closure, compensation-pair
///   cancellation state and deferred-completion overlays as events append,
///   answering each certification in amortized near-O(degree) work.
///
/// Both certifiers answer identically — the differential property tests pin
/// this. `Incremental` is the default (it answers the same question in
/// amortized near-O(degree) instead of O(n²) per event); `Batch` remains
/// the semantic reference, selectable everywhere via `--certifier batch`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CertifierKind {
    /// Recompute completion + reduction from scratch per candidate event.
    Batch,
    /// Maintain the certification state incrementally across events.
    #[default]
    Incremental,
}

impl CertifierKind {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            CertifierKind::Batch => "batch",
            CertifierKind::Incremental => "incremental",
        }
    }

    /// All kinds (sweeps).
    pub fn all() -> [CertifierKind; 2] {
        [CertifierKind::Batch, CertifierKind::Incremental]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txproc_core::fixtures;

    #[test]
    fn serial_policy_allows_only_head() {
        let fx = fixtures::paper_world();
        let mut p = SerialPolicy::new();
        p.register(ProcessId(1));
        p.register(ProcessId(2));
        let svc = fx.spec.service_of(fx.a(1, 1)).unwrap();
        assert_eq!(p.request(ProcessId(1), fx.a(1, 1), svc), Admission::Allow);
        assert!(matches!(
            p.request(ProcessId(2), fx.a(2, 1), svc),
            Admission::Wait { .. }
        ));
        p.on_commit(ProcessId(1));
        assert_eq!(p.request(ProcessId(2), fx.a(2, 1), svc), Admission::Allow);
    }

    #[test]
    fn conservative_policy_blocks_conflicting_process() {
        let fx = fixtures::paper_world();
        let mut p = ConservativePolicy::new(&fx.spec);
        p.register(ProcessId(1));
        p.register(ProcessId(2));
        let s1 = fx.spec.service_of(fx.a(1, 1)).unwrap();
        let s2 = fx.spec.service_of(fx.a(2, 1)).unwrap();
        assert_eq!(p.request(ProcessId(1), fx.a(1, 1), s1), Admission::Allow);
        // P₂ shares conflicting services with P₁ (Figure 4): blocked.
        assert!(matches!(
            p.request(ProcessId(2), fx.a(2, 1), s2),
            Admission::Wait { .. }
        ));
        p.on_abort(ProcessId(1));
        assert_eq!(p.request(ProcessId(2), fx.a(2, 1), s2), Admission::Allow);
    }

    #[test]
    fn conservative_policy_allows_disjoint_processes() {
        let fx = fixtures::cim_world();
        // Construction and production conflict (PDM pair): blocked. But a
        // process against itself re-requests freely.
        let mut p = ConservativePolicy::new(&fx.spec);
        let c = fx.construction.id;
        p.register(c);
        let svc = fx
            .spec
            .service_of(fx.construction_activity("design"))
            .unwrap();
        assert_eq!(
            p.request(c, fx.construction_activity("design"), svc),
            Admission::Allow
        );
        assert_eq!(
            p.request(c, fx.construction_activity("pdm_entry"), svc),
            Admission::Allow
        );
    }

    #[test]
    fn unsafe_cc_ignores_deferment_but_rejects_cycles() {
        let fx = fixtures::paper_world();
        let mut p = UnsafeCcPolicy::new(&fx.spec);
        p.register(ProcessId(1));
        p.register(ProcessId(2));
        let s23 = fx.spec.service_of(fx.a(2, 3)).unwrap();
        p.record_executed(fx.a(1, 1), false);
        p.record_executed(fx.a(2, 1), false);
        // The PRED policy would defer the pivot; unsafe-cc allows it.
        assert_eq!(p.request(ProcessId(2), fx.a(2, 3), s23), Admission::Allow);
        // But cycles are still rejected (it is a CC scheduler).
        p.record_executed(fx.a(2, 3), false);
        p.record_executed(fx.a(2, 4), false);
        let s12 = fx.spec.service_of(fx.a(1, 2)).unwrap();
        assert!(matches!(
            p.request(ProcessId(1), fx.a(1, 2), s12),
            Admission::Reject { .. }
        ));
    }

    #[test]
    fn policy_kind_builds_all() {
        let fx = fixtures::paper_world();
        for kind in PolicyKind::all() {
            let p = kind.build(&fx.spec);
            assert_eq!(p.name(), kind.label());
        }
    }
}
