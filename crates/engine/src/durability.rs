//! Snapshot + log-replay recovery: rebuilding a crash image from the WAL.
//!
//! [`crate::engine::Engine::with_wal`] appends a typed
//! [`WalRecord`](txproc_core::wal::WalRecord) at every durable state
//! transition. This module is the read side: [`rebuild_image`] folds a
//! (possibly torn-tail-truncated) record sequence back into the
//! [`CrashImage`] the in-memory crash path produces, so the existing
//! recovery procedure (`recover`) runs unchanged on top of either source.
//!
//! ## The crash model
//!
//! A crash truncates the durable log at an arbitrary byte offset;
//! everything else — agents, coordinator, history, scheduler — is volatile
//! and rebuilt by replaying the surviving record prefix against fresh
//! state. Every prefix replays to a consistent state because each record is
//! atomic: an [`Invocation`](txproc_core::wal::WalRecord::Invocation)
//! record implies both the agent transaction *and* (when immediate) its
//! history event, a `Compensate` event record implies the compensating
//! transaction at the agent, and the `Decision`/`DecisionApplied` pair
//! brackets 2PC phase 2 so a truncation between them leaves the group
//! in doubt for [`Coordinator::resolve_in_doubt`].
//!
//! ## Determinism of agent replay
//!
//! Agents allocate invocation ids densely and only on success (`Busy` and
//! injected transient aborts return before allocation), so replaying the
//! logged invocations in order against fresh agents reproduces the logged
//! ids exactly — [`rebuild_image`] asserts this and fails loudly on a
//! workload/log mismatch. Transaction ids *inside* a rebuilt agent differ
//! from the original run (unlogged busy/abort attempts advanced the
//! original counter) but are self-consistent; nothing durable reads them.
//!
//! ## The epoch-release window
//!
//! In epoch mode the engine emits the `Execute` events of a release group
//! before the group's single 2PC decision is logged. A log truncated inside
//! that window shows an executed-but-undecided prepared invocation. The
//! group was a pure batching artifact (per-event mode decides each release
//! singly), so [`rebuild_image`] synthesizes an individual in-doubt commit
//! decision for each such invocation; recovery then finishes it like any
//! other in-doubt group.

use crate::engine::InvocationLogEntry;
use crate::recovery::CrashImage;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use txproc_core::ids::GlobalActivityId;
use txproc_core::schedule::{Event, Schedule};
use txproc_core::wal::{WalRecord, WAL_VERSION};
use txproc_sim::workload::Workload;
use txproc_subsystem::agent::{Agent, CommitMode, InvocationId, InvokeOutcome};
use txproc_subsystem::subsystem::{Subsystem, SubsystemId};
use txproc_subsystem::tpc::{Coordinator, Decision, Participant};

/// The engine's full durable state at a snapshot point, serialized into a
/// [`WalRecord::SnapshotMarker`] payload. Restoring it and replaying the
/// records that follow is equivalent to replaying the whole log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurableSnapshot {
    /// Emitted history prefix.
    pub history: Schedule,
    /// Durable invocation log.
    pub invocation_log: Vec<InvocationLogEntry>,
    /// 2PC decision log.
    pub coordinator: Coordinator,
    /// Subsystem agents with their full transactional state.
    pub agents: BTreeMap<SubsystemId, Agent>,
}

/// Serializes a snapshot payload for a [`WalRecord::SnapshotMarker`].
pub fn snapshot_payload(
    history: &Schedule,
    invocation_log: &[InvocationLogEntry],
    coordinator: &Coordinator,
    agents: &BTreeMap<SubsystemId, Agent>,
) -> String {
    let snap = DurableSnapshot {
        history: history.clone(),
        invocation_log: invocation_log.to_vec(),
        coordinator: coordinator.clone(),
        agents: agents.clone(),
    };
    serde_json::to_string(&snap).expect("snapshot serializes infallibly")
}

/// Why a WAL could not be folded back into a crash image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildError {
    /// The `Begin` header names a different format version.
    VersionMismatch {
        /// Version found in the log.
        found: u32,
    },
    /// The `Begin` header names a different workload seed.
    SeedMismatch {
        /// Seed found in the log.
        found: u64,
        /// Seed of the workload given to [`rebuild_image`].
        expected: u64,
    },
    /// A snapshot payload did not deserialize.
    BadSnapshot(String),
    /// A record references state the workload or log prefix does not
    /// contain, or replaying it diverged from what was logged.
    Inconsistent(String),
    /// The log contains concurrent-driver shard records; those carry
    /// history only (see `wal_history`) and cannot rebuild agents.
    ShardLog,
}

impl std::fmt::Display for RebuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebuildError::VersionMismatch { found } => {
                write!(f, "WAL version {found} != supported {WAL_VERSION}")
            }
            RebuildError::SeedMismatch { found, expected } => {
                write!(f, "WAL seed {found} != workload seed {expected}")
            }
            RebuildError::BadSnapshot(msg) => write!(f, "snapshot payload: {msg}"),
            RebuildError::Inconsistent(msg) => write!(f, "log/workload mismatch: {msg}"),
            RebuildError::ShardLog => write!(
                f,
                "log holds concurrent-driver shard events; rebuild history with wal_history"
            ),
        }
    }
}

impl std::error::Error for RebuildError {}

/// Rebuilds the durable state a record sequence describes, returning the
/// same [`CrashImage`] the in-memory crash path produces. `records` is
/// whatever [`read_records`](txproc_core::wal::read_records) salvaged — any
/// clean prefix of a run's log is valid input. Replay starts from the last
/// complete snapshot marker when one survived, else from genesis.
pub fn rebuild_image(
    workload: &Workload,
    records: &[WalRecord],
) -> Result<CrashImage, RebuildError> {
    // Restore the most recent snapshot; everything before it is absorbed.
    let snap_at = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::SnapshotMarker { .. }));
    let (mut history, mut invocation_log, mut coordinator, mut agents, tail) = match snap_at {
        Some(i) => {
            let WalRecord::SnapshotMarker { payload } = &records[i] else {
                unreachable!("rposition matched a snapshot marker");
            };
            let snap: DurableSnapshot = serde_json::from_str(payload)
                .map_err(|e| RebuildError::BadSnapshot(format!("{e:?}")))?;
            (
                snap.history,
                snap.invocation_log,
                snap.coordinator,
                snap.agents,
                &records[i + 1..],
            )
        }
        None => {
            let mut agents = BTreeMap::new();
            for sid in workload.deployment.subsystems() {
                agents.insert(
                    sid,
                    Agent::new(Subsystem::new(sid, format!("sub{}", sid.0))),
                );
            }
            (
                Schedule::new(),
                Vec::new(),
                Coordinator::new(),
                agents,
                records,
            )
        }
    };
    // gid → agent handle, for compensation replay and the post-pass.
    let mut invocation_of: BTreeMap<GlobalActivityId, (SubsystemId, InvocationId)> = invocation_log
        .iter()
        .map(|e| (e.gid, (e.subsystem, e.invocation)))
        .collect();

    for record in tail {
        match record {
            WalRecord::Begin { version, seed } => {
                if *version != WAL_VERSION {
                    return Err(RebuildError::VersionMismatch { found: *version });
                }
                if *seed != workload.config.seed {
                    return Err(RebuildError::SeedMismatch {
                        found: *seed,
                        expected: workload.config.seed,
                    });
                }
            }
            WalRecord::Invocation {
                gid,
                subsystem,
                invocation,
                prepared,
            } => {
                let sid = SubsystemId(*subsystem);
                let process = workload
                    .spec
                    .process(gid.process)
                    .map_err(|_| RebuildError::Inconsistent(format!("unknown process {gid}")))?;
                let svc = process.service(gid.activity);
                let site = workload.deployment.site(svc).ok_or_else(|| {
                    RebuildError::Inconsistent(format!("service of {gid} not deployed"))
                })?;
                let agent = agents.get_mut(&sid).ok_or_else(|| {
                    RebuildError::Inconsistent(format!("unknown subsystem {subsystem}"))
                })?;
                let mode = if *prepared {
                    CommitMode::Deferred
                } else {
                    CommitMode::Immediate
                };
                let got = agent
                    .invoke(svc, &site.program, mode, false)
                    .map_err(|e| RebuildError::Inconsistent(format!("invoke {gid}: {e}")))?;
                let got_id = match got {
                    InvokeOutcome::Committed { invocation, .. } if !prepared => invocation,
                    InvokeOutcome::Prepared { invocation, .. } if *prepared => invocation,
                    other => {
                        return Err(RebuildError::Inconsistent(format!(
                            "replaying {gid} produced {other:?}, log says prepared={prepared}"
                        )))
                    }
                };
                if got_id.0 != *invocation {
                    return Err(RebuildError::Inconsistent(format!(
                        "replaying {gid} allocated invocation {}, log says {invocation}",
                        got_id.0
                    )));
                }
                invocation_log.push(InvocationLogEntry {
                    gid: *gid,
                    subsystem: sid,
                    invocation: got_id,
                    prepared: *prepared,
                });
                invocation_of.insert(*gid, (sid, got_id));
                if !prepared {
                    history.execute(*gid);
                }
            }
            WalRecord::Event { event } => {
                if let Event::Compensate(gid) = event {
                    let &(sid, inv) = invocation_of.get(gid).ok_or_else(|| {
                        RebuildError::Inconsistent(format!("compensating unlogged {gid}"))
                    })?;
                    let agent = agents.get_mut(&sid).expect("mapped agent exists");
                    let out = agent.compensate(inv).map_err(|e| {
                        RebuildError::Inconsistent(format!("compensate {gid}: {e}"))
                    })?;
                    if !matches!(out, InvokeOutcome::Committed { .. }) {
                        return Err(RebuildError::Inconsistent(format!(
                            "compensation of {gid} replayed to {out:?}"
                        )));
                    }
                }
                history.push(event.clone());
            }
            WalRecord::PreparedAborted {
                subsystem,
                invocation,
            } => {
                let agent = agents.get_mut(&SubsystemId(*subsystem)).ok_or_else(|| {
                    RebuildError::Inconsistent(format!("unknown subsystem {subsystem}"))
                })?;
                agent
                    .abort_prepared(InvocationId(*invocation))
                    .map_err(|e| {
                        RebuildError::Inconsistent(format!(
                            "abort of prepared invocation {invocation}: {e}"
                        ))
                    })?;
            }
            WalRecord::Decision {
                group,
                commit,
                participants,
            } => {
                let decision = if *commit {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                let participants = participants
                    .iter()
                    .map(|&(s, i)| Participant {
                        subsystem: SubsystemId(s),
                        invocation: InvocationId(i),
                    })
                    .collect();
                coordinator.restore_decision(*group, participants, decision);
            }
            WalRecord::DecisionApplied { group } => {
                coordinator
                    .complete_group(&mut agents, *group)
                    .map_err(|e| {
                        RebuildError::Inconsistent(format!("completing group {group}: {e}"))
                    })?;
            }
            WalRecord::EpochSeal { .. } => {}
            WalRecord::SnapshotMarker { .. } => {
                unreachable!("replay starts after the last snapshot marker")
            }
            WalRecord::ShardEvent { .. } => return Err(RebuildError::ShardLog),
        }
    }

    // Epoch-release window: an executed deferred invocation whose group
    // decision never reached the log gets a synthesized individual in-doubt
    // commit decision (sound — the group was only a batching artifact).
    let executed: BTreeSet<GlobalActivityId> = history
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Execute(g) => Some(*g),
            _ => None,
        })
        .collect();
    // `holds_prepared` is the release precondition: it screens out stale
    // log entries — an invocation that was later `PreparedAborted` while a
    // re-run of the same activity produced the Execute event.
    let synthesized: Vec<Participant> = invocation_log
        .iter()
        .filter(|e| e.prepared && executed.contains(&e.gid))
        .filter(|e| {
            agents
                .get(&e.subsystem)
                .is_some_and(|a| a.holds_prepared(e.invocation))
        })
        .map(|e| Participant {
            subsystem: e.subsystem,
            invocation: e.invocation,
        })
        .filter(|p| !coordinator.log().iter().any(|r| r.participants.contains(p)))
        .collect();
    for p in synthesized {
        let group = coordinator.next_group_id();
        coordinator.restore_decision(group, vec![p], Decision::Commit);
    }

    Ok(CrashImage {
        history,
        agents,
        coordinator,
        invocation_log,
    })
}

/// Rebuilds the merged history of a *concurrent-driver* WAL: shard events
/// sorted by their global merge ticket. Shard logs carry no agent state —
/// subsystem recovery stays an engine-WAL capability — but the recovered
/// history supports the same PRED/Proc-REC audits as a returned one.
pub fn wal_history(records: &[WalRecord]) -> Schedule {
    let mut stamped: Vec<(u64, Event)> = records
        .iter()
        .filter_map(|r| match r {
            WalRecord::ShardEvent { ticket, event, .. } => Some((*ticket, event.clone())),
            _ => None,
        })
        .collect();
    stamped.sort_by_key(|&(t, _)| t);
    let mut history = Schedule::new();
    for (_, e) in stamped {
        history.push(e);
    }
    history
}
