//! Thread-per-process driver: the same scheduling protocol exercised under
//! real concurrency.
//!
//! The virtual-time [`Engine`](crate::engine::Engine) is deterministic and
//! fast — ideal for experiments. This driver runs every process on its own
//! OS thread against a shared scheduler state (policy + history) protected
//! by a [`parking_lot::Mutex`], with a condition variable for admission
//! waits and deferred-commit releases. It demonstrates that the protocol is
//! driven entirely by its decision core and needs no global event ordering:
//! whatever interleaving the OS produces, the emitted history stays PRED
//! (verified by the stress tests).
//!
//! Lock structure: the global mutex serializes scheduling decisions and the
//! history; each subsystem agent sits behind its own mutex (lock order:
//! global → agent, never the reverse). Work that does not touch shared
//! scheduling state stays outside the global lock — per-thread RNG draws
//! and simulated (failure-injected) agent invocations, whose outcome is
//! ignored and which leave no trace in history or policy.

use crate::policy::{CertifierKind, Policy, PolicyKind};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;
use txproc_core::activity::Termination;
use txproc_core::ids::{ActivityId, GlobalActivityId, ProcessId, ServiceId};
use txproc_core::protocol::Admission;
use txproc_core::schedule::Schedule;
use txproc_core::state::{FailureOutcome, ProcessState, ProcessStatus};
use txproc_core::trace::{AbortReason, NoopSink, TraceEvent, TraceRecord, TraceSink};
use txproc_sim::metrics::Metrics;
use txproc_sim::workload::Workload;
use txproc_subsystem::agent::{Agent, CommitMode, InvocationId, InvokeOutcome};
use txproc_subsystem::deploy::ServiceSite;
use txproc_subsystem::subsystem::{Subsystem, SubsystemId};

/// Configuration of a concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Seed for per-process failure injection.
    pub seed: u64,
    /// Whether failable activities may fail.
    pub inject_failures: bool,
    /// Which §3.5 certifier implementation answers the per-event
    /// certification (certified policies only).
    pub certifier: CertifierKind,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            policy: PolicyKind::Pred,
            seed: 99,
            inject_failures: true,
            certifier: CertifierKind::Incremental,
        }
    }
}

/// Result of a concurrent run.
#[derive(Debug)]
pub struct ConcurrentResult {
    /// The emitted history (lock-serialized).
    pub history: Schedule,
    /// Aggregate metrics.
    pub metrics: Metrics,
}

/// Per-subsystem agents, each behind its own lock so agent work does not
/// serialize unrelated threads on the scheduler mutex.
type Agents = BTreeMap<SubsystemId, Mutex<Agent>>;

struct Shared<'a> {
    workload: &'a Workload,
    certify: bool,
    /// The incremental §3.5 certifier (when configured). Synced lazily with
    /// `history` inside `certified_ok`; the lock serializes history order,
    /// so the certifier sees exactly the emitted sequence.
    incremental: Option<txproc_core::pred_incremental::IncrementalPred<'a>>,
    policy: Box<dyn Policy + Send + 'a>,
    states: BTreeMap<ProcessId, ProcessState<'a>>,
    history: Schedule,
    metrics: Metrics,
    invocations: BTreeMap<GlobalActivityId, (SubsystemId, InvocationId)>,
    /// Deferred activities released by a predecessor's termination.
    released: BTreeMap<ProcessId, ActivityId>,
    pending_release: BTreeMap<ProcessId, (GlobalActivityId, ActivityId, SubsystemId, InvocationId)>,
    /// Releases granted by the policy but not yet certified/applied.
    ready_releases: Vec<ProcessId>,
    /// Releases that failed certification, stamped with the history length
    /// at failure time. Certification is a pure function of the history, so
    /// they are re-armed only once the history actually advanced — not
    /// busy-retried on every lock acquisition.
    stalled_releases: Vec<(ProcessId, usize)>,
    /// Structured decision trace. Records are stamped with `time == seq`
    /// (journal order): the driver has no virtual clock.
    sink: Box<dyn TraceSink + 'a>,
    trace_seq: u64,
    /// Last journalled block state per process (kind, wait set). The worker
    /// loop re-polls blocked requests every few milliseconds; one journal
    /// record per *distinct* blocked state keeps the trace readable.
    block_notes: BTreeMap<ProcessId, (u8, Vec<ProcessId>)>,
    /// Certification failures already journalled, stamped with the history
    /// length: the verdict is a pure function of the history, so re-polls at
    /// the same length are the same decision, not a new one.
    cert_fail_notes: Vec<(txproc_core::schedule::Event, usize)>,
}

/// A failure-injected ("simulated") agent invocation to run after the
/// global lock is dropped: its outcome is ignored and it leaves no trace in
/// history or policy, so only the agent's own lock is needed.
struct SimulatedInvoke {
    svc: ServiceId,
    site: ServiceSite,
}

impl Shared<'_> {
    #[inline]
    fn tracing(&self) -> bool {
        self.sink.enabled()
    }

    fn trace(&mut self, event: TraceEvent) {
        if !self.sink.enabled() {
            return;
        }
        let rec = TraceRecord {
            seq: self.trace_seq,
            time: self.trace_seq,
            history_len: self.history.len(),
            event,
        };
        self.trace_seq += 1;
        self.sink.record(rec);
    }

    fn count_abort_reason(&mut self, reason: AbortReason) {
        let r = &mut self.metrics.abort_reasons;
        match reason {
            AbortReason::Rejected => r.rejected += 1,
            AbortReason::Cascade => r.cascade += 1,
            AbortReason::Failure => r.failure += 1,
            AbortReason::CertStuck => r.cert_stuck += 1,
            AbortReason::Deadlock => r.deadlock += 1,
            AbortReason::External => r.external += 1,
        }
    }

    /// Whether this block state is new for `pid` (and notes it if so).
    fn note_blocked(&mut self, pid: ProcessId, kind: u8, wait_for: &[ProcessId]) -> bool {
        match self.block_notes.get(&pid) {
            Some((k, w)) if *k == kind && w == wait_for => false,
            _ => {
                self.block_notes.insert(pid, (kind, wait_for.to_vec()));
                true
            }
        }
    }

    fn clear_block_note(&mut self, pid: ProcessId) {
        self.block_notes.remove(&pid);
    }

    /// [`Self::certified_ok`] plus metrics accounting and a
    /// [`TraceEvent::CertifyOutcome`] record. Re-polls of a failed
    /// certification against an unchanged history are deduplicated.
    fn certified_traced(&mut self, event: txproc_core::schedule::Event) -> bool {
        if !self.certify {
            return true;
        }
        let ok = self.certified_ok(event.clone());
        if !ok {
            let len = self.history.len();
            self.cert_fail_notes.retain(|&(_, stamp)| stamp >= len);
            if self
                .cert_fail_notes
                .iter()
                .any(|(e, stamp)| *stamp == len && *e == event)
            {
                return false;
            }
            self.cert_fail_notes.push((event.clone(), len));
            self.metrics.cert_failures += 1;
        }
        if self.tracing() {
            let frontier = self.history.len() + 1;
            self.trace(TraceEvent::CertifyOutcome {
                event,
                ok,
                frontier,
            });
        }
        ok
    }

    /// §3.5 certification of the next effect event (see the virtual-time
    /// engine for the rationale).
    fn certified_ok(&mut self, event: txproc_core::schedule::Event) -> bool {
        if !self.certify {
            return true;
        }
        if let Some(inc) = &mut self.incremental {
            for e in &self.history.events()[inc.len()..] {
                inc.record(e).expect("emitted history event is legal");
            }
            return match inc.certify(&event) {
                Ok(verdict) => verdict.reducible,
                Err(_) => false,
            };
        }
        let mut candidate = self.history.clone();
        candidate.push(event);
        match txproc_core::completion::complete(&self.workload.spec, &candidate) {
            Ok(completed) => {
                txproc_core::reduction::reduce(&self.workload.spec, &completed).reducible
            }
            Err(_) => false,
        }
    }

    /// Attempts every granted-but-unapplied deferred release. Releases whose
    /// history event does not certify yet are parked in `stalled_releases`
    /// and re-armed when the history grows.
    fn drain_ready_releases(&mut self, agents: &Agents) {
        if !self.stalled_releases.is_empty() {
            let hist_len = self.history.len();
            let (rearm, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.stalled_releases)
                .into_iter()
                .partition(|&(_, stamp)| stamp < hist_len);
            self.stalled_releases = keep;
            self.ready_releases
                .extend(rearm.into_iter().map(|(pj, _)| pj));
        }
        let ready = std::mem::take(&mut self.ready_releases);
        for pj in ready {
            let Some(&(gid, a, sid, inv)) = self.pending_release.get(&pj) else {
                continue;
            };
            if !self.certified_traced(txproc_core::schedule::Event::Execute(gid)) {
                self.stalled_releases.push((pj, self.history.len()));
                continue;
            }
            self.pending_release.remove(&pj);
            agents[&sid].lock().release(inv).expect("prepared");
            self.history.execute(gid);
            self.policy.record_deferred_released(gid);
            self.metrics.activities += 1;
            self.clear_block_note(pj);
            if self.tracing() {
                self.trace(TraceEvent::CommitReleased { gid });
            }
            // The owner thread applies the state advance.
            self.released.insert(pj, a);
        }
    }
}

/// Runs every process of the workload on its own thread.
pub fn run_concurrent(workload: &Workload, cfg: ConcurrentConfig) -> ConcurrentResult {
    run_concurrent_traced(workload, cfg, Box::new(NoopSink))
}

/// Same as [`run_concurrent`], delivering structured [`TraceEvent`]s to
/// `sink`. The driver has no virtual clock, so records are stamped with
/// `time == seq` (journal order), and [`Metrics::blocked_time`] stays empty
/// (waits here are wall-clock polls, counted in `waits`). Multi-process
/// interleavings are nondeterministic; a single-process run yields a
/// bit-identical journal across repeats.
pub fn run_concurrent_traced<'a>(
    workload: &'a Workload,
    cfg: ConcurrentConfig,
    sink: Box<dyn TraceSink + 'a>,
) -> ConcurrentResult {
    let mut agents: Agents = BTreeMap::new();
    for sid in workload.deployment.subsystems() {
        agents.insert(
            sid,
            Mutex::new(Agent::new(Subsystem::new(sid, format!("sub{}", sid.0)))),
        );
    }
    let mut policy = cfg.policy.build(&workload.spec);
    let mut states = BTreeMap::new();
    for process in workload.spec.processes() {
        policy.register(process.id);
        states.insert(
            process.id,
            ProcessState::new(process, &workload.spec.catalog).expect("tree process"),
        );
    }
    let shared = Mutex::new(Shared {
        workload,
        certify: cfg.policy.certified(),
        incremental: (cfg.policy.certified() && cfg.certifier == CertifierKind::Incremental)
            .then(|| txproc_core::pred_incremental::IncrementalPred::new(&workload.spec)),
        policy,
        states,
        history: Schedule::new(),
        metrics: Metrics::new(),
        invocations: BTreeMap::new(),
        released: BTreeMap::new(),
        pending_release: BTreeMap::new(),
        ready_releases: Vec::new(),
        stalled_releases: Vec::new(),
        sink,
        trace_seq: 0,
        block_notes: BTreeMap::new(),
        cert_fail_notes: Vec::new(),
    });
    let cond = Condvar::new();

    std::thread::scope(|scope| {
        for process in workload.spec.processes() {
            let pid = process.id;
            let shared = &shared;
            let agents = &agents;
            let cond = &cond;
            let cfg = cfg.clone();
            scope.spawn(move || worker(workload, &cfg, pid, shared, agents, cond));
        }
    });

    let shared = shared.into_inner();
    ConcurrentResult {
        history: shared.history,
        metrics: shared.metrics,
    }
}

fn worker<'a>(
    workload: &'a Workload,
    cfg: &ConcurrentConfig,
    pid: ProcessId,
    shared: &Mutex<Shared<'a>>,
    agents: &Agents,
    cond: &Condvar,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (u64::from(pid.0) << 32));
    // Consecutive iterations without visible progress; escalates to a
    // self-abort (always legal for an uncommitted process) so that blocked
    // situations that only an abort can resolve cannot livelock the run.
    let mut no_progress = 0u32;
    let mut last_fingerprint = None;
    loop {
        // Pre-draw the failure-injection coin outside the lock (the driver
        // is nondeterministic anyway; only the per-thread stream matters).
        let coin = rng.gen_range(0.0..1.0f64);
        let mut guard = shared.lock();
        guard.drain_ready_releases(agents);
        let fingerprint = (guard.history.len(), guard.states[&pid].steps().len());
        if last_fingerprint == Some(fingerprint) {
            no_progress += 1;
        } else {
            no_progress = 0;
        }
        last_fingerprint = Some(fingerprint);
        if no_progress > 0 && no_progress.is_multiple_of(200) && guard.states[&pid].is_active() {
            if guard.states[&pid].abort_in_progress() {
                // Our completion is blocked by other processes' hypothetical
                // completions (§3.5): group-abort them so their real
                // completions unblock ours.
                let others: Vec<ProcessId> = guard
                    .states
                    .iter()
                    .filter(|(&q, st)| q != pid && st.is_active() && !st.abort_in_progress())
                    .map(|(&q, _)| q)
                    .collect();
                if guard.tracing() && !others.is_empty() {
                    guard.trace(TraceEvent::GroupAbort {
                        initiator: Some(pid),
                        victims: others.iter().rev().copied().collect(),
                        trigger: None,
                    });
                }
                for q in others.into_iter().rev() {
                    cascade_abort(&mut guard, agents, q);
                }
            } else {
                // Nothing moved for a while: only an abort can resolve this.
                guard.metrics.rejections += 1;
                initiate_abort(
                    workload,
                    pid,
                    &mut guard,
                    agents,
                    AbortReason::Deadlock,
                    None,
                );
            }
            cond.notify_all();
            continue;
        }
        if no_progress >= 20_000 {
            let mut diag = String::new();
            for (p, st) in &guard.states {
                diag.push_str(&format!(
                    "\n  {p}: status={:?} aborting={} next_comp={:?} next_act={:?} can_commit={}",
                    st.status(),
                    st.abort_in_progress(),
                    st.next_compensation(),
                    st.next_activity(),
                    st.can_commit()
                ));
            }
            panic!(
                "{pid}: concurrent run livelocked\nhistory: {}{diag}",
                txproc_core::schedule::render(&guard.history)
            );
        }
        let status = guard.states[&pid].status();
        if status != ProcessStatus::Active {
            finalize(&mut guard, agents, pid);
            cond.notify_all();
            return;
        }
        // Deferred release arrived?
        if let Some(a) = guard.released.remove(&pid) {
            guard
                .states
                .get_mut(&pid)
                .expect("state")
                .apply_commit(a)
                .expect("released frontier");
            drop(guard);
            std::thread::yield_now();
            continue;
        }
        if guard.pending_release.contains_key(&pid) {
            // Waiting for a predecessor to release our deferred commit.
            cond.wait_for(&mut guard, Duration::from_millis(10));
            continue;
        }
        // Pending compensation?
        if let Some(c) = guard.states[&pid].next_compensation() {
            let gid = GlobalActivityId::new(pid, c);
            if !guard.certified_traced(txproc_core::schedule::Event::Compensate(gid)) {
                cond.wait_for(&mut guard, Duration::from_millis(2));
                continue;
            }
            let (sid, inv) = guard.invocations[&gid];
            let outcome = agents[&sid].lock().compensate(inv).expect("subsystem up");
            match outcome {
                InvokeOutcome::Committed { .. } => {
                    if guard.tracing() {
                        let service = workload.spec.process(pid).expect("known").service(c);
                        guard.trace(TraceEvent::CompensationStarted { gid, service });
                    }
                    guard.history.compensate(gid);
                    guard.policy.record_compensated(gid);
                    guard
                        .states
                        .get_mut(&pid)
                        .expect("state")
                        .apply_compensation(c)
                        .expect("queued");
                    guard.metrics.compensations += 1;
                }
                InvokeOutcome::Busy { .. } => {
                    cond.wait_for(&mut guard, Duration::from_millis(5));
                }
                other => panic!("unexpected compensation outcome {other:?}"),
            }
            drop(guard);
            std::thread::yield_now();
            continue;
        }
        // Next forward activity?
        if let Some(a) = guard.states[&pid].next_activity() {
            let simulated = step_activity(workload, cfg, pid, a, &mut guard, agents, cond, coin);
            drop(guard);
            // Failure-injected invocation: agent work only, no shared
            // scheduling state — run it without the global lock.
            if let Some(sim) = simulated {
                let _ = agents[&sim.site.subsystem].lock().invoke(
                    sim.svc,
                    &sim.site.program,
                    CommitMode::Immediate,
                    true,
                );
            }
            std::thread::yield_now();
            continue;
        }
        // Commit.
        if guard.states[&pid].can_commit() {
            match guard.policy.can_commit(pid) {
                Ok(()) if !guard.certified_traced(txproc_core::schedule::Event::Commit(pid)) => {
                    cond.wait_for(&mut guard, Duration::from_millis(2));
                    continue;
                }
                Ok(()) => {
                    guard
                        .states
                        .get_mut(&pid)
                        .expect("state")
                        .apply_process_commit()
                        .expect("finished path");
                    guard.history.commit(pid);
                    finalize(&mut guard, agents, pid);
                    cond.notify_all();
                    return;
                }
                Err(blockers) => {
                    guard.metrics.waits += 1;
                    if guard.tracing() && guard.note_blocked(pid, 1, &blockers) {
                        guard.trace(TraceEvent::CommitBlocked {
                            pid,
                            wait_for: blockers,
                        });
                    }
                    cond.wait_for(&mut guard, Duration::from_millis(10));
                }
            }
            continue;
        }
        // Nothing to do right now (e.g. mid-abort with empty completion).
        cond.wait_for(&mut guard, Duration::from_millis(5));
    }
}

/// Runs one scheduling step for the next forward activity. Returns the
/// simulated (failure-injected) invocation to perform after the caller
/// drops the global lock, if any.
#[allow(clippy::too_many_arguments)]
fn step_activity<'a>(
    workload: &'a Workload,
    cfg: &ConcurrentConfig,
    pid: ProcessId,
    a: ActivityId,
    guard: &mut Shared<'a>,
    agents: &Agents,
    cond: &Condvar,
    coin: f64,
) -> Option<SimulatedInvoke> {
    let gid = GlobalActivityId::new(pid, a);
    let process = workload.spec.process(pid).expect("known");
    let svc = process.service(a);
    let site = workload.deployment.site(svc).expect("deployed").clone();
    let termination = workload.spec.catalog.termination(svc);
    let in_completion = guard.states[&pid].abort_in_progress();
    let admission = if in_completion {
        Admission::Allow
    } else {
        guard.policy.request(pid, gid, svc)
    };
    let (mode, blockers) = match admission {
        Admission::Allow => (CommitMode::Immediate, Vec::new()),
        Admission::AllowDeferred { blockers } => (CommitMode::Deferred, blockers),
        Admission::Wait { blockers } => {
            guard.metrics.waits += 1;
            if guard.tracing() && guard.note_blocked(pid, 0, &blockers) {
                guard.trace(TraceEvent::RequestBlocked {
                    gid,
                    service: svc,
                    blockers,
                });
            }
            // Wait; re-evaluated on the next iteration.
            return None;
        }
        Admission::Reject { conflicting } => {
            guard.metrics.rejections += 1;
            if guard.tracing() {
                guard.trace(TraceEvent::RequestRejected {
                    gid,
                    service: svc,
                    conflicting,
                });
            }
            initiate_abort(
                workload,
                pid,
                guard,
                agents,
                AbortReason::Rejected,
                Some(gid),
            );
            cond.notify_all();
            return None;
        }
    };
    // Failure injection (coin pre-drawn outside the lock).
    let inject = cfg.inject_failures && coin < p_fail(workload);
    if inject && termination.can_fail() {
        guard.history.fail(gid);
        if guard.tracing() {
            guard.trace(TraceEvent::ActivityFailed { gid, service: svc });
        }
        let outcome = guard
            .states
            .get_mut(&pid)
            .expect("state")
            .apply_failure(a)
            .expect("frontier");
        match outcome {
            FailureOutcome::Stuck => panic!("guaranteed-termination process stuck at {gid}"),
            FailureOutcome::ProcessAbort { .. } => {
                guard.count_abort_reason(AbortReason::Failure);
                guard.clear_block_note(pid);
                if guard.tracing() {
                    guard.trace(TraceEvent::AbortStarted {
                        pid,
                        reason: AbortReason::Failure,
                    });
                }
            }
            FailureOutcome::Alternative { .. } => {}
        }
        return Some(SimulatedInvoke { svc, site });
    }
    if inject && termination == Termination::Retriable {
        guard.metrics.retries += 1;
        return Some(SimulatedInvoke { svc, site });
    }
    if mode == CommitMode::Immediate
        && !guard.certified_traced(txproc_core::schedule::Event::Execute(gid))
    {
        // Retry on the next iteration, after other completions progressed.
        return None;
    }
    let outcome = agents[&site.subsystem]
        .lock()
        .invoke(svc, &site.program, mode, false)
        .expect("subsystem up");
    match outcome {
        InvokeOutcome::Committed { invocation, .. } => {
            guard.invocations.insert(gid, (site.subsystem, invocation));
            guard.history.execute(gid);
            let edges_added = guard.policy.record_executed(gid, false);
            guard
                .states
                .get_mut(&pid)
                .expect("state")
                .apply_commit(a)
                .expect("frontier");
            guard.metrics.activities += 1;
            guard.clear_block_note(pid);
            if guard.tracing() {
                guard.trace(TraceEvent::RequestAdmitted {
                    gid,
                    service: svc,
                    deferred: false,
                    blockers: Vec::new(),
                    edges_added,
                });
            }
        }
        InvokeOutcome::Prepared { invocation, .. } => {
            guard.invocations.insert(gid, (site.subsystem, invocation));
            let edges_added = guard.policy.record_executed(gid, true);
            guard
                .pending_release
                .insert(pid, (gid, a, site.subsystem, invocation));
            guard.metrics.deferred_commits += 1;
            guard.clear_block_note(pid);
            if guard.tracing() {
                guard.trace(TraceEvent::RequestAdmitted {
                    gid,
                    service: svc,
                    deferred: true,
                    blockers: blockers.clone(),
                    edges_added,
                });
                guard.trace(TraceEvent::CommitDeferred { gid, blockers });
            }
        }
        InvokeOutcome::Busy { .. } => {
            // Retry on the next iteration.
        }
        InvokeOutcome::Aborted => unreachable!("no injection requested"),
    }
    None
}

fn p_fail(workload: &Workload) -> f64 {
    workload.config.failure_probability.clamp(0.0, 1.0)
}

fn finalize(guard: &mut Shared<'_>, agents: &Agents, pid: ProcessId) {
    let status = guard.states[&pid].status();
    let released = match status {
        ProcessStatus::Committed => {
            guard.metrics.committed += 1;
            guard.clear_block_note(pid);
            if guard.tracing() {
                guard.trace(TraceEvent::ProcessCommitted { pid });
            }
            guard.policy.on_commit(pid)
        }
        ProcessStatus::Aborted => {
            guard.metrics.aborted += 1;
            guard.clear_block_note(pid);
            if guard.tracing() {
                guard.trace(TraceEvent::ProcessAborted { pid });
            }
            guard.policy.on_abort(pid)
        }
        ProcessStatus::Active => return,
    };
    for (pj, _gids) in released {
        if guard.pending_release.contains_key(&pj) {
            guard.ready_releases.push(pj);
        }
    }
    guard.drain_ready_releases(agents);
}

/// Cascade-aborts a single process (prepared invocations dropped first).
fn cascade_abort(guard: &mut Shared<'_>, agents: &Agents, v: ProcessId) {
    if !guard.states[&v].is_active() || guard.states[&v].abort_in_progress() {
        return;
    }
    guard.metrics.cascaded += 1;
    guard.count_abort_reason(AbortReason::Cascade);
    guard.clear_block_note(v);
    if guard.tracing() {
        guard.trace(TraceEvent::AbortStarted {
            pid: v,
            reason: AbortReason::Cascade,
        });
    }
    if let Some((gid, _a, sid, inv)) = guard.pending_release.remove(&v) {
        agents[&sid].lock().abort_prepared(inv).expect("prepared");
        guard.invocations.remove(&gid);
        guard.policy.record_prepared_aborted(gid);
    }
    guard.policy.on_abort_begin(v);
    guard.history.abort(v);
    guard
        .states
        .get_mut(&v)
        .expect("state")
        .apply_process_abort()
        .expect("active");
}

fn initiate_abort<'a>(
    workload: &'a Workload,
    pid: ProcessId,
    guard: &mut Shared<'a>,
    agents: &Agents,
    reason: AbortReason,
    trigger: Option<GlobalActivityId>,
) {
    if guard.states[&pid].abort_in_progress() || !guard.states[&pid].is_active() {
        return;
    }
    let completion = guard.states[&pid].completion();
    let comp_gids: Vec<GlobalActivityId> = completion
        .compensations
        .iter()
        .map(|&a| GlobalActivityId::new(pid, a))
        .collect();
    let process = workload.spec.process(pid).expect("known");
    let fwd: Vec<_> = completion
        .forward
        .iter()
        .map(|&a| process.service(a))
        .collect();
    let victims = guard.policy.plan_abort(pid, &comp_gids, &fwd);
    if guard.tracing() && !victims.is_empty() {
        guard.trace(TraceEvent::GroupAbort {
            initiator: Some(pid),
            victims: victims.clone(),
            trigger,
        });
    }
    for v in victims {
        cascade_abort(guard, agents, v);
    }
    if guard.states[&pid].is_active() && !guard.states[&pid].abort_in_progress() {
        if let Some((gid, _a, sid, inv)) = guard.pending_release.remove(&pid) {
            agents[&sid].lock().abort_prepared(inv).expect("prepared");
            guard.invocations.remove(&gid);
            guard.policy.record_prepared_aborted(gid);
        }
        guard.count_abort_reason(reason);
        guard.clear_block_note(pid);
        if guard.tracing() {
            guard.trace(TraceEvent::AbortStarted { pid, reason });
        }
        guard.policy.on_abort_begin(pid);
        guard.history.abort(pid);
        guard
            .states
            .get_mut(&pid)
            .expect("state")
            .apply_process_abort()
            .expect("active");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txproc_sim::workload::{generate, WorkloadConfig};

    #[test]
    fn concurrent_run_terminates_and_is_pred() {
        for seed in 0..4 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 5,
                conflict_density: 0.4,
                failure_probability: 0.15,
                ..WorkloadConfig::default()
            });
            let result = run_concurrent(
                &w,
                ConcurrentConfig {
                    seed,
                    ..ConcurrentConfig::default()
                },
            );
            assert_eq!(result.metrics.terminated(), 5, "seed {seed}");
            assert!(
                txproc_core::pred::is_pred(&w.spec, &result.history).unwrap(),
                "seed {seed}: concurrent history not PRED:\n{}",
                txproc_core::schedule::render(&result.history)
            );
        }
    }

    #[test]
    fn concurrent_run_with_batch_certifier_is_pred() {
        // Thread interleavings are nondeterministic, so histories cannot be
        // compared against an incremental run; the contract is that whatever
        // interleaving the OS produces, a batch-certified history is still
        // PRED.
        for seed in 0..4 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 5,
                conflict_density: 0.4,
                failure_probability: 0.15,
                ..WorkloadConfig::default()
            });
            let result = run_concurrent(
                &w,
                ConcurrentConfig {
                    seed,
                    certifier: CertifierKind::Batch,
                    ..ConcurrentConfig::default()
                },
            );
            assert_eq!(result.metrics.terminated(), 5, "seed {seed}");
            assert!(
                txproc_core::pred::is_pred(&w.spec, &result.history).unwrap(),
                "seed {seed}: batch-certified history not PRED:\n{}",
                txproc_core::schedule::render(&result.history)
            );
        }
    }

    #[test]
    fn concurrent_run_without_failures_commits_everything() {
        let w = generate(&WorkloadConfig {
            seed: 4,
            processes: 6,
            conflict_density: 0.3,
            failure_probability: 0.0,
            ..WorkloadConfig::default()
        });
        let result = run_concurrent(
            &w,
            ConcurrentConfig {
                inject_failures: false,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(result.metrics.committed, 6);
        assert_eq!(result.metrics.aborted, 0);
    }

    #[test]
    fn concurrent_run_uncertified_protocol_terminates() {
        // The pure protocol (no certifier) under real threads — the
        // bench-harness configuration. PRED is not guaranteed without
        // certification (pred-protocol is the "necessary but not
        // sufficient" ablation); the contract here is termination with a
        // fully accounted outcome.
        for seed in 0..4 {
            let w = generate(&WorkloadConfig {
                seed: seed + 11,
                processes: 6,
                conflict_density: 0.4,
                failure_probability: 0.15,
                ..WorkloadConfig::default()
            });
            let result = run_concurrent(
                &w,
                ConcurrentConfig {
                    policy: PolicyKind::PredProtocol,
                    seed,
                    ..ConcurrentConfig::default()
                },
            );
            assert_eq!(result.metrics.terminated(), 6, "seed {seed}");
        }
    }
}
