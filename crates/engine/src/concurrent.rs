//! Concurrent driver: the same scheduling protocol exercised under real
//! concurrency, sharded by conflict domains, with two runtimes.
//!
//! The virtual-time [`Engine`](crate::engine::Engine) is deterministic and
//! fast — ideal for experiments. This driver runs the workload under real
//! OS concurrency. The paper's protocol (Lemmas 1–3) only ever orders
//! operations that *conflict*, so processes in different connected
//! components of the potential-conflict graph impose no ordering
//! obligations on each other. The driver exploits that: a
//! [`DomainPartition`] splits the workload into conflict domains, and each
//! shard owns a complete scheduler state — its own [`Policy`] instance,
//! incremental §3.5 certifier and history segment — so admission,
//! certification, commit and abort decisions in disjoint domains proceed
//! fully in parallel. A deterministic merge (events are stamped with a
//! global atomic ticket at emission) produces one global [`Schedule`];
//! shard-local PRED plus the absence of cross-shard conflicts implies
//! global PRED (see DESIGN.md "Conflict-domain sharding" for the
//! commutation argument, and the differential stress tests for the oracle).
//!
//! # Runtimes
//!
//! Both runtimes drive the same non-blocking state-machine step
//! ([`advance`]); they differ only in *who* calls it and what a blocked
//! process costs:
//!
//! * [`RuntimeKind::Events`] (default) — a fixed worker pool (default
//!   `min(cores, shards)`). Each worker owns a disjoint set of shards;
//!   per shard it keeps a run queue of runnable processes and a waiting
//!   set of blocked ones. A blocked process costs a queue entry, not a
//!   parked 2 MB thread stack, so the runtime scales to 100k+ in-flight
//!   processes. Any step that bumps the shard generation re-queues the
//!   shard's waiters (notification-completeness is unchanged from the
//!   thread runtime: a blocker is always a shard-mate, and every
//!   unblocking mutation bumps the generation).
//! * [`RuntimeKind::Threads`] — one OS thread per process, condvar-parked
//!   while blocked. Kept as the differential baseline for the events
//!   runtime (bit-equal outcomes on disjoint workloads); capped at
//!   [`RuntimeKind::max_processes`] threads.
//!
//! Lock order (never acquired in reverse):
//!
//! | level | lock                | protects                              |
//! |-------|---------------------|---------------------------------------|
//! | 1     | shard mutex         | one domain's policy/certifier/history |
//! | 2     | trace sink mutex    | global journal + dense trace seq      |
//! | 2     | agent mutex (per subsystem) | subsystem state + key locks   |
//!
//! No thread ever holds two shard locks, and two level-2 locks are never
//! nested. Agents are shared across shards, but a key lock held by a
//! prepared invocation can only block a *conflicting* service (reads do not
//! lock; additive writes share their lock), and conflicting services are by
//! construction in the same domain — so cross-shard `Busy` outcomes cannot
//! occur and shard-local notification is complete.
//!
//! In the thread runtime, waiting is notification-driven: every history
//! mutation bumps the shard *generation* and broadcasts the shard condvar
//! (the pre-sharding driver polled on fixed 2/5/10 ms sleeps instead). A
//! woken waiter whose generation did not move counts as a spurious wakeup
//! in [`ShardMetrics`]. Waits carry no timeout: when every live worker of
//! a shard would be parked, the last one re-polls instead of sleeping, so
//! deadlock escalation needs no timer (the historical 3 ms fallback wait
//! only masked lost-notify bugs; it can be restored for debugging with
//! [`ConcurrentConfig::fallback_wait`]).
//!
//! Failure injection is a pure function of `(seed, activity, attempt)`, so
//! outcome draws are independent of thread interleaving: on workloads whose
//! processes are pairwise non-conflicting the sharded and single-lock
//! configurations — and the two runtimes — produce bit-equal commit/abort
//! sets.

use crate::policy::{CertifierKind, Policy, PolicyKind};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use txproc_core::activity::Termination;
use txproc_core::domains::DomainPartition;
use txproc_core::ids::{ActivityId, GlobalActivityId, ProcessId, ServiceId};
use txproc_core::protocol::Admission;
use txproc_core::schedule::{Event, Schedule};
use txproc_core::state::{FailureOutcome, ProcessState, ProcessStatus};
use txproc_core::telemetry::{Counter, Gauge, Phase, Telemetry};
use txproc_core::trace::{AbortReason, NoopSink, TraceEvent, TraceRecord, TraceSink};
use txproc_core::wal::{WalRecord, WalWriter};
use txproc_sim::metrics::{Metrics, RuntimeMetrics, ShardMetrics};
use txproc_sim::workload::Workload;
use txproc_subsystem::agent::{Agent, CommitMode, InvocationId, InvokeOutcome};
use txproc_subsystem::deploy::ServiceSite;
use txproc_subsystem::subsystem::{Subsystem, SubsystemId};

/// Debug-only bound on a condvar wait, restored by
/// [`ConcurrentConfig::fallback_wait`]. Within a shard every unblocking
/// mutation notifies, so in normal operation waits carry no timeout — a
/// timeout only masks lost-notify bugs (see the lost-wakeup stress test).
const FALLBACK_WAIT: Duration = Duration::from_millis(3);

/// Consecutive state-machine steps one event worker runs on a shard before
/// moving to its next shard (bounds cross-shard starvation on a worker
/// that owns several).
const STEP_BUDGET: u32 = 128;

/// Longest nap an idle event worker takes while waiting for the next
/// open-system arrival on one of its shards (a bound, not a poll period:
/// the nap targets the exact arrival offset).
const MAX_IDLE_NAP: Duration = Duration::from_millis(100);

/// Per-shard admission cap of the events runtime: a due arrival is deferred
/// while the shard already has this many live processes. Certification cost
/// grows superlinearly with the concurrently-active set (the §3.5 overlay
/// pairs every pending completion activity against every other), so
/// throttling admission keeps the certifier frontier small and raises both
/// throughput and commit rate on dense workloads — the same reason a real
/// TP monitor runs with a bounded multiprogramming level. Deferred
/// processes cost a queue entry, not a stack, so the cap bounds *churn*,
/// not capacity.
const ADMIT_CAP: usize = 32;

/// How the driver maps processes onto scheduler shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// One scheduler state for all processes — the classic single-lock
    /// driver, kept as the differential baseline.
    Single,
    /// One shard per conflict domain of the workload (the partition of the
    /// potential-conflict graph computed by [`DomainPartition`]).
    Auto,
    /// Conflict domains grouped round-robin into at most N shards. Whole
    /// domains only: the partition invariant (no cross-shard conflicts) is
    /// never violated, so `Fixed(1)` is semantically the single-lock driver.
    Fixed(u32),
}

impl ShardMode {
    /// Parses `auto`, `single`, or a shard count.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(Self::Auto),
            "single" => Some(Self::Single),
            _ => s.parse::<u32>().ok().map(|n| match n {
                1 => Self::Single,
                n => Self::Fixed(n),
            }),
        }
    }

    /// Stable label for reports (`auto`, `single`, or the count).
    pub fn label(&self) -> String {
        match self {
            Self::Auto => "auto".into(),
            Self::Single => "single".into(),
            Self::Fixed(n) => n.to_string(),
        }
    }
}

// Serialized as the CLI label (`auto` / `single` / a count) so bench
// reports and the `--shards` flag speak the same vocabulary.
impl serde::Serialize for ShardMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label())
    }
}

impl serde::Deserialize for ShardMode {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Self::parse(s)
                .ok_or_else(|| serde::DeError::new(format!("invalid shard mode `{s}`"))),
            other => Err(serde::DeError::new(format!(
                "expected shard mode string, got {other:?}"
            ))),
        }
    }
}

/// How processes are executed: parked threads or worker-pool state
/// machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// One OS thread per process, condvar-parked while blocked. The
    /// differential baseline; capped at [`RuntimeKind::max_processes`].
    Threads,
    /// Event-driven worker pool (the default): processes are state
    /// machines on per-shard run queues, stepped by `min(cores, shards)`
    /// workers. No per-process cap.
    Events,
}

impl RuntimeKind {
    /// Parses `threads` or `events`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threads" => Some(Self::Threads),
            "events" => Some(Self::Events),
            _ => None,
        }
    }

    /// Stable label for reports and the `--runtime` flag.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Threads => "threads",
            Self::Events => "events",
        }
    }

    /// In-flight process ceiling of the runtime, if any. The thread
    /// runtime spawns one OS thread (≈2 MB of stack) per process, so it is
    /// capped; the events runtime holds a blocked process as a run-queue
    /// entry and has no ceiling.
    pub fn max_processes(&self) -> Option<usize> {
        match self {
            Self::Threads => Some(512),
            Self::Events => None,
        }
    }
}

// Serialized as the CLI label so bench reports and `--runtime` agree.
impl serde::Serialize for RuntimeKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl serde::Deserialize for RuntimeKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Self::parse(s)
                .ok_or_else(|| serde::DeError::new(format!("invalid runtime kind `{s}`"))),
            other => Err(serde::DeError::new(format!(
                "expected runtime kind string, got {other:?}"
            ))),
        }
    }
}

/// Configuration of a concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Seed for per-process failure injection.
    pub seed: u64,
    /// Whether failable activities may fail.
    pub inject_failures: bool,
    /// Which §3.5 certifier implementation answers the per-event
    /// certification (certified policies only).
    pub certifier: CertifierKind,
    /// Shard topology. `Auto` (the default) shards by conflict domain;
    /// `Single` is the pre-sharding single-lock driver.
    pub shards: ShardMode,
    /// Execution runtime. `Events` (the default) steps processes with a
    /// fixed worker pool; `Threads` is the thread-per-process baseline.
    pub runtime: RuntimeKind,
    /// Worker-pool size for the events runtime. `None` (the default)
    /// resolves to `min(available cores, shard count)`. Ignored by the
    /// thread runtime.
    pub workers: Option<usize>,
    /// Debug flag: restore the historical 3 ms fallback timeout on thread-
    /// runtime condvar waits. Off by default — the timeout only masks
    /// lost-notify bugs.
    pub fallback_wait: bool,
    /// Epoch size for group certification and batch commit. `0` keeps the
    /// per-event path bit-identical to earlier releases. With `N > 0` each
    /// shard retains certified plans for their matching `record` (one
    /// closure computation per admitted event instead of two), buffers its
    /// trace records and appends them to the global journal one batch — one
    /// sink lock acquisition — at a time, and groups deferred-commit
    /// releases into per-subsystem rounds of at most `N`. Epochs close on
    /// fill, on certification failure (conflict pressure) and at run end.
    /// `N = 1` closes an epoch per event and stays bit-identical — history
    /// *and* metrics — to `N = 0`.
    pub epoch: usize,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            policy: PolicyKind::Pred,
            seed: 99,
            inject_failures: true,
            certifier: CertifierKind::Incremental,
            shards: ShardMode::Auto,
            runtime: RuntimeKind::Events,
            workers: None,
            fallback_wait: false,
            epoch: 0,
        }
    }
}

impl ConcurrentConfig {
    /// Checks the configuration against a workload size. The in-flight
    /// limit is derived from the runtime kind, not a hardcoded ceiling:
    /// the error names the knob that lifts it.
    pub fn validate(&self, processes: usize) -> Result<(), String> {
        if let Some(cap) = self.runtime.max_processes() {
            if processes > cap {
                return Err(format!(
                    "workload has {processes} processes but the `{}` runtime spawns one OS \
                     thread per process and is capped at {cap}; select the event-driven \
                     runtime (`--runtime events` / `ConcurrentConfig::runtime = \
                     RuntimeKind::Events`) to lift the cap",
                    self.runtime.label()
                ));
            }
        }
        if self.workers == Some(0) {
            return Err("worker pool must have at least 1 worker (`--workers` / \
                 `ConcurrentConfig::workers`)"
                .to_string());
        }
        Ok(())
    }

    /// Worker-pool size the events runtime will use for a given shard
    /// count.
    pub fn resolved_workers(&self, shard_count: usize) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.workers
            .unwrap_or_else(|| cores.min(shard_count.max(1)))
            .max(1)
    }
}

/// Result of a concurrent run.
#[derive(Debug)]
pub struct ConcurrentResult {
    /// The merged global history (shard segments interleaved in ticket
    /// order).
    pub history: Schedule,
    /// Aggregate metrics; `metrics.shards` holds one entry per shard.
    pub metrics: Metrics,
}

/// Per-subsystem agents, each behind its own lock so agent work does not
/// serialize unrelated threads on a scheduler lock.
type Agents = BTreeMap<SubsystemId, Mutex<Agent>>;

/// Shared trace lane: one global journal with a dense sequence, fed by all
/// shards. `enabled` is hoisted out of the lock (a sink's enabledness is
/// static) so the disabled path costs one branch.
struct TraceShared<'a> {
    sink: Mutex<Box<dyn TraceSink + 'a>>,
    seq: AtomicU64,
    enabled: bool,
    /// Static shard→worker assignment of the events runtime (`None` under
    /// the thread runtime, which has no worker lane).
    worker_of_shard: Option<Vec<u32>>,
}

impl TraceShared<'_> {
    fn record(&self, shard: u32, history_len: usize, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        let worker = self.worker_of_shard.as_ref().map(|map| map[shard as usize]);
        let mut sink = self.sink.lock();
        // Sequence assignment under the sink lock keeps journal order and
        // seq order identical even when shards race to record.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        sink.record(TraceRecord {
            seq,
            time: seq,
            history_len,
            shard: Some(shard),
            worker,
            event,
        });
    }

    /// Appends a whole epoch of one shard's trace records under a single
    /// sink-lock acquisition. Sequence numbers are assigned at flush time
    /// (still under the lock), so journal order and seq order stay
    /// identical; the flush lets a buffering sink write the batch as one
    /// I/O operation.
    fn record_batch(&self, shard: u32, entries: Vec<(usize, TraceEvent)>) {
        if !self.enabled || entries.is_empty() {
            return;
        }
        let worker = self.worker_of_shard.as_ref().map(|map| map[shard as usize]);
        let mut sink = self.sink.lock();
        for (history_len, event) in entries {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            sink.record(TraceRecord {
                seq,
                time: seq,
                history_len,
                shard: Some(shard),
                worker,
                event,
            });
        }
        sink.flush();
    }
}

/// Everything a worker needs besides its shard: immutable run-wide context.
struct RunCtx<'r, 'a> {
    workload: &'a Workload,
    cfg: &'r ConcurrentConfig,
    agents: &'r Agents,
    /// Global event ticket counter: stamps every emitted event with its
    /// position in the merged schedule.
    tickets: &'r AtomicU64,
    trace: &'r TraceShared<'a>,
    /// Telemetry handle shared by all workers (run-queue delay phase and
    /// per-worker instruments).
    tele: Telemetry,
    run_start: Instant,
    /// Arrival offset per process in microseconds (one virtual tick of the
    /// workload's arrival model = 1µs here). All zeros for closed arrivals.
    arrivals: BTreeMap<ProcessId, u64>,
    /// Processes currently in flight (arrived, not yet terminated) and the
    /// peak observed — the open-system concurrency level actually reached.
    live_now: AtomicU64,
    live_peak: AtomicU64,
    /// Durable journal of the merged history: every emitted shard event is
    /// appended as a ticket-stamped [`WalRecord::ShardEvent`], so the
    /// ticket-sorted log replays to the exact returned history. The shard
    /// log carries no agent state — subsystem recovery stays an
    /// engine-WAL capability.
    wal: Option<&'r Mutex<WalWriter>>,
}

impl RunCtx<'_, '_> {
    fn process_arrived(&self) {
        let now = 1 + self.live_now.fetch_add(1, Ordering::Relaxed);
        self.live_peak.fetch_max(now, Ordering::Relaxed);
    }

    fn process_terminated(&self) {
        self.live_now.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One conflict-domain shard: a complete scheduler state behind its own
/// lock and condvar, plus contention counters (atomics so they survive into
/// the merge without locking).
struct Shard<'a> {
    id: u32,
    state: Mutex<ShardState<'a>>,
    cond: Condvar,
    lock_wait_ns: AtomicU64,
    lock_hold_ns: AtomicU64,
    notifies: AtomicU64,
    wakeups: AtomicU64,
    spurious_wakeups: AtomicU64,
    /// Telemetry handle for the lock-wait / lock-hold phase timers (off by
    /// default: one branch per lock operation).
    tele: Telemetry,
    /// Per-shard lock-wait counter for the live view (`txproc top`).
    tele_lock_wait: Counter,
}

impl<'a> Shard<'a> {
    fn new(id: u32, state: ShardState<'a>, tele: Telemetry) -> Self {
        let tele_lock_wait = tele.counter("lock_wait_ns_total", &[("shard", id.to_string())]);
        Self {
            id,
            state: Mutex::new(state),
            cond: Condvar::new(),
            lock_wait_ns: AtomicU64::new(0),
            lock_hold_ns: AtomicU64::new(0),
            notifies: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            spurious_wakeups: AtomicU64::new(0),
            tele,
            tele_lock_wait,
        }
    }

    /// Acquires the shard lock, charging the blocked time to `lock_wait_ns`
    /// and (via the guard's `Drop`) the held time to `lock_hold_ns`.
    fn lock(&self) -> ShardGuard<'_, 'a> {
        let t0 = Instant::now();
        let guard = self.state.lock();
        let waited = t0.elapsed().as_nanos() as u64;
        self.lock_wait_ns.fetch_add(waited, Ordering::Relaxed);
        self.tele.phase_ns(Phase::LockWait, waited);
        self.tele_lock_wait.add(waited);
        ShardGuard {
            guard,
            shard: self,
            acquired: Instant::now(),
            excluded: Duration::ZERO,
        }
    }

    /// Broadcasts the shard condvar after a visible state change.
    fn notify(&self) {
        self.notifies.fetch_add(1, Ordering::Relaxed);
        self.cond.notify_all();
    }

    /// Blocks until the shard generation moves past the value observed at
    /// call time. Returns whether the generation moved; a `false` return is
    /// counted as a spurious wakeup.
    ///
    /// Waits carry no timeout. A parked waiter can only be unblocked by a
    /// shard-mate's mutation, and every mutation notifies — so if every
    /// other live worker of the shard is already parked, nobody is left to
    /// notify us and the wait would be forever. In that case the last
    /// waiter returns immediately (an intentional re-poll) so the
    /// no-progress escalation in [`advance`] can abort a deadlock victim.
    /// With `fallback` (debug flag) the historical 3 ms timeout is used
    /// instead.
    fn wait_for_change(&self, g: &mut ShardGuard<'_, 'a>, fallback: bool) -> bool {
        let seen = g.generation;
        let t0 = Instant::now();
        if fallback {
            let _ = self.cond.wait_for(&mut g.guard, FALLBACK_WAIT);
        } else if g.waiting_workers + 1 >= g.live_workers {
            // Last non-parked worker: re-poll instead of sleeping.
            self.wakeups.fetch_add(1, Ordering::Relaxed);
            self.spurious_wakeups.fetch_add(1, Ordering::Relaxed);
            return false;
        } else {
            g.waiting_workers += 1;
            self.cond.wait(&mut g.guard);
            g.waiting_workers -= 1;
        }
        g.excluded += t0.elapsed();
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        let progressed = g.generation != seen;
        if !progressed {
            self.spurious_wakeups.fetch_add(1, Ordering::Relaxed);
        }
        progressed
    }
}

/// Shard lock guard that charges hold time (minus condvar-wait time) on
/// release.
struct ShardGuard<'g, 'a> {
    guard: parking_lot::MutexGuard<'g, ShardState<'a>>,
    shard: &'g Shard<'a>,
    acquired: Instant,
    excluded: Duration,
}

impl<'a> std::ops::Deref for ShardGuard<'_, 'a> {
    type Target = ShardState<'a>;
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl<'a> std::ops::DerefMut for ShardGuard<'_, 'a> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

impl Drop for ShardGuard<'_, '_> {
    fn drop(&mut self) {
        let held = self.acquired.elapsed().saturating_sub(self.excluded);
        self.shard
            .lock_hold_ns
            .fetch_add(held.as_nanos() as u64, Ordering::Relaxed);
        self.shard
            .tele
            .phase_ns(Phase::LockHold, held.as_nanos() as u64);
    }
}

struct ShardState<'a> {
    shard_id: u32,
    workload: &'a Workload,
    certify: bool,
    /// The incremental §3.5 certifier (when configured). Synced lazily with
    /// the shard history inside `certified_ok`; the shard lock serializes
    /// history order, so the certifier sees exactly the emitted sequence.
    /// Certification against the shard-local segment is sound because
    /// events of other shards commute with every event of this one.
    incremental: Option<txproc_core::pred_incremental::IncrementalPred<'a>>,
    policy: Box<dyn Policy + Send + 'a>,
    states: BTreeMap<ProcessId, ProcessState<'a>>,
    /// Shard-local history segment.
    history: Schedule,
    /// Global merge ticket of each segment event (parallel to `history`).
    event_tickets: Vec<u64>,
    /// Bumped on every scheduler-visible mutation (history events, policy
    /// live-op removal at finalize, worker exit); waiters key their condvar
    /// waits on it to tell productive wakeups from spurious ones, and the
    /// events runtime re-queues a shard's waiters when it moves.
    generation: u64,
    /// Thread runtime only: worker threads of this shard that have arrived
    /// and not yet exited, and how many of them are parked on the condvar.
    /// The last unparked worker re-polls instead of parking (see
    /// [`Shard::wait_for_change`]).
    live_workers: usize,
    waiting_workers: usize,
    metrics: Metrics,
    invocations: BTreeMap<GlobalActivityId, (SubsystemId, InvocationId)>,
    /// Deferred activities released by a predecessor's termination.
    released: BTreeMap<ProcessId, ActivityId>,
    pending_release: BTreeMap<ProcessId, (GlobalActivityId, ActivityId, SubsystemId, InvocationId)>,
    /// Releases granted by the policy but not yet certified/applied.
    ready_releases: Vec<ProcessId>,
    /// Releases that failed certification, stamped with the history length
    /// at failure time. Certification is a pure function of the history, so
    /// they are re-armed only once the history actually advanced — not
    /// busy-retried on every lock acquisition.
    stalled_releases: Vec<(ProcessId, usize)>,
    /// Last journalled block state per process (kind, wait set). Blocked
    /// requests are re-polled on every wakeup; one journal record per
    /// *distinct* blocked state keeps the trace readable.
    block_notes: BTreeMap<ProcessId, (u8, Vec<ProcessId>)>,
    /// Certification failures already journalled, stamped with the history
    /// length: the verdict is a pure function of the history, so re-polls at
    /// the same length are the same decision, not a new one.
    cert_fail_notes: Vec<(Event, usize)>,
    /// Telemetry handle for the certify / policy / 2PC / compensation phase
    /// timers (off by default).
    tele: Telemetry,
    /// Per-shard instruments for the live view: emitted history events and
    /// committed processes.
    tele_events: Counter,
    tele_committed: Counter,
    /// Prepare instants of in-flight deferred commits, populated only while
    /// telemetry is enabled (so the disabled path stays byte-identical):
    /// feeds the 2PC prepare→decide phase histogram.
    prepared_at: BTreeMap<ProcessId, Instant>,
    /// Epoch size (from [`ConcurrentConfig::epoch`]); `0` is the per-event
    /// path.
    epoch: usize,
    /// History events emitted since the last epoch close (`epoch > 0`
    /// only).
    epoch_pending: usize,
    /// Buffered trace records of the current epoch (`epoch > 0` and
    /// tracing enabled only), flushed to the global journal as one batch.
    trace_buf: Vec<(usize, TraceEvent)>,
}

/// A failure-injected ("simulated") agent invocation to run after the
/// shard lock is dropped: its outcome is ignored and it leaves no trace in
/// history or policy, so only the agent's own lock is needed.
struct SimulatedInvoke {
    svc: ServiceId,
    site: ServiceSite,
}

/// Outcome of one worker-loop iteration.
enum Step {
    /// Process reached a terminal state; the worker exits.
    Done,
    /// Blocked on shard state; wait for the generation to move.
    Wait,
    /// Made progress (or must re-poll immediately); optionally runs a
    /// simulated invocation after releasing the shard lock.
    Yield(Option<SimulatedInvoke>),
}

impl<'a> ShardState<'a> {
    /// Appends an event to the shard segment, stamping it with the global
    /// merge ticket and bumping the generation.
    fn emit(&mut self, ctx: &RunCtx<'_, 'a>, event: Event) {
        let ticket = ctx.tickets.fetch_add(1, Ordering::Relaxed);
        if let Some(wal) = ctx.wal {
            wal.lock().append(&WalRecord::ShardEvent {
                shard: self.shard_id,
                ticket,
                event: event.clone(),
            });
        }
        self.history.push(event);
        self.event_tickets.push(ticket);
        self.generation += 1;
        self.tele_events.inc();
        if self.epoch > 0 {
            self.epoch_pending += 1;
            if self.epoch_pending >= self.epoch {
                self.close_epoch(ctx);
            }
        }
    }

    fn trace(&mut self, ctx: &RunCtx<'_, 'a>, event: TraceEvent) {
        if self.epoch > 0 {
            if !ctx.trace.enabled {
                return;
            }
            self.trace_buf.push((self.history.len(), event));
            // Bound the buffer even when no history event closes the epoch
            // (e.g. a run of blocked-note records).
            if self.trace_buf.len() >= self.epoch {
                self.close_epoch(ctx);
            }
            return;
        }
        ctx.trace.record(self.shard_id, self.history.len(), event);
    }

    /// Closes the current epoch: counts the batch, samples the epoch-fill
    /// histogram, and flushes the buffered trace records to the global
    /// journal under one sink-lock acquisition (sampling the flush
    /// latency). The metrics counters require `epoch >= 2` — an epoch of
    /// one *is* the per-event path, and counting it would break the
    /// `epoch=1 ≡ per-event` metrics identity the differential oracle pins.
    fn close_epoch(&mut self, ctx: &RunCtx<'_, 'a>) {
        if self.epoch_pending > 0 {
            let fill = self.epoch_pending as u64;
            self.epoch_pending = 0;
            if self.epoch >= 2 {
                self.metrics.epoch_batches += 1;
                self.metrics.epoch_events += fill;
            }
            self.tele.phase_ns(Phase::EpochFill, fill);
        }
        if self.trace_buf.is_empty() {
            return;
        }
        let t0 = self.tele.phase_start();
        let buf = std::mem::take(&mut self.trace_buf);
        ctx.trace.record_batch(self.shard_id, buf);
        self.tele.phase_end(Phase::EpochFlush, t0);
    }

    fn count_abort_reason(&mut self, reason: AbortReason) {
        let r = &mut self.metrics.abort_reasons;
        match reason {
            AbortReason::Rejected => r.rejected += 1,
            AbortReason::Cascade => r.cascade += 1,
            AbortReason::Failure => r.failure += 1,
            AbortReason::CertStuck => r.cert_stuck += 1,
            AbortReason::Deadlock => r.deadlock += 1,
            AbortReason::External => r.external += 1,
        }
    }

    /// Whether this block state is new for `pid` (and notes it if so).
    fn note_blocked(&mut self, pid: ProcessId, kind: u8, wait_for: &[ProcessId]) -> bool {
        match self.block_notes.get(&pid) {
            Some((k, w)) if *k == kind && w == wait_for => false,
            _ => {
                self.block_notes.insert(pid, (kind, wait_for.to_vec()));
                true
            }
        }
    }

    fn clear_block_note(&mut self, pid: ProcessId) {
        self.block_notes.remove(&pid);
    }

    /// [`Self::certified_ok`] plus metrics accounting and a
    /// [`TraceEvent::CertifyOutcome`] record. Re-polls of a failed
    /// certification against an unchanged history are deduplicated.
    fn certified_traced(&mut self, ctx: &RunCtx<'_, 'a>, event: Event) -> bool {
        if !self.certify {
            return true;
        }
        let len = self.history.len();
        self.cert_fail_notes.retain(|&(_, stamp)| stamp >= len);
        if self
            .cert_fail_notes
            .iter()
            .any(|(e, stamp)| *stamp == len && *e == event)
        {
            // The verdict is a pure function of the history: a re-poll at
            // the same length is the same failed decision, so skip the
            // O(closure) certify preview entirely — deadlock-escalation
            // spins repeat this call hundreds of times per abort.
            return false;
        }
        let ok = self.certified_ok(event.clone());
        if !ok {
            self.cert_fail_notes.push((event.clone(), len));
            self.metrics.cert_failures += 1;
        }
        if ctx.trace.enabled {
            let frontier = self.history.len() + 1;
            self.trace(
                ctx,
                TraceEvent::CertifyOutcome {
                    event,
                    ok,
                    frontier,
                },
            );
        }
        if !ok && self.epoch > 0 {
            // Conflict pressure: the shard is about to stall-and-retry, so
            // get the current epoch's decision trace (including the refusal
            // just recorded) out now.
            self.close_epoch(ctx);
        }
        ok
    }

    /// §3.5 certification of the next effect event against the shard-local
    /// segment (see the virtual-time engine for the rationale).
    fn certified_ok(&mut self, event: Event) -> bool {
        if !self.certify {
            return true;
        }
        let t0 = self.tele.phase_start();
        let ok = if let Some(inc) = &mut self.incremental {
            // Per-event sync (not `record_epoch`): emitted history may hold
            // forcibly recorded non-reducible events (aborts), which a
            // batch verdict would refuse to apply.
            for e in &self.history.events()[inc.len()..] {
                inc.record(e).expect("emitted history event is legal");
            }
            // Epoch mode retains the certified plan so the admitting
            // `record` above replays it instead of re-planning — a pure
            // amortization, bit-identical answers.
            let verdict = if self.epoch > 0 {
                inc.certify_keep(&event)
            } else {
                inc.certify(&event)
            };
            match verdict {
                Ok(verdict) => verdict.reducible,
                Err(_) => false,
            }
        } else {
            let mut candidate = self.history.clone();
            candidate.push(event);
            match txproc_core::completion::complete(&self.workload.spec, &candidate) {
                Ok(completed) => {
                    txproc_core::reduction::reduce(&self.workload.spec, &completed).reducible
                }
                Err(_) => false,
            }
        };
        self.tele.phase_end(Phase::Certify, t0);
        ok
    }

    /// Attempts every granted-but-unapplied deferred release. Releases whose
    /// history event does not certify yet are parked in `stalled_releases`
    /// and re-armed when the history grows.
    fn drain_ready_releases(&mut self, ctx: &RunCtx<'_, 'a>) {
        if !self.stalled_releases.is_empty() {
            let hist_len = self.history.len();
            let (rearm, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.stalled_releases)
                .into_iter()
                .partition(|&(_, stamp)| stamp < hist_len);
            self.stalled_releases = keep;
            self.ready_releases
                .extend(rearm.into_iter().map(|(pj, _)| pj));
        }
        let ready = std::mem::take(&mut self.ready_releases);
        // Epoch mode groups the agent-side releases: each chunk of at most
        // `epoch` invocations commits as one round, one agent-lock
        // acquisition per subsystem per chunk. Sound because a release
        // unconditionally commits a prepared invocation, and invisible to
        // history/metrics because nothing below reads agent state between
        // emit and release.
        let mut group: Vec<(SubsystemId, InvocationId)> = Vec::new();
        for pj in ready {
            let Some(&(gid, a, sid, inv)) = self.pending_release.get(&pj) else {
                continue;
            };
            if !self.certified_traced(ctx, Event::Execute(gid)) {
                self.stalled_releases.push((pj, self.history.len()));
                continue;
            }
            self.pending_release.remove(&pj);
            if let Some(t0) = self.prepared_at.remove(&pj) {
                self.tele
                    .phase_ns(Phase::TwoPc, t0.elapsed().as_nanos() as u64);
            }
            if self.epoch == 0 {
                ctx.agents[&sid].lock().release(inv).expect("prepared");
            } else {
                group.push((sid, inv));
                if group.len() >= self.epoch {
                    release_group(ctx, std::mem::take(&mut group));
                }
            }
            self.emit(ctx, Event::Execute(gid));
            self.policy.record_deferred_released(gid);
            self.metrics.activities += 1;
            self.clear_block_note(pj);
            if ctx.trace.enabled {
                self.trace(ctx, TraceEvent::CommitReleased { gid });
            }
            // The owner thread applies the state advance.
            self.released.insert(pj, a);
        }
        release_group(ctx, group);
    }
}

/// Commits one group of prepared invocations, one agent-lock acquisition
/// per subsystem (the releases are sorted into per-subsystem runs by the
/// `BTreeMap` grouping). No-op on an empty group.
fn release_group(ctx: &RunCtx<'_, '_>, group: Vec<(SubsystemId, InvocationId)>) {
    if group.is_empty() {
        return;
    }
    let mut by_subsystem: BTreeMap<SubsystemId, Vec<InvocationId>> = BTreeMap::new();
    for (sid, inv) in group {
        by_subsystem.entry(sid).or_default().push(inv);
    }
    for (sid, invs) in by_subsystem {
        let mut agent = ctx.agents[&sid].lock();
        for inv in invs {
            agent.release(inv).expect("prepared");
        }
    }
}

/// Deterministic failure-injection coin: a pure hash of
/// `(seed, activity, attempt)`, so the draw for a given attempt does not
/// depend on thread interleaving or shard topology.
fn fail_coin(seed: u64, gid: GlobalActivityId, attempt: u64) -> f64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut h = mix(seed);
    h = mix(h ^ u64::from(gid.process.0));
    h = mix(h ^ gid.activity.index() as u64);
    h = mix(h ^ attempt);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Failure probability of an activity on `subsystem`. The wall-clock driver
/// has no virtual clock to scope a crash-storm window, so a configured storm
/// applies to its subsystems for the whole run (documented on
/// [`txproc_sim::workload::CrashStorm`]).
fn p_fail(workload: &Workload, subsystem: SubsystemId) -> f64 {
    if let Some(storm) = &workload.config.storm {
        if subsystem.0 < storm.subsystems {
            return storm.failure_probability.clamp(0.0, 1.0);
        }
    }
    workload.config.failure_probability.clamp(0.0, 1.0)
}

/// Runs the workload under the configured runtime, sharded by conflict
/// domain per `cfg.shards`. Panics on an invalid configuration (e.g. more
/// processes than the thread runtime supports); use
/// [`try_run_concurrent`] for a `Result`.
pub fn run_concurrent(workload: &Workload, cfg: ConcurrentConfig) -> ConcurrentResult {
    run_concurrent_impl(workload, cfg, Box::new(NoopSink), Telemetry::off(), None)
}

/// Fallible variant of [`run_concurrent`]: returns the configuration
/// error (naming the knob to change) instead of panicking.
pub fn try_run_concurrent(
    workload: &Workload,
    cfg: ConcurrentConfig,
) -> Result<ConcurrentResult, String> {
    cfg.validate(workload.spec.processes().count())?;
    Ok(run_concurrent_impl(
        workload,
        cfg,
        Box::new(NoopSink),
        Telemetry::off(),
        None,
    ))
}

/// Same as [`run_concurrent`], delivering structured [`TraceEvent`]s to
/// `sink`. The driver has no virtual clock, so records are stamped with
/// `time == seq` (journal order) and the shard that served the decision;
/// `history_len` is the shard-local segment length. Multi-process
/// interleavings are nondeterministic (except under the events runtime
/// with one worker and closed arrivals); a single-process run yields a
/// bit-identical journal across repeats. [`Metrics::latencies`] holds
/// wall-clock submit→terminal times in microseconds and
/// [`Metrics::makespan`] the wall-clock run time in microseconds (the
/// virtual-time engine reports virtual ticks in those fields instead).
#[deprecated(
    since = "0.10.0",
    note = "compose the options on `RunBuilder` instead: \
            `RunBuilder::new(w).concurrent(cfg).sink(sink).run()`"
)]
pub fn run_concurrent_traced<'a>(
    workload: &'a Workload,
    cfg: ConcurrentConfig,
    sink: Box<dyn TraceSink + 'a>,
) -> ConcurrentResult {
    crate::builder::RunBuilder::new(workload)
        .concurrent(cfg)
        .sink(sink)
        .run()
        .into_concurrent()
}

/// Same as [`run_concurrent_traced`], additionally feeding the telemetry
/// registry behind `tele`: scoped phase timers (certify / policy / lock wait
/// / lock hold / queue delay / 2PC / compensation) and per-shard/per-worker
/// instruments. A disabled handle ([`Telemetry::off`]) makes this identical
/// to `run_concurrent_traced` — no clock reads, no allocation, one branch
/// per instrumented site (the `NoopSink` discipline), and bit-identical
/// histories and metrics.
#[deprecated(
    since = "0.10.0",
    note = "compose the options on `RunBuilder` instead: \
            `RunBuilder::new(w).concurrent(cfg).sink(sink).telemetry(tele).run()`"
)]
pub fn run_concurrent_instrumented<'a>(
    workload: &'a Workload,
    cfg: ConcurrentConfig,
    sink: Box<dyn TraceSink + 'a>,
    tele: Telemetry,
) -> ConcurrentResult {
    crate::builder::RunBuilder::new(workload)
        .concurrent(cfg)
        .sink(sink)
        .telemetry(tele)
        .run()
        .into_concurrent()
}

/// The one concurrent-driver implementation behind [`run_concurrent`], the
/// deprecated traced/instrumented shims, and
/// [`crate::builder::RunBuilder`]: runs the workload with the given trace
/// sink, telemetry handle, and (optionally) a durable WAL journaling every
/// emitted shard event.
pub(crate) fn run_concurrent_impl<'a>(
    workload: &'a Workload,
    cfg: ConcurrentConfig,
    sink: Box<dyn TraceSink + 'a>,
    tele: Telemetry,
    wal: Option<WalWriter>,
) -> ConcurrentResult {
    if let Err(msg) = cfg.validate(workload.spec.processes().count()) {
        panic!("invalid concurrent configuration: {msg}");
    }
    let mut agents: Agents = BTreeMap::new();
    for sid in workload.deployment.subsystems() {
        agents.insert(
            sid,
            Mutex::new(Agent::new(Subsystem::new(sid, format!("sub{}", sid.0)))),
        );
    }

    // Shard topology: process groups with no conflicts across groups.
    let groups: Vec<Vec<ProcessId>> = match cfg.shards {
        ShardMode::Single => {
            vec![workload.spec.processes().map(|p| p.id).collect()]
        }
        ShardMode::Auto => DomainPartition::partition(&workload.spec)
            .domains()
            .to_vec(),
        ShardMode::Fixed(n) => DomainPartition::partition(&workload.spec).shard_groups(n as usize),
    };

    let shards: Vec<Shard<'_>> = groups
        .iter()
        .enumerate()
        .map(|(i, members)| {
            let mut policy = cfg.policy.build(&workload.spec);
            let mut states = BTreeMap::new();
            for &pid in members {
                policy.register(pid);
                states.insert(
                    pid,
                    ProcessState::new(
                        workload
                            .spec
                            .process(pid)
                            .expect("partitioned pid is known"),
                        &workload.spec.catalog,
                    )
                    .expect("tree process"),
                );
            }
            Shard::new(
                i as u32,
                ShardState {
                    shard_id: i as u32,
                    workload,
                    certify: cfg.policy.certified(),
                    incremental: (cfg.policy.certified()
                        && cfg.certifier == CertifierKind::Incremental)
                        .then(|| {
                            txproc_core::pred_incremental::IncrementalPred::new(&workload.spec)
                        }),
                    policy,
                    states,
                    history: Schedule::new(),
                    event_tickets: Vec::new(),
                    generation: 0,
                    live_workers: 0,
                    waiting_workers: 0,
                    metrics: Metrics::new(),
                    invocations: BTreeMap::new(),
                    released: BTreeMap::new(),
                    pending_release: BTreeMap::new(),
                    ready_releases: Vec::new(),
                    stalled_releases: Vec::new(),
                    block_notes: BTreeMap::new(),
                    cert_fail_notes: Vec::new(),
                    tele: tele.clone(),
                    tele_events: tele.counter("events_total", &[("shard", i.to_string())]),
                    tele_committed: tele.counter("committed_total", &[("shard", i.to_string())]),
                    prepared_at: BTreeMap::new(),
                    epoch: cfg.epoch,
                    epoch_pending: 0,
                    trace_buf: Vec::new(),
                },
                tele.clone(),
            )
        })
        .collect();

    let worker_count = cfg.resolved_workers(shards.len());
    // Static shard→worker ownership: shard i belongs to worker i mod W.
    // Disjoint ownership means shard locks are uncontended in the events
    // runtime; they are kept for code reuse with the thread runtime and
    // for the lock metrics.
    let worker_of_shard: Vec<u32> = (0..shards.len())
        .map(|si| (si % worker_count) as u32)
        .collect();
    let enabled = sink.enabled();
    let trace = TraceShared {
        sink: Mutex::new(sink),
        seq: AtomicU64::new(0),
        enabled,
        worker_of_shard: (cfg.runtime == RuntimeKind::Events).then(|| worker_of_shard.clone()),
    };
    let tickets = AtomicU64::new(0);
    let wal_cell = wal.map(Mutex::new);
    let arrivals: BTreeMap<ProcessId, u64> = workload
        .spec
        .processes()
        .map(|p| p.id)
        .zip(txproc_sim::workload::arrival_times(&workload.config))
        .collect();
    let ctx = RunCtx {
        workload,
        cfg: &cfg,
        agents: &agents,
        tickets: &tickets,
        trace: &trace,
        tele: tele.clone(),
        run_start: Instant::now(),
        arrivals,
        live_now: AtomicU64::new(0),
        live_peak: AtomicU64::new(0),
        wal: wal_cell.as_ref(),
    };

    let mut runtime_metrics = match cfg.runtime {
        RuntimeKind::Threads => {
            std::thread::scope(|scope| {
                for (si, members) in groups.iter().enumerate() {
                    for &pid in members {
                        let shard = &shards[si];
                        let ctx = &ctx;
                        scope.spawn(move || worker(ctx, shard, pid));
                    }
                }
            });
            let processes: usize = groups.iter().map(Vec::len).sum();
            RuntimeMetrics::new(RuntimeKind::Threads.label(), processes as u64)
        }
        RuntimeKind::Events => {
            // Build each worker's shard schedulers up front (run queues,
            // waiting sets, per-process machine bookkeeping).
            let mut per_worker: Vec<Vec<ShardSched>> =
                (0..worker_count).map(|_| Vec::new()).collect();
            for (si, members) in groups.iter().enumerate() {
                per_worker[worker_of_shard[si] as usize].push(ShardSched::new(si, members, &ctx));
            }
            let mut collected =
                RuntimeMetrics::new(RuntimeKind::Events.label(), worker_count as u64);
            std::thread::scope(|scope| {
                let handles: Vec<_> = per_worker
                    .into_iter()
                    .enumerate()
                    .map(|(widx, owned)| {
                        let shards = &shards;
                        let ctx = &ctx;
                        scope.spawn(move || event_worker(ctx, shards, owned, widx))
                    })
                    .collect();
                for h in handles {
                    collected.merge(&h.join().expect("event worker panicked"));
                }
            });
            collected.workers = worker_count as u64;
            collected
        }
    };
    runtime_metrics.in_flight_peak = ctx.live_peak.load(Ordering::Relaxed);

    // Deterministic merge: interleave shard segments in ticket order into
    // one global schedule, and fold shard metrics into the aggregate.
    let makespan_us = ctx.run_start.elapsed().as_micros() as u64;
    let mut tagged: Vec<(u64, Event)> = Vec::new();
    let mut metrics = Metrics::new();
    for shard in shards {
        let mut st = shard.state.into_inner();
        // Final epoch close: flush the partial epoch (trace records and
        // fill accounting) each shard accumulated after its last boundary.
        st.close_epoch(&ctx);
        let st = st;
        let mut m = st.metrics;
        m.shards.push(ShardMetrics {
            shard: shard.id,
            processes: st.states.len() as u64,
            events: st.history.len() as u64,
            lock_wait_ns: shard.lock_wait_ns.into_inner(),
            lock_hold_ns: shard.lock_hold_ns.into_inner(),
            notifies: shard.notifies.into_inner(),
            wakeups: shard.wakeups.into_inner(),
            spurious_wakeups: shard.spurious_wakeups.into_inner(),
        });
        metrics.merge(&m);
        tagged.extend(
            st.event_tickets
                .iter()
                .copied()
                .zip(st.history.events().iter().cloned()),
        );
    }
    tagged.sort_by_key(|&(t, _)| t);
    let mut history = Schedule::new();
    for (_, e) in tagged {
        history.push(e);
    }
    metrics.makespan = makespan_us;
    debug_assert!(
        runtime_metrics
            .invariant_violations(Some(makespan_us.saturating_mul(1000)))
            .is_empty(),
        "runtime metrics invariants violated: {:?}",
        runtime_metrics.invariant_violations(Some(makespan_us.saturating_mul(1000)))
    );
    metrics.runtime = Some(runtime_metrics);
    if let Some(cell) = wal_cell {
        // Land the journal tail; syncing follows the writer's policy.
        cell.into_inner().finish();
    }
    ConcurrentResult { history, metrics }
}

/// Per-process state-machine bookkeeping the thread runtime kept in
/// thread-local variables: admission attempt counters and the no-progress
/// escalation state.
struct ProcSM {
    attempts: BTreeMap<ActivityId, u64>,
    no_progress: u32,
    last_fingerprint: Option<(usize, usize)>,
}

impl ProcSM {
    fn new() -> Self {
        Self {
            attempts: BTreeMap::new(),
            no_progress: 0,
            last_fingerprint: None,
        }
    }
}

/// One shard's scheduler as seen by its owning event worker: the run queue
/// of runnable processes, the waiting set of blocked ones, pending
/// open-system arrivals and the per-process state machines. Owned by
/// exactly one worker, so no lock guards it.
struct ShardSched {
    /// Index into the shard slice.
    index: usize,
    /// Runnable processes with their enqueue instant (scheduling delay is
    /// measured from it).
    run_queue: VecDeque<(ProcessId, Instant)>,
    /// Blocked processes; re-queued when the run queue drains after one or
    /// more generation moves.
    waiting: BTreeSet<ProcessId>,
    /// Not-yet-arrived processes, ordered by arrival offset (µs).
    arrivals: VecDeque<(u64, ProcessId)>,
    sm: BTreeMap<ProcessId, ProcSM>,
    /// Arrived and not yet terminated.
    live: usize,
    /// The shard generation moved since waiters were last re-queued. Moves
    /// are *coalesced*: re-queuing every waiter on every move would cost an
    /// O(waiters) futile-poll round per event, where draining the runnable
    /// work first folds a whole burst of moves into one round — the same
    /// effect the thread runtime gets from waiters sleeping through a burst
    /// of notifies.
    dirty: bool,
    /// Live telemetry gauge mirroring `run_queue.len() + waiting.len()`
    /// (no-op when telemetry is disabled).
    depth: Gauge,
}

impl ShardSched {
    fn new(index: usize, members: &[ProcessId], ctx: &RunCtx<'_, '_>) -> Self {
        let mut arrivals: Vec<(u64, ProcessId)> = members
            .iter()
            .map(|&pid| (ctx.arrivals.get(&pid).copied().unwrap_or(0), pid))
            .collect();
        // Deterministic admission order: by arrival offset, ties by pid.
        arrivals.sort();
        Self {
            index,
            run_queue: VecDeque::new(),
            waiting: BTreeSet::new(),
            arrivals: arrivals.into(),
            sm: members.iter().map(|&pid| (pid, ProcSM::new())).collect(),
            live: 0,
            dirty: false,
            depth: ctx
                .tele
                .gauge("run_queue_depth", &[("shard", index.to_string())]),
        }
    }

    /// Moves every waiter back onto the run queue (the shard generation
    /// moved, so any of them may now be unblocked).
    fn requeue_waiters(&mut self) {
        for pid in std::mem::take(&mut self.waiting) {
            self.run_queue.push_back((pid, Instant::now()));
        }
    }

    /// Moves one waiter (smallest pid, for determinism) back onto the run
    /// queue. Used when the run queue drains *without* a generation move:
    /// everyone is deadlocked, so stepping all of them is pure futile work
    /// under a certified policy — a single probe accumulates no-progress
    /// toward the escalation in `advance` (mirroring the thread runtime,
    /// where only the last unparked waiter spins), and the moment its abort
    /// moves the generation the full requeue path wakes the rest.
    fn requeue_one_waiter(&mut self) {
        if let Some(&pid) = self.waiting.iter().next() {
            self.waiting.remove(&pid);
            self.run_queue.push_back((pid, Instant::now()));
        }
    }
}

/// Event-worker loop: round-robins over the worker's owned shards, spending
/// up to [`STEP_BUDGET`] `advance` steps per shard per pass, run-to-block
/// within each dequeued process. Returns the worker's share of the runtime
/// metrics.
///
/// Invariants (see DESIGN.md "Event-driven runtime"):
///
/// * every live process is in exactly one of `run_queue` / `waiting` /
///   mid-step;
/// * waiters are re-queued whenever the shard generation has moved and the
///   runnable work has drained (moves are coalesced via the `dirty` flag) —
///   and a blocker is always a shard-mate (domain invariant), so no wakeup
///   is ever missed;
/// * when a shard's run queue drains with waiters left, every live process
///   of the shard is blocked. A future arrival only *adds* conflicts and
///   can never unblock an existing waiter, so this is a genuine deadlock
///   among the arrived: one waiter is re-queued as a probe (a counted
///   re-poll round) to drive the no-progress escalation in [`advance`]
///   instead of sleeping on a timeout — stepping *all* waiters would only
///   multiply futile certify attempts, since nothing short of a generation
///   move (which re-queues everyone) can unblock them.
fn event_worker<'a>(
    ctx: &RunCtx<'_, 'a>,
    shards: &[Shard<'a>],
    mut owned: Vec<ShardSched>,
    widx: usize,
) -> RuntimeMetrics {
    let mut rt = RuntimeMetrics::new(RuntimeKind::Events.label(), 1);
    let worker_steps = ctx
        .tele
        .counter("worker_steps_total", &[("worker", widx.to_string())]);
    loop {
        let mut all_done = true;
        let mut progressed = false;
        let mut next_arrival: Option<u64> = None;
        for sched in owned.iter_mut() {
            let shard = &shards[sched.index];
            // Admit arrivals that are due (1 workload tick = 1 µs).
            if !sched.arrivals.is_empty() {
                let now_us = ctx.run_start.elapsed().as_micros() as u64;
                while let Some(&(at, pid)) = sched.arrivals.front() {
                    if at > now_us {
                        next_arrival = Some(next_arrival.map_or(at, |m| m.min(at)));
                        break;
                    }
                    if sched.live >= ADMIT_CAP {
                        // Due but deferred: admission control. The process
                        // is admitted as soon as a live slot frees up.
                        break;
                    }
                    sched.arrivals.pop_front();
                    sched.live += 1;
                    ctx.process_arrived();
                    sched.run_queue.push_back((pid, Instant::now()));
                    progressed = true;
                }
            }
            if sched.live > 0 || !sched.arrivals.is_empty() {
                all_done = false;
            }
            let mut budget = STEP_BUDGET;
            while budget > 0 {
                let Some((pid, enqueued)) = sched.run_queue.pop_front() else {
                    if sched.waiting.is_empty() {
                        break;
                    }
                    if sched.dirty {
                        // Generation moved while the runnable work drained:
                        // any waiter may be unblocked, so re-queue them all
                        // (one coalesced round for the whole burst).
                        sched.dirty = false;
                        sched.requeue_waiters();
                        continue;
                    }
                    // Run queue drained with live waiters and no generation
                    // move: a genuine deadlock among the arrived. Probe one
                    // waiter instead of spinning all of them through futile
                    // certify attempts.
                    rt.repolls += 1;
                    sched.requeue_one_waiter();
                    continue;
                };
                let delay_ns = enqueued.elapsed().as_nanos() as u64;
                rt.record_delay_ns(delay_ns);
                ctx.tele.phase_ns(Phase::QueueDelay, delay_ns);
                // Run-to-block: keep stepping the dequeued process until it
                // waits, terminates, or exhausts the pass budget. Rotating
                // after every step would interleave all live processes
                // uniformly, keeping a maximal unreduced frontier alive in
                // the certifier for the whole run; running each process as
                // deep as it can go completes (and reduces away) processes
                // early, which is also how OS timeslices make the thread
                // runtime behave.
                loop {
                    budget -= 1;
                    rt.steps += 1;
                    worker_steps.inc();
                    let t0 = Instant::now();
                    let mut g = shard.lock();
                    let gen0 = g.generation;
                    let sm = sched
                        .sm
                        .get_mut(&pid)
                        .expect("live process has a state machine");
                    let step = advance(
                        ctx,
                        &mut g,
                        pid,
                        &mut sm.attempts,
                        &mut sm.no_progress,
                        &mut sm.last_fingerprint,
                    );
                    let moved = g.generation != gen0;
                    drop(g);
                    rt.worker_busy_ns += t0.elapsed().as_nanos() as u64;
                    if moved {
                        progressed = true;
                        sched.dirty = true;
                    }
                    match step {
                        Step::Done => {
                            sched.live -= 1;
                            sched.sm.remove(&pid);
                            ctx.process_terminated();
                            progressed = true;
                            break;
                        }
                        Step::Wait => {
                            sched.waiting.insert(pid);
                            break;
                        }
                        Step::Yield(simulated) => {
                            // Failure-injected invocation: agent work only,
                            // no shared scheduling state — run it off the
                            // shard lock, then the process is immediately
                            // runnable again.
                            if let Some(sim) = simulated {
                                let _ = ctx.agents[&sim.site.subsystem].lock().invoke(
                                    sim.svc,
                                    &sim.site.program,
                                    CommitMode::Immediate,
                                    true,
                                );
                            }
                            if budget == 0 {
                                // Budget exhausted mid-process: stay at the
                                // queue front so the next pass resumes the
                                // same process (depth-first across passes).
                                sched.run_queue.push_front((pid, Instant::now()));
                                break;
                            }
                        }
                    }
                }
                let depth = (sched.run_queue.len() + sched.waiting.len()) as u64;
                rt.run_queue_peak = rt.run_queue_peak.max(depth);
                sched.depth.set(depth);
            }
            if !sched.run_queue.is_empty() {
                progressed = true;
            }
        }
        if all_done {
            return rt;
        }
        if !progressed {
            if let Some(at) = next_arrival {
                // Everything runnable is drained and the next event on any
                // owned shard is an arrival: nap until it is due.
                let target = Duration::from_micros(at);
                let since = ctx.run_start.elapsed();
                if target > since {
                    let nap = (target - since).min(MAX_IDLE_NAP);
                    rt.worker_idle_ns += nap.as_nanos() as u64;
                    std::thread::sleep(nap);
                }
            }
        }
    }
}

fn worker<'a>(ctx: &RunCtx<'_, 'a>, shard: &Shard<'a>, pid: ProcessId) {
    // Open-system arrival: the worker thread exists from run start but the
    // process only enters the scheduler after its arrival offset.
    let arrival_us = ctx.arrivals.get(&pid).copied().unwrap_or(0);
    if arrival_us > 0 {
        let target = std::time::Duration::from_micros(arrival_us);
        let since_start = ctx.run_start.elapsed();
        if since_start < target {
            std::thread::sleep(target - since_start);
        }
    }
    // Register as a live worker of the shard: the timeout-free wait logic
    // parks a waiter only while some other live worker can still notify it.
    {
        let mut g = shard.lock();
        g.live_workers += 1;
    }
    ctx.process_arrived();
    let mut sm = ProcSM::new();
    loop {
        let mut g = shard.lock();
        let gen0 = g.generation;
        let step = advance(
            ctx,
            &mut g,
            pid,
            &mut sm.attempts,
            &mut sm.no_progress,
            &mut sm.last_fingerprint,
        );
        if g.generation != gen0 {
            shard.notify();
        }
        match step {
            Step::Done => {
                // Leaving changes the live-worker arithmetic the parked
                // waiters depend on: bump the generation and notify so the
                // last-waiter check re-evaluates.
                g.live_workers -= 1;
                g.generation += 1;
                shard.notify();
                drop(g);
                ctx.process_terminated();
                return;
            }
            Step::Wait => {
                let progressed = shard.wait_for_change(&mut g, ctx.cfg.fallback_wait);
                drop(g);
                if !progressed {
                    // Re-poll path (last unparked waiter): let shard-mates
                    // that hold no lock run before re-acquiring.
                    std::thread::yield_now();
                }
            }
            Step::Yield(simulated) => {
                drop(g);
                // Failure-injected invocation: agent work only, no shared
                // scheduling state — run it without the shard lock.
                if let Some(sim) = simulated {
                    let _ = ctx.agents[&sim.site.subsystem].lock().invoke(
                        sim.svc,
                        &sim.site.program,
                        CommitMode::Immediate,
                        true,
                    );
                }
                std::thread::yield_now();
            }
        }
    }
}

/// One scheduling iteration for `pid` under the shard lock.
fn advance<'a>(
    ctx: &RunCtx<'_, 'a>,
    g: &mut ShardGuard<'_, 'a>,
    pid: ProcessId,
    attempts: &mut BTreeMap<ActivityId, u64>,
    no_progress: &mut u32,
    last_fingerprint: &mut Option<(usize, usize)>,
) -> Step {
    g.drain_ready_releases(ctx);
    let fingerprint = (g.history.len(), g.states[&pid].steps().len());
    if *last_fingerprint == Some(fingerprint) {
        *no_progress += 1;
    } else {
        *no_progress = 0;
    }
    *last_fingerprint = Some(fingerprint);
    if *no_progress > 0 && no_progress.is_multiple_of(200) && g.states[&pid].is_active() {
        if g.states[&pid].abort_in_progress() {
            // Our completion is blocked by other processes' hypothetical
            // completions (§3.5): group-abort them so their real
            // completions unblock ours. Only shard-mates can block us —
            // cross-shard operations commute.
            let others: Vec<ProcessId> = g
                .states
                .iter()
                .filter(|(&q, st)| q != pid && st.is_active() && !st.abort_in_progress())
                .map(|(&q, _)| q)
                .collect();
            if ctx.trace.enabled && !others.is_empty() {
                g.trace(
                    ctx,
                    TraceEvent::GroupAbort {
                        initiator: Some(pid),
                        victims: others.iter().rev().copied().collect(),
                        trigger: None,
                    },
                );
            }
            for q in others.into_iter().rev() {
                cascade_abort(ctx, g, q);
            }
        } else {
            // Nothing moved for a while: only an abort can resolve this.
            g.metrics.rejections += 1;
            initiate_abort(ctx, g, pid, AbortReason::Deadlock, None);
        }
        return Step::Yield(None);
    }
    if *no_progress >= 20_000 {
        let mut diag = String::new();
        for (p, st) in &g.states {
            diag.push_str(&format!(
                "\n  {p}: status={:?} aborting={} next_comp={:?} next_act={:?} can_commit={}",
                st.status(),
                st.abort_in_progress(),
                st.next_compensation(),
                st.next_activity(),
                st.can_commit()
            ));
        }
        panic!(
            "{pid}: concurrent run livelocked (shard {})\nshard history: {}{diag}",
            g.shard_id,
            txproc_core::schedule::render(&g.history)
        );
    }
    let status = g.states[&pid].status();
    if status != ProcessStatus::Active {
        finalize(ctx, g, pid);
        return Step::Done;
    }
    // Deferred release arrived?
    if let Some(a) = g.released.remove(&pid) {
        g.states
            .get_mut(&pid)
            .expect("state")
            .apply_commit(a)
            .expect("released frontier");
        return Step::Yield(None);
    }
    if g.pending_release.contains_key(&pid) {
        // Waiting for a predecessor to release our deferred commit.
        return Step::Wait;
    }
    // Pending compensation?
    if let Some(c) = g.states[&pid].next_compensation() {
        let gid = GlobalActivityId::new(pid, c);
        if !g.certified_traced(ctx, Event::Compensate(gid)) {
            return Step::Wait;
        }
        let (sid, inv) = g.invocations[&gid];
        let t0 = g.tele.phase_start();
        let outcome = ctx.agents[&sid]
            .lock()
            .compensate(inv)
            .expect("subsystem up");
        g.tele.phase_end(Phase::Compensation, t0);
        return match outcome {
            InvokeOutcome::Committed { .. } => {
                if ctx.trace.enabled {
                    let service = ctx.workload.spec.process(pid).expect("known").service(c);
                    g.trace(ctx, TraceEvent::CompensationStarted { gid, service });
                }
                g.emit(ctx, Event::Compensate(gid));
                g.policy.record_compensated(gid);
                g.states
                    .get_mut(&pid)
                    .expect("state")
                    .apply_compensation(c)
                    .expect("queued");
                g.metrics.compensations += 1;
                Step::Yield(None)
            }
            InvokeOutcome::Busy { .. } => Step::Wait,
            other => panic!("unexpected compensation outcome {other:?}"),
        };
    }
    // Next forward activity?
    if let Some(a) = g.states[&pid].next_activity() {
        return step_activity(ctx, g, pid, a, attempts);
    }
    // Commit.
    if g.states[&pid].can_commit() {
        let t0 = g.tele.phase_start();
        let verdict = g.policy.can_commit(pid);
        g.tele.phase_end(Phase::Policy, t0);
        return match verdict {
            Ok(()) if !g.certified_traced(ctx, Event::Commit(pid)) => Step::Wait,
            Ok(()) => {
                g.states
                    .get_mut(&pid)
                    .expect("state")
                    .apply_process_commit()
                    .expect("finished path");
                g.emit(ctx, Event::Commit(pid));
                finalize(ctx, g, pid);
                Step::Done
            }
            Err(blockers) => {
                g.metrics.waits += 1;
                if ctx.trace.enabled && g.note_blocked(pid, 1, &blockers) {
                    g.trace(
                        ctx,
                        TraceEvent::CommitBlocked {
                            pid,
                            wait_for: blockers,
                        },
                    );
                }
                Step::Wait
            }
        };
    }
    // Nothing to do right now (e.g. mid-abort with empty completion).
    Step::Wait
}

/// Runs one scheduling step for the next forward activity.
fn step_activity<'a>(
    ctx: &RunCtx<'_, 'a>,
    g: &mut ShardGuard<'_, 'a>,
    pid: ProcessId,
    a: ActivityId,
    attempts: &mut BTreeMap<ActivityId, u64>,
) -> Step {
    let gid = GlobalActivityId::new(pid, a);
    let process = ctx.workload.spec.process(pid).expect("known");
    let svc = process.service(a);
    let site = ctx.workload.deployment.site(svc).expect("deployed").clone();
    let termination = ctx.workload.spec.catalog.termination(svc);
    let in_completion = g.states[&pid].abort_in_progress();
    let admission = if in_completion {
        Admission::Allow
    } else {
        let t0 = g.tele.phase_start();
        let admission = g.policy.request(pid, gid, svc);
        g.tele.phase_end(Phase::Policy, t0);
        admission
    };
    let (mode, blockers) = match admission {
        Admission::Allow => (CommitMode::Immediate, Vec::new()),
        Admission::AllowDeferred { blockers } => (CommitMode::Deferred, blockers),
        Admission::Wait { blockers } => {
            g.metrics.waits += 1;
            if ctx.trace.enabled && g.note_blocked(pid, 0, &blockers) {
                g.trace(
                    ctx,
                    TraceEvent::RequestBlocked {
                        gid,
                        service: svc,
                        blockers,
                    },
                );
            }
            // Blocked; re-evaluated when the shard state changes.
            return Step::Wait;
        }
        Admission::Reject { conflicting } => {
            g.metrics.rejections += 1;
            if ctx.trace.enabled {
                g.trace(
                    ctx,
                    TraceEvent::RequestRejected {
                        gid,
                        service: svc,
                        conflicting,
                    },
                );
            }
            initiate_abort(ctx, g, pid, AbortReason::Rejected, Some(gid));
            return Step::Yield(None);
        }
    };
    // Failure injection: one deterministic draw per admission attempt.
    let attempt = attempts.entry(a).and_modify(|n| *n += 1).or_insert(1);
    let coin = fail_coin(ctx.cfg.seed, gid, *attempt);
    let inject = ctx.cfg.inject_failures && coin < p_fail(ctx.workload, site.subsystem);
    if inject && termination.can_fail() {
        g.emit(ctx, Event::Fail(gid));
        if ctx.trace.enabled {
            g.trace(ctx, TraceEvent::ActivityFailed { gid, service: svc });
        }
        let outcome = g
            .states
            .get_mut(&pid)
            .expect("state")
            .apply_failure(a)
            .expect("frontier");
        match outcome {
            FailureOutcome::Stuck => panic!("guaranteed-termination process stuck at {gid}"),
            FailureOutcome::ProcessAbort { .. } => {
                g.count_abort_reason(AbortReason::Failure);
                g.clear_block_note(pid);
                if ctx.trace.enabled {
                    g.trace(
                        ctx,
                        TraceEvent::AbortStarted {
                            pid,
                            reason: AbortReason::Failure,
                        },
                    );
                }
            }
            FailureOutcome::Alternative { .. } => {}
        }
        return Step::Yield(Some(SimulatedInvoke { svc, site }));
    }
    if inject && termination == Termination::Retriable {
        g.metrics.retries += 1;
        return Step::Yield(Some(SimulatedInvoke { svc, site }));
    }
    if mode == CommitMode::Immediate && !g.certified_traced(ctx, Event::Execute(gid)) {
        // Certification is a function of the shard history; retry once it
        // advances.
        return Step::Wait;
    }
    let outcome = ctx.agents[&site.subsystem]
        .lock()
        .invoke(svc, &site.program, mode, false)
        .expect("subsystem up");
    match outcome {
        InvokeOutcome::Committed { invocation, .. } => {
            g.invocations.insert(gid, (site.subsystem, invocation));
            g.emit(ctx, Event::Execute(gid));
            let edges_added = g.policy.record_executed(gid, false);
            g.states
                .get_mut(&pid)
                .expect("state")
                .apply_commit(a)
                .expect("frontier");
            g.metrics.activities += 1;
            g.clear_block_note(pid);
            if ctx.trace.enabled {
                g.trace(
                    ctx,
                    TraceEvent::RequestAdmitted {
                        gid,
                        service: svc,
                        deferred: false,
                        blockers: Vec::new(),
                        edges_added,
                    },
                );
            }
            Step::Yield(None)
        }
        InvokeOutcome::Prepared { invocation, .. } => {
            g.invocations.insert(gid, (site.subsystem, invocation));
            let edges_added = g.policy.record_executed(gid, true);
            g.pending_release
                .insert(pid, (gid, a, site.subsystem, invocation));
            if g.tele.enabled() {
                g.prepared_at.insert(pid, Instant::now());
            }
            g.metrics.deferred_commits += 1;
            g.clear_block_note(pid);
            if ctx.trace.enabled {
                g.trace(
                    ctx,
                    TraceEvent::RequestAdmitted {
                        gid,
                        service: svc,
                        deferred: true,
                        blockers: blockers.clone(),
                        edges_added,
                    },
                );
                g.trace(ctx, TraceEvent::CommitDeferred { gid, blockers });
            }
            Step::Yield(None)
        }
        // A key lock held by a prepared invocation; holder is a shard-mate
        // (conflicting services share a domain), so the release/abort that
        // frees the key also bumps our generation.
        InvokeOutcome::Busy { .. } => Step::Wait,
        InvokeOutcome::Aborted => unreachable!("no injection requested"),
    }
}

fn finalize<'a>(ctx: &RunCtx<'_, 'a>, g: &mut ShardGuard<'_, 'a>, pid: ProcessId) {
    let status = g.states[&pid].status();
    let released = match status {
        ProcessStatus::Committed => {
            g.metrics.committed += 1;
            g.tele_committed.inc();
            g.clear_block_note(pid);
            if ctx.trace.enabled {
                g.trace(ctx, TraceEvent::ProcessCommitted { pid });
            }
            g.policy.on_commit(pid)
        }
        ProcessStatus::Aborted => {
            g.metrics.aborted += 1;
            g.clear_block_note(pid);
            if ctx.trace.enabled {
                g.trace(ctx, TraceEvent::ProcessAborted { pid });
            }
            g.policy.on_abort(pid)
        }
        ProcessStatus::Active => return,
    };
    // Wall-clock arrival→terminal latency in microseconds (arrival offset
    // subtracted so open-system latencies measure time in system, not time
    // since run start).
    let arrival_us = ctx.arrivals.get(&pid).copied().unwrap_or(0);
    let latency = (ctx.run_start.elapsed().as_micros() as u64).saturating_sub(arrival_us);
    g.metrics.latencies.push(latency);
    g.metrics.latency_by_pid.insert(pid.0, latency);
    for (pj, _gids) in released {
        if g.pending_release.contains_key(&pj) {
            g.ready_releases.push(pj);
        }
    }
    g.drain_ready_releases(ctx);
    // `on_commit`/`on_abort` above removed the process's live operations
    // from the policy — a scheduler-visible change that can unblock a
    // waiter even when no history event was emitted here. Bump the
    // generation so waiters re-poll (without this, the removal was only
    // observed via the historical fallback-timeout wait — the lost-notify
    // bug the lost-wakeup stress test pins).
    g.generation += 1;
}

/// Cascade-aborts a single process (prepared invocations dropped first).
fn cascade_abort<'a>(ctx: &RunCtx<'_, 'a>, g: &mut ShardGuard<'_, 'a>, v: ProcessId) {
    if !g.states[&v].is_active() || g.states[&v].abort_in_progress() {
        return;
    }
    g.metrics.cascaded += 1;
    g.count_abort_reason(AbortReason::Cascade);
    g.clear_block_note(v);
    if ctx.trace.enabled {
        g.trace(
            ctx,
            TraceEvent::AbortStarted {
                pid: v,
                reason: AbortReason::Cascade,
            },
        );
    }
    if let Some((gid, _a, sid, inv)) = g.pending_release.remove(&v) {
        if let Some(t0) = g.prepared_at.remove(&v) {
            g.tele
                .phase_ns(Phase::TwoPc, t0.elapsed().as_nanos() as u64);
        }
        ctx.agents[&sid]
            .lock()
            .abort_prepared(inv)
            .expect("prepared");
        g.invocations.remove(&gid);
        g.policy.record_prepared_aborted(gid);
    }
    g.policy.on_abort_begin(v);
    g.emit(ctx, Event::Abort(v));
    g.states
        .get_mut(&v)
        .expect("state")
        .apply_process_abort()
        .expect("active");
}

fn initiate_abort<'a>(
    ctx: &RunCtx<'_, 'a>,
    g: &mut ShardGuard<'_, 'a>,
    pid: ProcessId,
    reason: AbortReason,
    trigger: Option<GlobalActivityId>,
) {
    if g.states[&pid].abort_in_progress() || !g.states[&pid].is_active() {
        return;
    }
    let completion = g.states[&pid].completion();
    let comp_gids: Vec<GlobalActivityId> = completion
        .compensations
        .iter()
        .map(|&a| GlobalActivityId::new(pid, a))
        .collect();
    let process = ctx.workload.spec.process(pid).expect("known");
    let fwd: Vec<_> = completion
        .forward
        .iter()
        .map(|&a| process.service(a))
        .collect();
    let victims = g.policy.plan_abort(pid, &comp_gids, &fwd);
    if ctx.trace.enabled && !victims.is_empty() {
        g.trace(
            ctx,
            TraceEvent::GroupAbort {
                initiator: Some(pid),
                victims: victims.clone(),
                trigger,
            },
        );
    }
    for v in victims {
        cascade_abort(ctx, g, v);
    }
    if g.states[&pid].is_active() && !g.states[&pid].abort_in_progress() {
        if let Some((gid, _a, sid, inv)) = g.pending_release.remove(&pid) {
            if let Some(t0) = g.prepared_at.remove(&pid) {
                g.tele
                    .phase_ns(Phase::TwoPc, t0.elapsed().as_nanos() as u64);
            }
            ctx.agents[&sid]
                .lock()
                .abort_prepared(inv)
                .expect("prepared");
            g.invocations.remove(&gid);
            g.policy.record_prepared_aborted(gid);
        }
        g.count_abort_reason(reason);
        g.clear_block_note(pid);
        if ctx.trace.enabled {
            g.trace(ctx, TraceEvent::AbortStarted { pid, reason });
        }
        g.policy.on_abort_begin(pid);
        g.emit(ctx, Event::Abort(pid));
        g.states
            .get_mut(&pid)
            .expect("state")
            .apply_process_abort()
            .expect("active");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use txproc_sim::workload::{generate, WorkloadConfig};

    #[test]
    fn concurrent_run_terminates_and_is_pred() {
        for seed in 0..4 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 5,
                conflict_density: 0.4,
                failure_probability: 0.15,
                ..WorkloadConfig::default()
            });
            let result = run_concurrent(
                &w,
                ConcurrentConfig {
                    seed,
                    ..ConcurrentConfig::default()
                },
            );
            assert_eq!(result.metrics.terminated(), 5, "seed {seed}");
            assert!(
                txproc_core::pred::is_pred(&w.spec, &result.history).unwrap(),
                "seed {seed}: concurrent history not PRED:\n{}",
                txproc_core::schedule::render(&result.history)
            );
        }
    }

    #[test]
    fn concurrent_run_with_batch_certifier_is_pred() {
        // Thread interleavings are nondeterministic, so histories cannot be
        // compared against an incremental run; the contract is that whatever
        // interleaving the OS produces, a batch-certified history is still
        // PRED.
        for seed in 0..4 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 5,
                conflict_density: 0.4,
                failure_probability: 0.15,
                ..WorkloadConfig::default()
            });
            let result = run_concurrent(
                &w,
                ConcurrentConfig {
                    seed,
                    certifier: CertifierKind::Batch,
                    ..ConcurrentConfig::default()
                },
            );
            assert_eq!(result.metrics.terminated(), 5, "seed {seed}");
            assert!(
                txproc_core::pred::is_pred(&w.spec, &result.history).unwrap(),
                "seed {seed}: batch-certified history not PRED:\n{}",
                txproc_core::schedule::render(&result.history)
            );
        }
    }

    #[test]
    fn concurrent_run_without_failures_commits_everything() {
        let w = generate(&WorkloadConfig {
            seed: 4,
            processes: 6,
            conflict_density: 0.3,
            failure_probability: 0.0,
            ..WorkloadConfig::default()
        });
        let result = run_concurrent(
            &w,
            ConcurrentConfig {
                inject_failures: false,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(result.metrics.committed, 6);
        assert_eq!(result.metrics.aborted, 0);
    }

    #[test]
    fn concurrent_run_uncertified_protocol_terminates() {
        // The pure protocol (no certifier) under real threads — the
        // bench-harness configuration. PRED is not guaranteed without
        // certification (pred-protocol is the "necessary but not
        // sufficient" ablation); the contract here is termination with a
        // fully accounted outcome.
        for seed in 0..4 {
            let w = generate(&WorkloadConfig {
                seed: seed + 11,
                processes: 6,
                conflict_density: 0.4,
                failure_probability: 0.15,
                ..WorkloadConfig::default()
            });
            let result = run_concurrent(
                &w,
                ConcurrentConfig {
                    policy: PolicyKind::PredProtocol,
                    seed,
                    ..ConcurrentConfig::default()
                },
            );
            assert_eq!(result.metrics.terminated(), 6, "seed {seed}");
        }
    }

    fn outcome_sets(history: &Schedule) -> (BTreeSet<ProcessId>, BTreeSet<ProcessId>) {
        let mut committed = BTreeSet::new();
        let mut aborted = BTreeSet::new();
        for e in history.events() {
            match e {
                Event::Commit(p) => {
                    committed.insert(*p);
                }
                Event::Abort(p) => {
                    aborted.insert(*p);
                }
                Event::GroupAbort(ps) => {
                    aborted.extend(ps.iter().copied());
                }
                _ => {}
            }
        }
        (committed, aborted)
    }

    #[test]
    fn auto_sharding_reports_one_shard_per_domain() {
        let w = generate(&WorkloadConfig {
            seed: 7,
            processes: 16,
            clusters: 4,
            conflict_density: 0.4,
            failure_probability: 0.1,
            ..WorkloadConfig::default()
        });
        let domains = DomainPartition::partition(&w.spec).domain_count();
        assert!(domains >= 4);
        let auto = run_concurrent(
            &w,
            ConcurrentConfig {
                seed: 7,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(auto.metrics.shards.len(), domains);
        assert_eq!(auto.metrics.terminated(), 16);
        let total_events: u64 = auto.metrics.shards.iter().map(|s| s.events).sum();
        assert_eq!(total_events as usize, auto.history.len());

        let single = run_concurrent(
            &w,
            ConcurrentConfig {
                seed: 7,
                shards: ShardMode::Single,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(single.metrics.shards.len(), 1);
        assert_eq!(single.metrics.terminated(), 16);

        let fixed = run_concurrent(
            &w,
            ConcurrentConfig {
                seed: 7,
                shards: ShardMode::Fixed(2),
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(fixed.metrics.shards.len(), 2);
        assert_eq!(fixed.metrics.terminated(), 16);
    }

    #[test]
    fn sharded_and_single_agree_on_disjoint_workloads() {
        // On a workload whose processes never conflict the failure coins
        // fully determine every outcome, so the sharded and single-lock
        // drivers must produce bit-equal commit/abort sets.
        for seed in 0..6 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 8,
                conflict_density: 0.0,
                clusters: 8,
                failure_probability: 0.2,
                ..WorkloadConfig::default()
            });
            assert_eq!(
                DomainPartition::partition(&w.spec).domain_count(),
                8,
                "seed {seed}: clusters of one process each"
            );
            let cfg = ConcurrentConfig {
                seed,
                ..ConcurrentConfig::default()
            };
            let sharded = run_concurrent(&w, cfg.clone());
            let single = run_concurrent(
                &w,
                ConcurrentConfig {
                    shards: ShardMode::Single,
                    ..cfg
                },
            );
            assert_eq!(
                outcome_sets(&sharded.history),
                outcome_sets(&single.history),
                "seed {seed}: outcome sets diverge"
            );
            assert!(txproc_core::pred::is_pred(&w.spec, &sharded.history).unwrap());
        }
    }

    #[test]
    fn concurrent_run_fills_wall_clock_latency_metrics() {
        let w = generate(&WorkloadConfig {
            seed: 2,
            processes: 4,
            ..WorkloadConfig::default()
        });
        let result = run_concurrent(
            &w,
            ConcurrentConfig {
                seed: 2,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(result.metrics.latencies.len(), 4);
        assert!(result.metrics.makespan > 0);
        assert!(result.metrics.latency_percentile(0.5).is_some());
        assert!(
            result
                .metrics
                .latencies
                .iter()
                .all(|&l| l <= result.metrics.makespan),
            "latency beyond makespan"
        );
        assert!(!result.metrics.shards.is_empty());
        assert!(result.metrics.wakeups_total() >= result.metrics.spurious_wakeups_total());
    }

    #[test]
    fn runtime_kind_parse_label_and_caps() {
        assert_eq!(RuntimeKind::parse("threads"), Some(RuntimeKind::Threads));
        assert_eq!(RuntimeKind::parse("events"), Some(RuntimeKind::Events));
        assert_eq!(RuntimeKind::parse("bogus"), None);
        assert_eq!(RuntimeKind::Threads.label(), "threads");
        assert_eq!(RuntimeKind::Events.label(), "events");
        assert!(RuntimeKind::Threads.max_processes().is_some());
        assert_eq!(RuntimeKind::Events.max_processes(), None);
    }

    #[test]
    fn validate_derives_cap_from_runtime_and_names_the_knob() {
        let threads = ConcurrentConfig {
            runtime: RuntimeKind::Threads,
            ..ConcurrentConfig::default()
        };
        let cap = RuntimeKind::Threads.max_processes().unwrap();
        assert!(threads.validate(cap).is_ok());
        let err = threads.validate(cap + 1).unwrap_err();
        assert!(
            err.contains("--runtime events"),
            "error names the knob: {err}"
        );
        assert!(
            err.contains(&cap.to_string()),
            "error states the cap: {err}"
        );
        // The events runtime has no ceiling.
        let events = ConcurrentConfig::default();
        assert!(events.validate(1_000_000).is_ok());
        // A zero-sized worker pool is rejected, naming its knob.
        let zero = ConcurrentConfig {
            workers: Some(0),
            ..ConcurrentConfig::default()
        };
        assert!(zero.validate(4).unwrap_err().contains("--workers"));
    }

    #[test]
    fn threads_runtime_still_terminates_without_fallback_wait() {
        let w = generate(&WorkloadConfig {
            seed: 3,
            processes: 6,
            conflict_density: 0.5,
            failure_probability: 0.2,
            ..WorkloadConfig::default()
        });
        let result = run_concurrent(
            &w,
            ConcurrentConfig {
                seed: 3,
                runtime: RuntimeKind::Threads,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(result.metrics.terminated(), 6);
        let rt = result.metrics.runtime.expect("runtime metrics populated");
        assert_eq!(rt.runtime, "threads");
        assert_eq!(rt.workers, 6);
        assert!(rt.in_flight_peak >= 1);
    }

    #[test]
    fn events_runtime_populates_runtime_metrics() {
        let w = generate(&WorkloadConfig {
            seed: 5,
            processes: 8,
            conflict_density: 0.4,
            failure_probability: 0.1,
            ..WorkloadConfig::default()
        });
        let result = run_concurrent(
            &w,
            ConcurrentConfig {
                seed: 5,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(result.metrics.terminated(), 8);
        let rt = result.metrics.runtime.expect("runtime metrics populated");
        assert_eq!(rt.runtime, "events");
        assert!(rt.workers >= 1);
        assert!(rt.steps >= 8, "at least one step per process");
        assert_eq!(rt.in_flight_peak, 8, "closed arrivals: all in flight");
        assert!(rt.sched_delay_ns.iter().sum::<u64>() > 0);
        assert!(rt.delay_percentile_ns(0.95).is_some());
    }

    #[test]
    fn try_run_concurrent_reports_config_errors() {
        let w = generate(&WorkloadConfig {
            seed: 1,
            processes: 4,
            ..WorkloadConfig::default()
        });
        let err = try_run_concurrent(
            &w,
            ConcurrentConfig {
                workers: Some(0),
                ..ConcurrentConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("--workers"));
        let ok = try_run_concurrent(&w, ConcurrentConfig::default()).unwrap();
        assert_eq!(ok.metrics.terminated(), 4);
    }

    #[test]
    fn shard_mode_parse_and_label_round_trip() {
        assert_eq!(ShardMode::parse("auto"), Some(ShardMode::Auto));
        assert_eq!(ShardMode::parse("single"), Some(ShardMode::Single));
        assert_eq!(ShardMode::parse("1"), Some(ShardMode::Single));
        assert_eq!(ShardMode::parse("4"), Some(ShardMode::Fixed(4)));
        assert_eq!(ShardMode::parse("bogus"), None);
        assert_eq!(ShardMode::Auto.label(), "auto");
        assert_eq!(ShardMode::Single.label(), "single");
        assert_eq!(ShardMode::Fixed(4).label(), "4");
    }
}
