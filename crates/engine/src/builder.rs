//! The canonical run entry point: one builder on which trace sinks,
//! telemetry, sampling, epochs, and durability compose as orthogonal
//! options, for both the virtual-time engine and the concurrent driver.
//!
//! Before the builder, every option combination minted its own entry point
//! (`run_concurrent` / `_traced` / `_instrumented`, `Engine::with_sink` /
//! `with_telemetry` / `with_sampling`) and adding durability would have
//! doubled that set again. Those entry points survive as thin deprecated
//! shims delegating here, pinned bit-identical by the 256-seed
//! differentials in `tests/builder_shims.rs`.
//!
//! ```ignore
//! // Virtual-time engine, traced, journaled to a WAL:
//! let out = RunBuilder::new(&workload)
//!     .config(RunConfig { seed, epoch: 16, ..RunConfig::default() })
//!     .sink(Box::new(journal.clone()))
//!     .durability(WalWriter::new(store, DurabilityPolicy::FsyncPerEpoch, seed), 64)
//!     .run()
//!     .into_engine();
//!
//! // Concurrent driver with telemetry:
//! let out = RunBuilder::new(&workload)
//!     .concurrent(ConcurrentConfig { seed, ..ConcurrentConfig::default() })
//!     .telemetry(tele)
//!     .run()
//!     .into_concurrent();
//! ```

use crate::concurrent::{run_concurrent_impl, ConcurrentConfig, ConcurrentResult};
use crate::engine::{Engine, RunConfig, RunResult};
use txproc_core::schedule::Schedule;
use txproc_core::telemetry::Telemetry;
use txproc_core::trace::{NoopSink, TraceSink};
use txproc_core::wal::WalWriter;
use txproc_sim::metrics::Metrics;
use txproc_sim::timeseries::TimeSeries;
use txproc_sim::workload::Workload;

/// What a [`RunBuilder`] run produced: the engine and the concurrent
/// driver keep their distinct result types (virtual ticks vs wall-clock
/// metrics, PRED verdict vs shard metrics), unified behind one enum with
/// accessors for the fields every run has.
#[derive(Debug)]
pub enum RunOutcome {
    /// A virtual-time engine run.
    Engine(RunResult),
    /// A concurrent-driver run.
    Concurrent(ConcurrentResult),
}

impl RunOutcome {
    /// The emitted (engine) or ticket-merged (concurrent) history.
    pub fn history(&self) -> &Schedule {
        match self {
            RunOutcome::Engine(r) => &r.history,
            RunOutcome::Concurrent(r) => &r.history,
        }
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        match self {
            RunOutcome::Engine(r) => &r.metrics,
            RunOutcome::Concurrent(r) => &r.metrics,
        }
    }

    /// Unwraps an engine run; panics on a concurrent one.
    pub fn into_engine(self) -> RunResult {
        match self {
            RunOutcome::Engine(r) => r,
            RunOutcome::Concurrent(_) => {
                panic!("RunOutcome::into_engine on a concurrent run; use into_concurrent")
            }
        }
    }

    /// Unwraps a concurrent run; panics on an engine one.
    pub fn into_concurrent(self) -> ConcurrentResult {
        match self {
            RunOutcome::Concurrent(r) => r,
            RunOutcome::Engine(_) => {
                panic!("RunOutcome::into_concurrent on an engine run; use into_engine")
            }
        }
    }
}

/// Builder over one workload run. Defaults to the virtual-time engine with
/// [`RunConfig::default`]; [`Self::concurrent`] switches to the concurrent
/// driver. Every other option composes with either driver (sampling is
/// engine-only — the concurrent driver has no virtual clock to stamp
/// samples with — and snapshot cadence is engine-only, since shard logs
/// carry no agent state to snapshot).
pub struct RunBuilder<'a> {
    workload: &'a Workload,
    engine_cfg: RunConfig,
    concurrent_cfg: Option<ConcurrentConfig>,
    sink: Option<Box<dyn TraceSink + 'a>>,
    tele: Telemetry,
    sampling: Option<(u64, TimeSeries)>,
    wal: Option<(WalWriter, usize)>,
}

impl<'a> RunBuilder<'a> {
    /// A builder for `workload`, set up as a default engine run.
    pub fn new(workload: &'a Workload) -> Self {
        Self {
            workload,
            engine_cfg: RunConfig::default(),
            concurrent_cfg: None,
            sink: None,
            tele: Telemetry::off(),
            sampling: None,
            wal: None,
        }
    }

    /// Engine configuration (seed, policy, epoch, failure injection, …).
    /// Ignored after [`Self::concurrent`].
    pub fn config(mut self, cfg: RunConfig) -> Self {
        self.engine_cfg = cfg;
        self
    }

    /// Switches the run to the concurrent driver with `cfg` (runtime,
    /// shards, workers, epoch, …).
    pub fn concurrent(mut self, cfg: ConcurrentConfig) -> Self {
        self.concurrent_cfg = Some(cfg);
        self
    }

    /// Emits the decision trace into `sink`. Install a cloned
    /// [`txproc_core::trace::Journal`] or [`txproc_core::trace::RingSink`]
    /// handle to read the trace back after the run.
    pub fn sink(mut self, sink: Box<dyn TraceSink + 'a>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Feeds phase timers and instruments into `tele`'s registry. A
    /// disabled handle keeps the hot paths at one branch per site.
    pub fn telemetry(mut self, tele: Telemetry) -> Self {
        self.tele = tele;
        self
    }

    /// Samples the telemetry registry into `series` every `every_events`
    /// dispatch events (engine runs only; ignored by the concurrent
    /// driver, which has no virtual clock).
    pub fn sampling(mut self, every_events: u64, series: TimeSeries) -> Self {
        self.sampling = Some((every_events, series));
        self
    }

    /// Journals every durable state transition through `writer` (policy
    /// decides flush/fsync cadence). For engine runs, `snapshot_every > 0`
    /// additionally appends a full-state snapshot marker each time that
    /// many history events accumulated, so recovery replays only the log
    /// tail; concurrent runs journal ticket-stamped shard events and
    /// ignore the snapshot cadence.
    pub fn durability(mut self, writer: WalWriter, snapshot_every: usize) -> Self {
        self.wal = Some((writer, snapshot_every));
        self
    }

    /// Runs the configured driver. Panics on an invalid concurrent
    /// configuration; use [`Self::try_run`] for a `Result`.
    pub fn run(self) -> RunOutcome {
        match self.try_run() {
            Ok(out) => out,
            Err(msg) => panic!("invalid concurrent configuration: {msg}"),
        }
    }

    /// Fallible variant of [`Self::run`]: returns the configuration error
    /// (naming the knob to change) instead of panicking.
    pub fn try_run(self) -> Result<RunOutcome, String> {
        let sink = self.sink.unwrap_or_else(|| Box::new(NoopSink));
        match self.concurrent_cfg {
            Some(cfg) => {
                cfg.validate(self.workload.spec.processes().count())?;
                Ok(RunOutcome::Concurrent(run_concurrent_impl(
                    self.workload,
                    cfg,
                    sink,
                    self.tele,
                    self.wal.map(|(writer, _)| writer),
                )))
            }
            None => {
                let mut engine = Engine::assemble(self.workload, self.engine_cfg, sink);
                engine.set_telemetry(self.tele);
                if let Some((every, series)) = self.sampling {
                    engine.set_sampling(every, series);
                }
                if let Some((writer, snapshot_every)) = self.wal {
                    engine.set_wal(writer, snapshot_every);
                }
                Ok(RunOutcome::Engine(engine.run()))
            }
        }
    }
}
