//! # txproc-engine
//!
//! A WISE-style **transactional process scheduler** (the system the PODS'99
//! paper's conclusion describes): it executes processes with guaranteed
//! termination over simulated transactional subsystems while keeping the
//! emitted history prefix-reducible (PRED) — the paper's unified
//! concurrency-control-and-recovery criterion.
//!
//! * [`policy`] — scheduling policies: the paper's PRED protocol
//!   (Lemmas 1–3, §3.5) and three baselines (serial, conservative
//!   process-level locking, and an *unsafe* concurrency-control-only
//!   scheduler that demonstrates why recovery must be considered jointly),
//! * [`engine`] — the deterministic virtual-time executor: admission
//!   control, failure injection, alternative execution paths, compensation,
//!   deferred 2PC commits, cascading aborts, metrics,
//! * [`concurrent`] — the same protocol under realistic concurrency
//!   (event-driven worker pool by default, thread-per-process as the
//!   differential baseline; stress-tested for PRED),
//! * [`recovery`] — scheduler crash recovery by group abort and completion
//!   replay from the durable logs (§3.3, Definition 8).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod concurrent;
pub mod durability;
pub mod engine;
pub mod policy;
pub mod recovery;

pub use builder::{RunBuilder, RunOutcome};
#[allow(deprecated)]
pub use concurrent::run_concurrent_traced;
pub use concurrent::{
    run_concurrent, try_run_concurrent, ConcurrentConfig, ConcurrentResult, RuntimeKind, ShardMode,
};
pub use engine::{run, Engine, RunConfig, RunResult};
pub use policy::{Policy, PolicyKind};
#[allow(deprecated)]
pub use recovery::recover_traced;
pub use recovery::{recover, CrashImage, Recovery, RecoveryError, RecoveryReport, RecoverySource};
