//! The transactional process scheduler runtime: a deterministic virtual-time
//! executor driving processes through a [`Policy`](crate::policy::Policy)
//! over simulated subsystems.
//!
//! The engine is the WISE-style system the paper describes in its
//! conclusion: it admits processes with guaranteed termination, asks the
//! scheduling policy before every activity, invokes services at the
//! subsystem agents (with failure injection), handles alternative execution
//! paths and compensations via the per-process state machines, defers
//! non-compensatable commits via 2PC where the protocol demands it, cascades
//! aborts, and records the emitted history as a
//! [`Schedule`](txproc_core::schedule::Schedule) that can be checked for
//! PRED offline.

use crate::policy::{CertifierKind, Policy, PolicyKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use txproc_core::activity::Termination;
use txproc_core::ids::{ActivityId, GlobalActivityId, ProcessId};
use txproc_core::protocol::Admission;
use txproc_core::schedule::Schedule;
use txproc_core::state::{FailureOutcome, ProcessState, ProcessStatus};
use txproc_core::telemetry::{Phase, Telemetry};
use txproc_core::trace::{AbortReason, NoopSink, TraceEvent, TraceRecord, TraceSink};
use txproc_core::wal::{WalRecord, WalWriter};
use txproc_sim::clock::{EventQueue, SimTime};
use txproc_sim::metrics::Metrics;
use txproc_sim::timeseries::TimeSeries;
use txproc_sim::workload::Workload;
use txproc_subsystem::agent::{Agent, CommitMode, InvocationId, InvokeOutcome};
use txproc_subsystem::subsystem::{Subsystem, SubsystemId};
use txproc_subsystem::tpc::{Coordinator, Participant};

/// Run configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// RNG seed for failure injection.
    pub seed: u64,
    /// Whether failable activities may fail (probability from the workload).
    pub inject_failures: bool,
    /// Virtual time between process arrivals (0: all at time zero).
    pub arrival_gap: u64,
    /// Verify the emitted history for PRED after the run (expensive).
    pub check_pred: bool,
    /// Which §3.5 certifier implementation answers the per-event
    /// certification (certified policies only).
    pub certifier: CertifierKind,
    /// Epoch size for group certification and batch commit. `0` keeps the
    /// per-event path bit-identical to earlier releases. With `N > 0` the
    /// engine retains each certified plan for its matching `record` (one
    /// closure computation per admitted event instead of two), groups up to
    /// `N` deferred 2PC releases into one prepare→decide round, and flushes
    /// the trace sink once per `N` emitted events (or earlier under
    /// conflict pressure). `N = 1` closes an epoch per event and stays
    /// bit-identical — history *and* metrics — to `N = 0`.
    #[serde(default)]
    pub epoch: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            policy: PolicyKind::Pred,
            seed: 7,
            inject_failures: true,
            arrival_gap: 0,
            check_pred: false,
            certifier: CertifierKind::Incremental,
            epoch: 0,
        }
    }
}

/// Result of a run.
#[derive(Debug)]
pub struct RunResult {
    /// Collected metrics.
    pub metrics: Metrics,
    /// The emitted history.
    pub history: Schedule,
    /// PRED verdict of the history (when `check_pred` was set).
    pub pred_ok: Option<bool>,
    /// Processes that could not make progress (scheduling stall — should
    /// always be empty; reported instead of hanging).
    pub stalled: Vec<ProcessId>,
}

/// Internal per-process bookkeeping.
#[derive(Debug, Clone, PartialEq)]
enum Waiting {
    /// Ready/running: the next dispatch token is scheduled.
    No,
    /// Waiting for any of these processes to terminate.
    OnProcesses(Vec<ProcessId>),
    /// Executed under deferred commit; waiting for release.
    OnRelease,
}

struct PendingRelease {
    gid: GlobalActivityId,
    activity: ActivityId,
    subsystem: SubsystemId,
    invocation: InvocationId,
}

/// The engine.
pub struct Engine<'a> {
    workload: &'a Workload,
    cfg: RunConfig,
    policy: Box<dyn Policy + Send + 'a>,
    agents: BTreeMap<SubsystemId, Agent>,
    coordinator: Coordinator,
    states: BTreeMap<ProcessId, ProcessState<'a>>,
    queue: EventQueue<(ProcessId, u64)>,
    /// Latest dispatch token per process; stale events no-op.
    tokens: BTreeMap<ProcessId, u64>,
    next_token: u64,
    history: Schedule,
    metrics: Metrics,
    now: SimTime,
    rng: StdRng,
    /// Committed forward invocations, for later compensation.
    invocations: BTreeMap<GlobalActivityId, (SubsystemId, InvocationId)>,
    pending_release: BTreeMap<ProcessId, PendingRelease>,
    waiting: BTreeMap<ProcessId, Waiting>,
    arrivals: BTreeMap<ProcessId, u64>,
    done: BTreeSet<ProcessId>,
    /// Order in which aborts were initiated (Definition 8.3(f): completions
    /// of concurrently aborting processes are ordered consistently).
    abort_seq: BTreeMap<ProcessId, u64>,
    next_abort_seq: u64,
    /// Whether every effect event is certified against the completed prefix
    /// (§3.5) before it is emitted.
    certify: bool,
    /// The incremental §3.5 certifier (when configured). Kept in lock-step
    /// with `history` lazily: `certified_ok` absorbs newly emitted events
    /// before certifying the candidate, so each event is processed exactly
    /// once over the whole run. `RefCell` because diagnostic probes certify
    /// through `&self`.
    incremental: Option<RefCell<txproc_core::pred_incremental::IncrementalPred<'a>>>,
    /// Deferred releases postponed by certification, stamped with the
    /// history length at failure time; retried only once the history
    /// actually advanced (the certifier's answer depends on nothing else).
    postponed_releases: Vec<(ProcessId, Vec<GlobalActivityId>, usize)>,
    /// Consecutive certification failures per process; escalates to an
    /// abort so the run cannot livelock.
    cert_failures: BTreeMap<ProcessId, u32>,
    /// Transient-retry counters for retriable activities.
    retries_left: BTreeMap<GlobalActivityId, u32>,
    /// Durable invocation log (survives scheduler crashes): every service
    /// invocation with its subsystem transaction handle.
    invocation_log: Vec<InvocationLogEntry>,
    stall_guard: u32,
    /// Consecutive processed events without progress (livelock detector).
    no_progress_ticks: u32,
    /// Decision-trace sink ([`NoopSink`] unless installed via
    /// [`Engine::with_sink`]). Emission sites consult `sink.enabled()`
    /// before building payloads, so the no-op sink costs one branch.
    sink: Box<dyn TraceSink + 'a>,
    /// Next trace sequence number.
    trace_seq: u64,
    /// Virtual time at which each currently blocked process entered its
    /// wait, for the per-process blocked-time metric.
    blocked_since: BTreeMap<ProcessId, u64>,
    /// Telemetry registry handle (disabled unless installed via
    /// [`Engine::with_telemetry`]). Phase timers consult `tele.enabled()`
    /// before reading the clock, so the disabled handle costs one branch —
    /// the same discipline as the [`NoopSink`] trace path.
    tele: Telemetry,
    /// Wall instant at which each process's deferred invocation prepared;
    /// populated only while telemetry is enabled (disabled runs stay
    /// byte-identical). Drives the [`Phase::TwoPc`] prepare→decide gap.
    prepared_at: BTreeMap<ProcessId, Instant>,
    /// Virtual-time sampling: every `K` processed events, snapshot the
    /// registry into the ring (installed via [`Engine::with_sampling`]).
    sampling: Option<(u64, TimeSeries)>,
    /// Processed (non-stale) dispatch events, for the sampling cadence.
    events_processed: u64,
    /// History events emitted since the last epoch close (`cfg.epoch > 0`
    /// only). An epoch closes on fill (`>= cfg.epoch`), on certification
    /// failure (conflict pressure — get the decision trace out while the
    /// run stalls), and at run end.
    epoch_pending: usize,
    /// Deferred 2PC releases accumulated for the current group-commit
    /// round (`cfg.epoch > 0` only); flushed as one
    /// [`Coordinator::commit_group`] call per `cfg.epoch` participants.
    epoch_group: Vec<Participant>,
    /// Durable write-ahead journal (absent unless installed via
    /// [`Engine::with_wal`]). Every durable state transition appends a
    /// typed record; `engine::durability::rebuild_image` replays the log
    /// back into a [`CrashImage`](crate::recovery::CrashImage). The WAL is
    /// pure observation: installing it never changes scheduling decisions,
    /// so WAL-on and WAL-off runs emit bit-identical histories.
    wal: Option<WalWriter>,
    /// Append a full-state snapshot marker every this many emitted history
    /// events (`0`: never — recovery replays from the log head).
    snapshot_every: usize,
    /// History length at the last snapshot marker.
    last_snapshot: usize,
    /// Monotonic counter for WAL epoch-seal records.
    wal_epoch: u64,
}

/// One durable invocation-log entry: enough to find the subsystem
/// transaction of an activity after a scheduler crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvocationLogEntry {
    /// The activity.
    pub gid: GlobalActivityId,
    /// Where it ran.
    pub subsystem: SubsystemId,
    /// The invocation handle at the agent.
    pub invocation: InvocationId,
    /// Whether the invocation was left prepared (commit deferred).
    pub prepared: bool,
}

const BUSY_BACKOFF: u64 = 1;
const MAX_TRANSIENT_RETRIES: u32 = 3;

impl<'a> Engine<'a> {
    /// Sets up a run over a workload with the default (no-op) trace sink.
    pub fn new(workload: &'a Workload, cfg: RunConfig) -> Self {
        Self::assemble(workload, cfg, Box::new(NoopSink))
    }

    /// Sets up a run that emits its decision trace into `sink`. Install a
    /// cloned [`txproc_core::trace::Journal`] or
    /// [`txproc_core::trace::RingSink`] handle to read the trace back after
    /// [`Engine::run`] consumes the engine.
    #[deprecated(
        since = "0.10.0",
        note = "compose the options on `RunBuilder` instead: \
                `RunBuilder::new(w).config(cfg).sink(sink).run()`"
    )]
    pub fn with_sink(
        workload: &'a Workload,
        cfg: RunConfig,
        sink: Box<dyn TraceSink + 'a>,
    ) -> Self {
        Self::assemble(workload, cfg, sink)
    }

    /// The one engine constructor behind [`Engine::new`], the deprecated
    /// `with_sink` shim, and [`crate::builder::RunBuilder`].
    pub(crate) fn assemble(
        workload: &'a Workload,
        cfg: RunConfig,
        sink: Box<dyn TraceSink + 'a>,
    ) -> Self {
        let policy = cfg.policy.build(&workload.spec);
        let mut agents = BTreeMap::new();
        for sid in workload.deployment.subsystems() {
            agents.insert(
                sid,
                Agent::new(Subsystem::new(sid, format!("sub{}", sid.0))),
            );
        }
        let mut engine = Self {
            workload,
            cfg: cfg.clone(),
            policy,
            agents,
            coordinator: Coordinator::new(),
            states: BTreeMap::new(),
            queue: EventQueue::new(),
            tokens: BTreeMap::new(),
            next_token: 0,
            history: Schedule::new(),
            metrics: Metrics::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(cfg.seed),
            invocations: BTreeMap::new(),
            pending_release: BTreeMap::new(),
            waiting: BTreeMap::new(),
            arrivals: BTreeMap::new(),
            done: BTreeSet::new(),
            retries_left: BTreeMap::new(),
            invocation_log: Vec::new(),
            stall_guard: 0,
            no_progress_ticks: 0,
            abort_seq: BTreeMap::new(),
            next_abort_seq: 0,
            certify: cfg.policy.certified(),
            incremental: (cfg.policy.certified() && cfg.certifier == CertifierKind::Incremental)
                .then(|| {
                    RefCell::new(txproc_core::pred_incremental::IncrementalPred::new(
                        &workload.spec,
                    ))
                }),
            postponed_releases: Vec::new(),
            cert_failures: BTreeMap::new(),
            sink,
            trace_seq: 0,
            blocked_since: BTreeMap::new(),
            tele: Telemetry::off(),
            prepared_at: BTreeMap::new(),
            sampling: None,
            events_processed: 0,
            epoch_pending: 0,
            epoch_group: Vec::new(),
            wal: None,
            snapshot_every: 0,
            last_snapshot: 0,
            wal_epoch: 0,
        };
        // Closed arrivals keep the config's `arrival_gap` staggering; open
        // models (Poisson / Burst) take their times from the workload.
        let open = !matches!(
            workload.config.arrivals,
            txproc_sim::workload::ArrivalModel::Closed
        );
        let times = open.then(|| txproc_sim::workload::arrival_times(&workload.config));
        let mut at = 0u64;
        for (idx, process) in workload.spec.processes().enumerate() {
            let pid = process.id;
            let state = ProcessState::new(process, &workload.spec.catalog)
                .expect("workload processes are tree-structured");
            engine.states.insert(pid, state);
            let arrive = match &times {
                Some(ts) => ts[idx],
                None => at,
            };
            engine.arrivals.insert(pid, arrive);
            engine.policy.register(pid);
            engine.waiting.insert(pid, Waiting::No);
            engine.schedule_dispatch(pid, SimTime(arrive));
            at += cfg.arrival_gap;
        }
        engine
    }

    /// Installs a telemetry handle: phase timers (certify / policy /
    /// compensation / 2PC prepare→decide) feed its registry. With a
    /// disabled handle the hot paths cost one branch and read no clocks.
    #[deprecated(
        since = "0.10.0",
        note = "compose the options on `RunBuilder` instead: \
                `RunBuilder::new(w).config(cfg).telemetry(tele).run()`"
    )]
    pub fn with_telemetry(mut self, tele: Telemetry) -> Self {
        self.set_telemetry(tele);
        self
    }

    pub(crate) fn set_telemetry(&mut self, tele: Telemetry) {
        self.tele = tele;
    }

    /// Samples the telemetry registry into `series` every `every_events`
    /// processed dispatch events, stamped with the virtual clock. No-op
    /// while telemetry is disabled.
    #[deprecated(
        since = "0.10.0",
        note = "compose the options on `RunBuilder` instead: \
                `RunBuilder::new(w).config(cfg).sampling(n, series).run()`"
    )]
    pub fn with_sampling(mut self, every_events: u64, series: TimeSeries) -> Self {
        self.set_sampling(every_events, series);
        self
    }

    pub(crate) fn set_sampling(&mut self, every_events: u64, series: TimeSeries) {
        self.sampling = Some((every_events.max(1), series));
    }

    /// Installs a durable write-ahead journal: every durable state
    /// transition (invocation, release, decision, history event) appends a
    /// typed record before the run proceeds past it. `snapshot_every > 0`
    /// additionally appends a full-state snapshot marker each time that
    /// many history events accumulated since the last one, so recovery
    /// replays only the log tail. Journaling is pure observation — the
    /// emitted history is bit-identical with and without it.
    pub fn with_wal(mut self, writer: WalWriter, snapshot_every: usize) -> Self {
        self.set_wal(writer, snapshot_every);
        self
    }

    pub(crate) fn set_wal(&mut self, writer: WalWriter, snapshot_every: usize) {
        self.wal = Some(writer);
        self.snapshot_every = snapshot_every;
    }

    /// WAL writer counters `(records, bytes, syncs)`, when journaling.
    pub fn wal_stats(&self) -> Option<(u64, u64, u64)> {
        self.wal
            .as_ref()
            .map(|w| (w.records(), w.bytes(), w.syncs()))
    }

    /// Appends one record to the journal (no-op without one).
    #[inline]
    fn wal_append(&mut self, record: WalRecord) {
        if let Some(w) = &mut self.wal {
            w.append(&record);
        }
    }

    /// Appends a history-event record to the journal (no-op without one).
    #[inline]
    fn wal_event(&mut self, event: txproc_core::schedule::Event) {
        if self.wal.is_some() {
            self.wal_append(WalRecord::Event { event });
        }
    }

    /// The emitted history so far.
    pub fn history(&self) -> &Schedule {
        &self.history
    }

    /// Current metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Subsystem agents (inspection in tests).
    pub fn agents(&self) -> &BTreeMap<SubsystemId, Agent> {
        &self.agents
    }

    /// Processes that have not terminated.
    pub fn live_processes(&self) -> Vec<ProcessId> {
        self.states
            .keys()
            .filter(|p| !self.done.contains(p))
            .copied()
            .collect()
    }

    /// Whether decision tracing is on. Emission sites building non-trivial
    /// payloads (clones, vectors) guard on this so the no-op sink stays
    /// zero-cost.
    #[inline]
    fn tracing(&self) -> bool {
        self.sink.enabled()
    }

    /// Emits one decision record, stamped with the causal position.
    fn trace(&mut self, event: TraceEvent) {
        if !self.sink.enabled() {
            return;
        }
        let rec = TraceRecord {
            seq: self.trace_seq,
            time: self.now.0,
            history_len: self.history.len(),
            shard: None,
            worker: None,
            event,
        };
        self.trace_seq += 1;
        self.sink.record(rec);
    }

    /// Marks the start of a blocked interval (idempotent while blocked).
    fn mark_blocked(&mut self, pid: ProcessId) {
        let now = self.now.0;
        self.blocked_since.entry(pid).or_insert(now);
    }

    /// Closes a blocked interval, accumulating it into the metrics.
    fn mark_unblocked(&mut self, pid: ProcessId) {
        if let Some(t) = self.blocked_since.remove(&pid) {
            *self.metrics.blocked_time.entry(pid.0).or_insert(0) += self.now.0.saturating_sub(t);
        }
    }

    fn count_abort_reason(&mut self, reason: AbortReason) {
        let r = &mut self.metrics.abort_reasons;
        match reason {
            AbortReason::Rejected => r.rejected += 1,
            AbortReason::Cascade => r.cascade += 1,
            AbortReason::Failure => r.failure += 1,
            AbortReason::CertStuck => r.cert_stuck += 1,
            AbortReason::Deadlock => r.deadlock += 1,
            AbortReason::External => r.external += 1,
        }
    }

    fn schedule_dispatch(&mut self, pid: ProcessId, at: SimTime) {
        let token = self.next_token;
        self.next_token += 1;
        self.tokens.insert(pid, token);
        self.queue.schedule(at, (pid, token));
    }

    fn duration_of(&self, gid: GlobalActivityId) -> u64 {
        let process = self.workload.spec.process(gid.process).expect("known");
        let svc = process.service(gid.activity);
        self.workload
            .deployment
            .site(svc)
            .map(|s| s.duration)
            .unwrap_or(1)
    }

    /// Processes one pending event. Returns `false` when nothing remains
    /// (all processes terminated or stalled for good).
    pub fn tick(&mut self) -> bool {
        loop {
            let Some((time, (pid, token))) = self.queue.pop() else {
                // Queue drained: wake waiting processes; if nothing
                // progresses, resolve the deadlock by aborting a victim
                // (mutual waits — deferment vs. release vs. commit order —
                // can only be broken by an abort, which is always legal for
                // an uncommitted process).
                let undone: Vec<ProcessId> = self.live_processes();
                if undone.is_empty() {
                    return false;
                }
                if self.stall_guard > 2 {
                    if !self.break_deadlock() {
                        return false; // everything already aborting: stuck
                    }
                    continue;
                }
                self.stall_guard += 1;
                for pid in undone {
                    // Never clobber OnRelease: the process already executed
                    // its deferred activity and must not re-run it.
                    if !matches!(self.waiting.get(&pid), Some(Waiting::OnRelease)) {
                        self.mark_unblocked(pid);
                        self.waiting.insert(pid, Waiting::No);
                    }
                    let at = self.now;
                    self.schedule_dispatch(pid, at);
                }
                continue;
            };
            if self.tokens.get(&pid) != Some(&token) {
                continue; // stale
            }
            self.now = time;
            self.events_processed += 1;
            if let Some((every, series)) = &self.sampling {
                if self.events_processed.is_multiple_of(*every) {
                    if let Some(snap) = self.tele.snapshot() {
                        series.push_virtual(self.now.0, snap);
                    }
                }
            }
            let before = (
                self.history.len(),
                self.invocation_log.len(),
                self.done.len(),
            );
            self.dispatch(pid);
            let after = (
                self.history.len(),
                self.invocation_log.len(),
                self.done.len(),
            );
            if self.cfg.epoch > 0 {
                self.epoch_pending += after.0 - before.0;
                if self.epoch_pending >= self.cfg.epoch {
                    self.close_epoch();
                }
            }
            // Snapshot at tick boundaries only: the release group is empty
            // and no 2PC decision window is open, so the captured state is
            // consistent by construction.
            if self.wal.is_some()
                && self.snapshot_every > 0
                && self.history.len() - self.last_snapshot >= self.snapshot_every
            {
                self.append_snapshot();
            }
            if before != after {
                // Real progress: effects, prepares, or terminations.
                self.stall_guard = 0;
                self.no_progress_ticks = 0;
            } else {
                // Backoff/retry livelocks (e.g. everything Busy behind a
                // prepared transaction) never drain the queue; detect them
                // by counting progress-free ticks.
                self.no_progress_ticks += 1;
                if self.no_progress_ticks > 2_000 {
                    self.no_progress_ticks = 0;
                    self.break_deadlock();
                }
            }
            return true;
        }
    }

    /// Deadlock resolution: aborts the youngest live non-aborting process
    /// (always legal before its commit). Returns false when every live
    /// process is already aborting.
    fn break_deadlock(&mut self) -> bool {
        let victim = self
            .live_processes()
            .into_iter()
            .rev()
            .find(|p| self.states[p].is_active() && !self.states[p].abort_in_progress());
        let Some(victim) = victim else {
            return false;
        };
        self.metrics.rejections += 1;
        self.stall_guard = 0;
        self.initiate_abort(victim, AbortReason::Deadlock, None);
        true
    }

    /// Runs until the emitted history holds at least `n` events (or nothing
    /// remains to do).
    pub fn run_until_history(&mut self, n: usize) {
        while self.history.len() < n && self.tick() {}
    }

    /// Runs to completion; returns the result.
    pub fn run(mut self) -> RunResult {
        // Safety bound: a run of n processes needs O(n · activities) events;
        // hitting the bound indicates a scheduling livelock, which is
        // reported via `stalled` instead of hanging.
        let max_ticks = 10_000 * (self.states.len() as u64 + 1);
        let mut ticks = 0u64;
        while self.tick() {
            ticks += 1;
            if ticks > max_ticks {
                break;
            }
        }
        if self.cfg.epoch > 0 {
            self.close_epoch();
        }
        if let Some(w) = &mut self.wal {
            w.finish();
        }
        self.metrics.makespan = self.now.0;
        let stalled = self.live_processes();
        let pred_ok = if self.cfg.check_pred {
            Some(txproc_core::pred::is_pred(&self.workload.spec, &self.history).unwrap_or(false))
        } else {
            None
        };
        if let Some(false) = pred_ok {
            self.metrics.violations += 1;
        }
        RunResult {
            metrics: self.metrics,
            history: self.history,
            pred_ok,
            stalled,
        }
    }

    /// §3.5 certification: would the history extended by `event` still have
    /// a reducible completed schedule? Certified policies gate every effect
    /// event on this — which makes every emitted prefix reducible, i.e. the
    /// history PRED by construction.
    fn certified_ok(&self, event: txproc_core::schedule::Event) -> bool {
        if !self.certify {
            return true;
        }
        let t0 = self.tele.phase_start();
        let ok = self.certified_ok_inner(event);
        self.tele.phase_end(Phase::Certify, t0);
        ok
    }

    fn certified_ok_inner(&self, event: txproc_core::schedule::Event) -> bool {
        if let Some(cell) = &self.incremental {
            let mut inc = cell.borrow_mut();
            // Absorb history events emitted since the last certification;
            // amortized, every event is recorded exactly once per run. The
            // sync stays per-event `record` (not `record_epoch`): emitted
            // history may contain forcibly recorded non-reducible events
            // (aborts), which a batch verdict would refuse to apply.
            for e in &self.history.events()[inc.len()..] {
                inc.record(e).expect("emitted history event is legal");
            }
            // Epoch mode retains the certified plan so the admitting
            // `record` above (next sync) replays it instead of re-planning:
            // one closure / `PairCounts` computation per admitted event.
            // `certify` and `certify_keep` answer identically — the cache
            // is a pure amortization, so histories stay bit-identical.
            let verdict = if self.cfg.epoch > 0 {
                inc.certify_keep(&event)
            } else {
                inc.certify(&event)
            };
            return match verdict {
                Ok(verdict) => verdict.reducible,
                Err(_) => false,
            };
        }
        let mut candidate = self.history.clone();
        candidate.push(event);
        match txproc_core::completion::complete(&self.workload.spec, &candidate) {
            Ok(completed) => {
                txproc_core::reduction::reduce(&self.workload.spec, &completed).reducible
            }
            Err(_) => false,
        }
    }

    /// [`Engine::certified_ok`] plus bookkeeping: counts failed verdicts in
    /// the metrics and emits a [`TraceEvent::CertifyOutcome`] per decision
    /// (certified policies only).
    fn certified_traced(&mut self, event: txproc_core::schedule::Event) -> bool {
        if !self.certify {
            return true;
        }
        let ok = self.certified_ok(event.clone());
        if !ok {
            self.metrics.cert_failures += 1;
        }
        if self.tracing() {
            let frontier = self.history.len() + 1;
            self.trace(TraceEvent::CertifyOutcome {
                event,
                ok,
                frontier,
            });
        }
        ok
    }

    /// Closes the current epoch: flushes the trace sink (one write for the
    /// whole batch), samples the epoch-fill and flush-latency histograms,
    /// and counts the batch in the metrics. `epoch >= 2` only for the
    /// counters — an epoch of one *is* the per-event path, and counting it
    /// would break the `epoch=1 ≡ per-event` metrics identity the
    /// differential oracle pins.
    fn close_epoch(&mut self) {
        if self.epoch_pending == 0 {
            return;
        }
        let fill = self.epoch_pending as u64;
        self.epoch_pending = 0;
        if self.cfg.epoch >= 2 {
            self.metrics.epoch_batches += 1;
            self.metrics.epoch_events += fill;
        }
        self.tele.phase_ns(Phase::EpochFill, fill);
        let t0 = self.tele.phase_start();
        self.sink.flush();
        self.tele.phase_end(Phase::EpochFlush, t0);
        if let Some(w) = &mut self.wal {
            let epoch = self.wal_epoch;
            self.wal_epoch += 1;
            w.seal_epoch(epoch);
        }
    }

    /// Appends a full-state snapshot marker: history, invocation log, 2PC
    /// decision log, and agents, serialized so recovery restores them and
    /// replays only the records that follow.
    fn append_snapshot(&mut self) {
        self.last_snapshot = self.history.len();
        let payload = crate::durability::snapshot_payload(
            &self.history,
            &self.invocation_log,
            &self.coordinator,
            &self.agents,
        );
        self.wal_append(WalRecord::SnapshotMarker { payload });
    }

    fn dispatch(&mut self, pid: ProcessId) {
        self.retry_postponed_releases();
        if self.done.contains(&pid) {
            return;
        }
        if matches!(self.waiting.get(&pid), Some(Waiting::OnRelease)) {
            return;
        }
        let status = self.states[&pid].status();
        if status != ProcessStatus::Active {
            self.finalize(pid);
            return;
        }
        // 1. Pending compensation?
        if let Some(c) = self.states[&pid].next_compensation() {
            self.run_compensation(pid, c);
            return;
        }
        // 2. Next forward activity?
        if let Some(a) = self.states[&pid].next_activity() {
            self.run_activity(pid, a);
            return;
        }
        // 3. Path finished: commit.
        if self.states[&pid].can_commit() {
            self.try_commit(pid);
        }
    }

    fn gid(pid: ProcessId, a: ActivityId) -> GlobalActivityId {
        GlobalActivityId::new(pid, a)
    }

    fn run_compensation(&mut self, pid: ProcessId, a: ActivityId) {
        let gid = Self::gid(pid, a);
        // Lemma 2 / Example 8: conflicting operations executed after the
        // compensated one must vanish first (or their owners cascade).
        match self.policy.compensation_gate(gid) {
            txproc_core::protocol::CompletionGate::Ready => {}
            txproc_core::protocol::CompletionGate::WaitFor(wait_for) => {
                if self.tracing() {
                    self.trace(TraceEvent::CompletionBlocked { pid, wait_for });
                }
                let at = self.now.after(BUSY_BACKOFF);
                self.schedule_dispatch(pid, at);
                return;
            }
            txproc_core::protocol::CompletionGate::Cascade(victims) => {
                for v in victims {
                    self.begin_abort(v, true, AbortReason::Cascade);
                }
                let at = self.now.after(BUSY_BACKOFF);
                self.schedule_dispatch(pid, at);
                return;
            }
        }
        if !self.certified_traced(txproc_core::schedule::Event::Compensate(gid)) {
            // Another process's completion step must come first (Lemma 2/3
            // ordering); retry after it progressed, escalating if stuck.
            self.cert_failure_backoff(pid);
            return;
        }
        self.cert_failures.remove(&pid);
        let Some(&(sid, invocation)) = self.invocations.get(&gid) else {
            panic!("compensating an unknown invocation {gid}");
        };
        let agent = self.agents.get_mut(&sid).expect("agent exists");
        let t0 = self.tele.phase_start();
        let outcome = agent.compensate(invocation).expect("subsystem up");
        self.tele.phase_end(Phase::Compensation, t0);
        match outcome {
            InvokeOutcome::Committed { .. } => {
                if self.tracing() {
                    let service = self.workload.spec.process(pid).expect("known").service(a);
                    self.trace(TraceEvent::CompensationStarted { gid, service });
                }
                self.wal_event(txproc_core::schedule::Event::Compensate(gid));
                self.history.compensate(gid);
                self.policy.record_compensated(gid);
                self.states
                    .get_mut(&pid)
                    .expect("state")
                    .apply_compensation(a)
                    .expect("compensation matches plan");
                self.metrics.compensations += 1;
                let d = self.duration_of(gid);
                let at = self.now.after(d);
                self.schedule_dispatch(pid, at);
            }
            InvokeOutcome::Busy { .. } => {
                let at = self.now.after(BUSY_BACKOFF);
                self.schedule_dispatch(pid, at);
            }
            other => panic!("unexpected compensation outcome {other:?}"),
        }
    }

    fn run_activity(&mut self, pid: ProcessId, a: ActivityId) {
        let gid = Self::gid(pid, a);
        let process = self.workload.spec.process(pid).expect("known");
        let svc = process.service(a);
        let in_completion = self.states[&pid].abort_in_progress();
        let admission = if in_completion {
            // Completion activities are mandated by recovery; Definition 8
            // orders them after everything already executed. Lemma 3 /
            // §3.5: conflicting live operations must be compensated first.
            match self.policy.forward_gate(pid, svc) {
                txproc_core::protocol::CompletionGate::Ready
                    if self.forward_order_blocked(pid, svc) =>
                {
                    let at = self.now.after(BUSY_BACKOFF);
                    self.schedule_dispatch(pid, at);
                    return;
                }
                txproc_core::protocol::CompletionGate::Ready => Admission::Allow,
                txproc_core::protocol::CompletionGate::WaitFor(wait_for) => {
                    if self.tracing() {
                        self.trace(TraceEvent::CompletionBlocked { pid, wait_for });
                    }
                    let at = self.now.after(BUSY_BACKOFF);
                    self.schedule_dispatch(pid, at);
                    return;
                }
                txproc_core::protocol::CompletionGate::Cascade(victims) => {
                    for v in victims {
                        self.begin_abort(v, true, AbortReason::Cascade);
                    }
                    let at = self.now.after(BUSY_BACKOFF);
                    self.schedule_dispatch(pid, at);
                    return;
                }
            }
        } else {
            let t0 = self.tele.phase_start();
            let admission = self.policy.request(pid, gid, svc);
            self.tele.phase_end(Phase::Policy, t0);
            admission
        };
        match admission {
            Admission::Allow => self.execute_forward(pid, a, CommitMode::Immediate, Vec::new()),
            Admission::AllowDeferred { blockers } => {
                self.execute_forward(pid, a, CommitMode::Deferred, blockers)
            }
            Admission::Wait { blockers } => {
                self.metrics.waits += 1;
                if self.tracing() {
                    self.trace(TraceEvent::RequestBlocked {
                        gid,
                        service: svc,
                        blockers: blockers.clone(),
                    });
                }
                self.mark_blocked(pid);
                self.waiting.insert(pid, Waiting::OnProcesses(blockers));
            }
            Admission::Reject { conflicting } => {
                self.metrics.rejections += 1;
                if self.tracing() {
                    self.trace(TraceEvent::RequestRejected {
                        gid,
                        service: svc,
                        conflicting,
                    });
                }
                self.initiate_abort(pid, AbortReason::Rejected, Some(gid));
            }
        }
    }

    fn execute_forward(
        &mut self,
        pid: ProcessId,
        a: ActivityId,
        mode: CommitMode,
        blockers: Vec<ProcessId>,
    ) {
        if self.pending_release.contains_key(&pid) {
            // Already executed under deferred commit; awaiting release.
            self.mark_blocked(pid);
            self.waiting.insert(pid, Waiting::OnRelease);
            return;
        }
        let gid = Self::gid(pid, a);
        let process = self.workload.spec.process(pid).expect("known");
        let svc = process.service(a);
        let termination = self.workload.spec.catalog.termination(svc);
        let site = self
            .workload
            .deployment
            .site(svc)
            .expect("deployed service")
            .clone();
        let d = site.duration;

        // Failure injection (Definitions 3 and 4). A crash-storm overrides
        // the base rate on its subsystems while the virtual clock is inside
        // the storm window.
        let mut p_fail = self.workload.config.failure_probability;
        if let Some(storm) = &self.workload.config.storm {
            let in_window = self.now.0 >= storm.window.0 && self.now.0 < storm.window.1;
            if in_window && site.subsystem.0 < storm.subsystems {
                p_fail = storm.failure_probability;
            }
        }
        let inject =
            self.cfg.inject_failures && p_fail > 0.0 && self.rng.gen_bool(p_fail.clamp(0.0, 1.0));
        if inject {
            match termination {
                Termination::Retriable => {
                    // Transient abort: bounded, then guaranteed success.
                    let left = self
                        .retries_left
                        .entry(gid)
                        .or_insert(MAX_TRANSIENT_RETRIES);
                    if *left > 0 {
                        *left -= 1;
                        let agent = self.agents.get_mut(&site.subsystem).expect("agent");
                        let _ = agent.invoke(svc, &site.program, CommitMode::Immediate, true);
                        self.metrics.retries += 1;
                        let at = self.now.after(d);
                        self.schedule_dispatch(pid, at);
                        return;
                    }
                    // Retry budget exhausted: fall through to success
                    // (retriable activities never fail for good).
                }
                Termination::Pivot | Termination::Compensatable => {
                    let agent = self.agents.get_mut(&site.subsystem).expect("agent");
                    let _ = agent.invoke(svc, &site.program, CommitMode::Immediate, true);
                    self.handle_definitive_failure(pid, a);
                    return;
                }
            }
        }

        // §3.5 certification: the extended prefix's completion must reduce.
        // (Deferred executions emit their history event at release time and
        // are certified there.)
        if mode == CommitMode::Immediate
            && !self.certified_traced(txproc_core::schedule::Event::Execute(gid))
        {
            self.cert_failure_backoff(pid);
            return;
        }
        self.cert_failures.remove(&pid);
        let agent = self.agents.get_mut(&site.subsystem).expect("agent");
        match agent
            .invoke(svc, &site.program, mode, false)
            .expect("subsystem up")
        {
            InvokeOutcome::Committed { invocation, .. } => {
                // One atomic record covers both the agent commit and the
                // history event — no log prefix separates them.
                self.wal_append(WalRecord::Invocation {
                    gid,
                    subsystem: site.subsystem.0,
                    invocation: invocation.0,
                    prepared: false,
                });
                self.invocations.insert(gid, (site.subsystem, invocation));
                self.invocation_log.push(InvocationLogEntry {
                    gid,
                    subsystem: site.subsystem,
                    invocation,
                    prepared: false,
                });
                self.history.execute(gid);
                let edges_added = self.policy.record_executed(gid, false);
                if self.tracing() {
                    self.trace(TraceEvent::RequestAdmitted {
                        gid,
                        service: svc,
                        deferred: false,
                        blockers,
                        edges_added,
                    });
                }
                self.states
                    .get_mut(&pid)
                    .expect("state")
                    .apply_commit(a)
                    .expect("activity is the frontier");
                self.metrics.activities += 1;
                let at = self.now.after(d);
                self.schedule_dispatch(pid, at);
            }
            InvokeOutcome::Prepared { invocation, .. } => {
                self.wal_append(WalRecord::Invocation {
                    gid,
                    subsystem: site.subsystem.0,
                    invocation: invocation.0,
                    prepared: true,
                });
                self.invocations.insert(gid, (site.subsystem, invocation));
                self.invocation_log.push(InvocationLogEntry {
                    gid,
                    subsystem: site.subsystem,
                    invocation,
                    prepared: true,
                });
                let edges_added = self.policy.record_executed(gid, true);
                if self.tracing() {
                    self.trace(TraceEvent::RequestAdmitted {
                        gid,
                        service: svc,
                        deferred: true,
                        blockers: blockers.clone(),
                        edges_added,
                    });
                    self.trace(TraceEvent::CommitDeferred { gid, blockers });
                }
                self.pending_release.insert(
                    pid,
                    PendingRelease {
                        gid,
                        activity: a,
                        subsystem: site.subsystem,
                        invocation,
                    },
                );
                self.metrics.deferred_commits += 1;
                if self.tele.enabled() {
                    self.prepared_at.insert(pid, Instant::now());
                }
                self.mark_blocked(pid);
                self.waiting.insert(pid, Waiting::OnRelease);
            }
            InvokeOutcome::Busy { .. } => {
                let at = self.now.after(BUSY_BACKOFF);
                self.schedule_dispatch(pid, at);
            }
            InvokeOutcome::Aborted => unreachable!("no injection requested"),
        }
    }

    /// Definition 8.3(f): when several processes abort concurrently, their
    /// conflicting completion activities must be consistently ordered. A
    /// forward-recovery step is blocked while an *earlier-initiated* abort
    /// still has conflicting completion work pending.
    ///
    /// Only used in uncertified mode: certified runs derive the completion
    /// order from the certifier itself (whose mandatory-rank choice is
    /// authoritative and may differ from abort-initiation order).
    fn forward_order_blocked(&self, pid: ProcessId, svc: txproc_core::ids::ServiceId) -> bool {
        if self.certify {
            return false;
        }
        let Some(&my_seq) = self.abort_seq.get(&pid) else {
            return false;
        };
        let oracle = self.workload.spec.oracle();
        let base = self.workload.spec.catalog.base(svc);
        for (&q, &seq) in &self.abort_seq {
            if q == pid || seq >= my_seq || self.done.contains(&q) {
                continue;
            }
            let state = &self.states[&q];
            if !state.abort_in_progress() {
                continue;
            }
            let process = self.workload.spec.process(q).expect("known");
            let completion = state.completion();
            let remaining = completion
                .compensations
                .iter()
                .chain(completion.forward.iter());
            for &a in remaining {
                let s = self.workload.spec.catalog.base(process.service(a));
                if oracle.conflict(s, base) {
                    return true;
                }
            }
        }
        false
    }

    fn handle_definitive_failure(&mut self, pid: ProcessId, a: ActivityId) {
        let gid = Self::gid(pid, a);
        if self.tracing() {
            let service = self.workload.spec.process(pid).expect("known").service(a);
            self.trace(TraceEvent::ActivityFailed { gid, service });
        }
        self.wal_event(txproc_core::schedule::Event::Fail(gid));
        self.history.fail(gid);
        let outcome = self
            .states
            .get_mut(&pid)
            .expect("state")
            .apply_failure(a)
            .expect("failable activity at frontier");
        match outcome {
            FailureOutcome::ProcessAbort { .. } => {
                // The state machine entered its completion directly; record
                // the abort initiation for the trace and the breakdown.
                self.count_abort_reason(AbortReason::Failure);
                self.trace(TraceEvent::AbortStarted {
                    pid,
                    reason: AbortReason::Failure,
                });
                let d = self.duration_of(gid);
                let at = self.now.after(d);
                self.schedule_dispatch(pid, at);
            }
            FailureOutcome::Alternative { .. } => {
                let d = self.duration_of(gid);
                let at = self.now.after(d);
                self.schedule_dispatch(pid, at);
            }
            FailureOutcome::Stuck => {
                panic!("workload processes have guaranteed termination; {gid} got stuck")
            }
        }
    }

    fn try_commit(&mut self, pid: ProcessId) {
        let t0 = self.tele.phase_start();
        let verdict = self.policy.can_commit(pid);
        self.tele.phase_end(Phase::Policy, t0);
        match verdict {
            Ok(()) if !self.certified_traced(txproc_core::schedule::Event::Commit(pid)) => {
                self.cert_failure_backoff(pid);
            }
            Ok(()) => {
                self.states
                    .get_mut(&pid)
                    .expect("state")
                    .apply_process_commit()
                    .expect("path finished");
                self.wal_event(txproc_core::schedule::Event::Commit(pid));
                self.history.commit(pid);
                self.finalize(pid);
            }
            Err(blockers) => {
                self.metrics.waits += 1;
                if self.tracing() {
                    self.trace(TraceEvent::CommitBlocked {
                        pid,
                        wait_for: blockers.clone(),
                    });
                }
                self.mark_blocked(pid);
                self.waiting.insert(pid, Waiting::OnProcesses(blockers));
            }
        }
    }

    /// Records termination of a process, releases dependents, wakes waiters.
    fn finalize(&mut self, pid: ProcessId) {
        if self.done.contains(&pid) {
            return;
        }
        self.done.insert(pid);
        self.mark_unblocked(pid);
        let status = self.states[&pid].status();
        let released = match status {
            ProcessStatus::Committed => {
                self.metrics.committed += 1;
                let latency = self.now.0.saturating_sub(self.arrivals[&pid]);
                self.metrics.latencies.push(latency);
                self.metrics.latency_by_pid.insert(pid.0, latency);
                self.trace(TraceEvent::ProcessCommitted { pid });
                self.policy.on_commit(pid)
            }
            ProcessStatus::Aborted => {
                self.metrics.aborted += 1;
                let latency = self.now.0.saturating_sub(self.arrivals[&pid]);
                self.metrics.latencies.push(latency);
                self.metrics.latency_by_pid.insert(pid.0, latency);
                self.trace(TraceEvent::ProcessAborted { pid });
                self.policy.on_abort(pid)
            }
            ProcessStatus::Active => unreachable!("finalize on active process"),
        };
        self.release_deferred(released);
        self.wake_waiters();
    }

    /// Releases deferred commits atomically via 2PC. Releases whose history
    /// event does not certify yet are postponed and retried on progress.
    ///
    /// With `cfg.epoch > 0`, releases arriving in one call are
    /// group-committed: up to `epoch` participants share a single
    /// prepare→decide round ([`Coordinator::commit_group`] logs one
    /// decision record for the whole group). The group decision runs after
    /// its members' history events are emitted — sound, because phase 2
    /// releases every prepared participant unconditionally, and invisible
    /// to history/metrics, because nothing between emit and decision reads
    /// agent state.
    fn release_deferred(&mut self, released: Vec<(ProcessId, Vec<GlobalActivityId>)>) {
        debug_assert!(self.epoch_group.is_empty());
        for (pj, gids) in released {
            if !self.pending_release.contains_key(&pj) {
                continue;
            }
            let gid = self.pending_release[&pj].gid;
            if !self.certified_traced(txproc_core::schedule::Event::Execute(gid)) {
                self.postponed_releases
                    .push((pj, gids, self.history.events().len()));
                continue;
            }
            let pending = self.pending_release.remove(&pj).expect("checked");
            if let Some(t0) = self.prepared_at.remove(&pj) {
                self.tele
                    .phase_ns(Phase::TwoPc, t0.elapsed().as_nanos() as u64);
            }
            debug_assert!(gids.contains(&pending.gid));
            let participant = Participant {
                subsystem: pending.subsystem,
                invocation: pending.invocation,
            };
            if self.cfg.epoch == 0 {
                if self.wal.is_some() {
                    // Decision before phase 2, DecisionApplied after: a log
                    // truncated between the two leaves the group in doubt
                    // and recovery finishes it from the decision record.
                    self.wal_append(WalRecord::Decision {
                        group: self.coordinator.next_group_id(),
                        commit: true,
                        participants: vec![(participant.subsystem.0, participant.invocation.0)],
                    });
                }
                let group = self
                    .coordinator
                    .commit_group(&mut self.agents, vec![participant], false)
                    .expect("participants prepared");
                if self.wal.is_some() {
                    self.wal_append(WalRecord::DecisionApplied { group });
                }
            } else {
                self.epoch_group.push(participant);
                if self.epoch_group.len() >= self.cfg.epoch {
                    self.flush_release_group();
                }
            }
            self.wal_event(txproc_core::schedule::Event::Execute(pending.gid));
            self.history.execute(pending.gid);
            self.policy.record_deferred_released(pending.gid);
            self.trace(TraceEvent::CommitReleased { gid: pending.gid });
            self.states
                .get_mut(&pj)
                .expect("state")
                .apply_commit(pending.activity)
                .expect("deferred activity was the frontier");
            self.metrics.activities += 1;
            self.mark_unblocked(pj);
            self.waiting.insert(pj, Waiting::No);
            let at = self.now;
            self.schedule_dispatch(pj, at);
        }
        self.flush_release_group();
    }

    /// Commits the accumulated release group in one 2PC round (no-op while
    /// empty, so per-event mode never reaches the coordinator from here).
    fn flush_release_group(&mut self) {
        if self.epoch_group.is_empty() {
            return;
        }
        let participants = std::mem::take(&mut self.epoch_group);
        if self.wal.is_some() {
            self.wal_append(WalRecord::Decision {
                group: self.coordinator.next_group_id(),
                commit: true,
                participants: participants
                    .iter()
                    .map(|p| (p.subsystem.0, p.invocation.0))
                    .collect(),
            });
        }
        let group = self
            .coordinator
            .commit_group(&mut self.agents, participants, false)
            .expect("participants prepared");
        if self.wal.is_some() {
            self.wal_append(WalRecord::DecisionApplied { group });
        }
    }

    /// Retries releases previously postponed by certification — but only
    /// those whose failure predates the current history: certification is a
    /// pure function of the history, so re-asking without new events is a
    /// guaranteed-failed busy-retry.
    fn retry_postponed_releases(&mut self) {
        if self.postponed_releases.is_empty() {
            return;
        }
        let hist_len = self.history.events().len();
        let (retry, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.postponed_releases)
            .into_iter()
            .partition(|&(_, _, stamp)| stamp < hist_len);
        self.postponed_releases = keep;
        if !retry.is_empty() {
            self.release_deferred(retry.into_iter().map(|(pj, gids, _)| (pj, gids)).collect());
        }
    }

    /// Escalation for repeated certification failures: back off, then abort
    /// the process (always legal before its commit). If the *completion* of
    /// an already-aborting process is what stays blocked, the blockage can
    /// only come from other active processes' hypothetical completions
    /// (§3.5's "new conflicts"): group-abort them — a full group abort
    /// always reduces, so their real completions unblock ours.
    fn cert_failure_backoff(&mut self, pid: ProcessId) {
        // Conflict pressure: certification just refused an event, so the
        // run is about to stall-and-retry. Close the epoch early — the
        // decision trace of the refusal should reach the sink now, not
        // after the backoff resolves.
        if self.cfg.epoch > 0 {
            self.close_epoch();
        }
        let count = self.cert_failures.entry(pid).or_insert(0);
        *count += 1;
        if *count > 50 {
            self.cert_failures.remove(&pid);
            if self.states[&pid].abort_in_progress() {
                let others: Vec<ProcessId> = self
                    .live_processes()
                    .into_iter()
                    .filter(|&q| q != pid && !self.states[&q].abort_in_progress())
                    .collect();
                if self.tracing() && !others.is_empty() {
                    self.trace(TraceEvent::GroupAbort {
                        initiator: Some(pid),
                        victims: others.iter().rev().copied().collect(),
                        trigger: None,
                    });
                }
                for q in others.into_iter().rev() {
                    self.begin_abort(q, true, AbortReason::Cascade);
                }
            } else {
                self.metrics.rejections += 1;
                self.initiate_abort(pid, AbortReason::CertStuck, None);
                return;
            }
        }
        let at = self.now.after(BUSY_BACKOFF);
        self.schedule_dispatch(pid, at);
    }

    /// Wakes every process waiting on terminated processes.
    fn wake_waiters(&mut self) {
        let to_wake: Vec<ProcessId> = self
            .waiting
            .iter()
            .filter(|(pid, w)| {
                !self.done.contains(pid)
                    && matches!(w, Waiting::OnProcesses(blockers)
                        if blockers.iter().all(|b| self.done.contains(b)))
            })
            .map(|(&pid, _)| pid)
            .collect();
        for pid in to_wake {
            self.mark_unblocked(pid);
            self.waiting.insert(pid, Waiting::No);
            let at = self.now;
            self.schedule_dispatch(pid, at);
        }
    }

    /// Aborts a process (and its cascade victims), per Lemma 2/3 ordering:
    /// victims — dependents later in the serialization — run their
    /// completions first. `reason` is the initiator's first cause; `trigger`
    /// the operation whose rejection/failure set it off (when known).
    fn initiate_abort(
        &mut self,
        pid: ProcessId,
        reason: AbortReason,
        trigger: Option<GlobalActivityId>,
    ) {
        if self.done.contains(&pid) || self.states[&pid].abort_in_progress() {
            return;
        }
        let completion = self.states[&pid].completion();
        let comp_gids: Vec<GlobalActivityId> = completion
            .compensations
            .iter()
            .map(|&a| Self::gid(pid, a))
            .collect();
        let process = self.workload.spec.process(pid).expect("known");
        let fwd_services: Vec<_> = completion
            .forward
            .iter()
            .map(|&a| process.service(a))
            .collect();
        let victims = self.policy.plan_abort(pid, &comp_gids, &fwd_services);
        if self.tracing() && !victims.is_empty() {
            self.trace(TraceEvent::GroupAbort {
                initiator: Some(pid),
                victims: victims.clone(),
                trigger,
            });
        }
        for v in victims {
            self.begin_abort(v, true, AbortReason::Cascade);
        }
        self.begin_abort(pid, false, reason);
    }

    fn begin_abort(&mut self, pid: ProcessId, cascade: bool, reason: AbortReason) {
        if self.done.contains(&pid)
            || !self.states[&pid].is_active()
            || self.states[&pid].abort_in_progress()
        {
            return;
        }
        // Abort a prepared (deferred) invocation first: it vanishes
        // atomically, leaving the process backward-recoverable.
        if let Some(pending) = self.pending_release.remove(&pid) {
            if let Some(t0) = self.prepared_at.remove(&pid) {
                self.tele
                    .phase_ns(Phase::TwoPc, t0.elapsed().as_nanos() as u64);
            }
            self.wal_append(WalRecord::PreparedAborted {
                subsystem: pending.subsystem.0,
                invocation: pending.invocation.0,
            });
            let agent = self.agents.get_mut(&pending.subsystem).expect("agent");
            agent
                .abort_prepared(pending.invocation)
                .expect("prepared invocation");
            self.invocations.remove(&pending.gid);
            self.policy.record_prepared_aborted(pending.gid);
        }
        if cascade {
            self.metrics.cascaded += 1;
        }
        self.count_abort_reason(reason);
        self.trace(TraceEvent::AbortStarted { pid, reason });
        let seq = self.next_abort_seq;
        self.next_abort_seq += 1;
        self.abort_seq.insert(pid, seq);
        self.policy.on_abort_begin(pid);
        self.wal_event(txproc_core::schedule::Event::Abort(pid));
        self.history.abort(pid);
        self.states
            .get_mut(&pid)
            .expect("state")
            .apply_process_abort()
            .expect("active process");
        self.mark_unblocked(pid);
        self.waiting.insert(pid, Waiting::No);
        let at = self.now;
        self.schedule_dispatch(pid, at);
    }

    /// Requests an abort of a process from outside (tests, crash recovery).
    pub fn abort_process(&mut self, pid: ProcessId) {
        self.initiate_abort(pid, AbortReason::External, None);
    }

    /// Evaluates (without side effects) why a process's next step is
    /// blocked: gate verdicts and certification of the candidate event.
    pub fn probe(&self, pid: ProcessId) -> String {
        let st = &self.states[&pid];
        if let Some(c) = st.next_compensation() {
            let gid = Self::gid(pid, c);
            return format!(
                "comp {gid}: gate={:?} cert={}",
                self.policy.compensation_gate(gid),
                self.certified_ok(txproc_core::schedule::Event::Compensate(gid))
            );
        }
        if let Some(a) = st.next_activity() {
            let gid = Self::gid(pid, a);
            let svc = self.workload.spec.process(pid).unwrap().service(a);
            return format!(
                "act {gid}: fwd_gate={:?} order_blocked={} cert={}",
                self.policy.forward_gate(pid, svc),
                self.forward_order_blocked(pid, svc),
                self.certified_ok(txproc_core::schedule::Event::Execute(gid))
            );
        }
        "no step".into()
    }

    /// Human-readable snapshot of every live process's scheduling state
    /// (stall diagnostics).
    pub fn diagnostics(&self) -> String {
        let mut out = String::new();
        for pid in self.live_processes() {
            let st = &self.states[&pid];
            out.push_str(&format!(
                "{pid}: status={:?} aborting={} waiting={:?} next_comp={:?} next_act={:?} can_commit={} pending_release={}\n",
                st.status(),
                st.abort_in_progress(),
                self.waiting.get(&pid),
                st.next_compensation(),
                st.next_activity(),
                st.can_commit(),
                self.pending_release.contains_key(&pid),
            ));
        }
        out
    }

    /// Simulates a scheduler crash: volatile state (policy, process states,
    /// event queue) is lost; the durable pieces — emitted history,
    /// invocation log, 2PC decision log, and the subsystems themselves —
    /// survive as a [`CrashImage`](crate::recovery::CrashImage).
    pub fn crash(self) -> crate::recovery::CrashImage {
        crate::recovery::CrashImage {
            history: self.history,
            agents: self.agents,
            coordinator: self.coordinator,
            invocation_log: self.invocation_log,
        }
    }
}

impl Engine<'_> {
    /// Policy-internal debug dump (diagnostics only).
    pub fn policy_debug(&self) -> String {
        self.policy.debug_state()
    }
}

/// Convenience: run a workload under a configuration.
pub fn run(workload: &Workload, cfg: RunConfig) -> RunResult {
    Engine::new(workload, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txproc_sim::workload::{generate, WorkloadConfig};

    fn small_workload(seed: u64, conflict_density: f64, failure: f64) -> Workload {
        generate(&WorkloadConfig {
            seed,
            processes: 6,
            conflict_density,
            failure_probability: failure,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn all_processes_terminate_under_pred() {
        let w = small_workload(1, 0.4, 0.15);
        let result = run(&w, RunConfig::default());
        assert!(result.stalled.is_empty(), "stalled: {:?}", result.stalled);
        assert_eq!(result.metrics.terminated(), 6);
        assert!(result.metrics.activities > 0);
    }

    #[test]
    fn pred_histories_are_pred() {
        for seed in 0..8 {
            let w = small_workload(seed, 0.5, 0.2);
            let result = run(
                &w,
                RunConfig {
                    seed,
                    check_pred: true,
                    ..RunConfig::default()
                },
            );
            assert!(result.stalled.is_empty(), "seed {seed}: stalled");
            assert_eq!(
                result.pred_ok,
                Some(true),
                "seed {seed}: history not PRED:\n{}",
                txproc_core::schedule::render(&result.history)
            );
        }
    }

    #[test]
    fn incremental_certifier_matches_batch_histories() {
        // The virtual-time engine is deterministic, so two runs diverge only
        // if the certifiers ever answer differently. Identical histories are
        // therefore an end-to-end differential check of the incremental
        // certifier against the batch reference.
        for policy in [PolicyKind::Pred, PolicyKind::PredWait] {
            for seed in 0..8 {
                let w = small_workload(seed, 0.5, 0.2);
                let batch = run(
                    &w,
                    RunConfig {
                        policy,
                        seed,
                        check_pred: true,
                        certifier: crate::policy::CertifierKind::Batch,
                        ..RunConfig::default()
                    },
                );
                let incr = run(
                    &w,
                    RunConfig {
                        policy,
                        seed,
                        check_pred: true,
                        certifier: crate::policy::CertifierKind::Incremental,
                        ..RunConfig::default()
                    },
                );
                assert_eq!(
                    txproc_core::schedule::render(&batch.history),
                    txproc_core::schedule::render(&incr.history),
                    "{} seed {seed}: certifiers diverged",
                    policy.label()
                );
                assert!(incr.stalled.is_empty(), "{} seed {seed}", policy.label());
                assert_eq!(incr.pred_ok, Some(true), "{} seed {seed}", policy.label());
            }
        }
    }

    #[test]
    fn serial_policy_is_pred_and_slower() {
        let w = small_workload(3, 0.5, 0.0);
        let pred = run(&w, RunConfig::default());
        let serial = run(
            &w,
            RunConfig {
                policy: PolicyKind::Serial,
                ..RunConfig::default()
            },
        );
        assert!(serial.stalled.is_empty());
        assert!(
            serial.metrics.makespan >= pred.metrics.makespan,
            "serial {} < pred {}",
            serial.metrics.makespan,
            pred.metrics.makespan
        );
    }

    #[test]
    fn conservative_policy_terminates() {
        let w = small_workload(4, 0.6, 0.1);
        let result = run(
            &w,
            RunConfig {
                policy: PolicyKind::Conservative,
                check_pred: true,
                ..RunConfig::default()
            },
        );
        assert!(result.stalled.is_empty());
        assert_eq!(result.pred_ok, Some(true));
    }

    #[test]
    fn unsafe_cc_violates_pred_under_failures() {
        // The headline claim: CC without recovery produces histories that
        // are not prefix-reducible once failures occur.
        let mut violations = 0;
        for seed in 0..20 {
            let w = small_workload(seed, 0.7, 0.3);
            let result = run(
                &w,
                RunConfig {
                    policy: PolicyKind::UnsafeCc,
                    seed,
                    check_pred: true,
                    ..RunConfig::default()
                },
            );
            if result.pred_ok == Some(false) {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "expected at least one PRED violation from the unsafe scheduler"
        );
    }

    #[test]
    fn no_failures_still_terminates_everything_and_stays_pred() {
        // Without failures the only aborts are scheduler-initiated
        // (serializability rejections); everything terminates and the
        // history stays PRED.
        let w = small_workload(5, 0.3, 0.0);
        let result = run(
            &w,
            RunConfig {
                inject_failures: false,
                check_pred: true,
                ..RunConfig::default()
            },
        );
        assert_eq!(result.metrics.terminated(), 6);
        assert_eq!(
            result.metrics.aborted,
            result.metrics.rejections + result.metrics.cascaded
        );
        assert_eq!(result.pred_ok, Some(true));
    }

    #[test]
    fn zero_hot_key_density_still_terminates_and_stays_pred() {
        // Even with no hot keys, processes can conflict by reusing the same
        // pooled service; everything must still terminate correctly.
        let w = small_workload(5, 0.0, 0.0);
        let result = run(
            &w,
            RunConfig {
                inject_failures: false,
                check_pred: true,
                ..RunConfig::default()
            },
        );
        assert_eq!(result.metrics.terminated(), 6);
        assert_eq!(result.pred_ok, Some(true));
    }

    #[test]
    fn deterministic_runs() {
        let w = small_workload(6, 0.5, 0.2);
        let r1 = run(&w, RunConfig::default());
        let r2 = run(&w, RunConfig::default());
        assert_eq!(r1.history, r2.history);
        assert_eq!(r1.metrics.makespan, r2.metrics.makespan);
    }

    #[test]
    fn arrival_gap_staggers_processes() {
        let w = small_workload(7, 0.0, 0.0);
        let r = run(
            &w,
            RunConfig {
                arrival_gap: 100,
                inject_failures: false,
                ..RunConfig::default()
            },
        );
        assert!(r.metrics.makespan >= 500, "makespan {}", r.metrics.makespan);
    }

    #[test]
    fn histories_replay_cleanly() {
        // Every emitted history must be a legal schedule (Definition 7.1).
        for seed in 0..5 {
            let w = small_workload(seed, 0.5, 0.25);
            let result = run(
                &w,
                RunConfig {
                    seed,
                    ..RunConfig::default()
                },
            );
            assert!(result.history.replay(&w.spec).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn external_abort_runs_completion() {
        let w = small_workload(9, 0.0, 0.0);
        let mut engine = Engine::new(
            &w,
            RunConfig {
                inject_failures: false,
                ..RunConfig::default()
            },
        );
        // Let the first few events run, then abort one process.
        engine.run_until_history(4);
        let victim = engine.live_processes()[0];
        engine.abort_process(victim);
        let result = engine.run();
        assert!(result.stalled.is_empty());
        assert!(result.metrics.aborted >= 1);
    }
}
