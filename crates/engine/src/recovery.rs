//! Scheduler crash recovery (§3.3): completing all active processes from the
//! durable logs.
//!
//! When the process scheduler crashes, its volatile state (policy graph,
//! process cursors, event queue) is gone. What survives is the emitted
//! history, the invocation log, the 2PC decision log, and the subsystems
//! themselves (holding committed state and in-doubt prepared transactions).
//! Recovery proceeds exactly as the completion construction of Definition 8
//! prescribes:
//!
//! 1. finish in-doubt 2PC groups from the coordinator's decision log,
//! 2. abort prepared invocations that were never decided,
//! 3. treat all still-active processes as aborted via a **group abort**
//!    appended to the history,
//! 4. execute each aborted process's completion — compensations in reverse
//!    order, then the retriable forward recovery path — with processes
//!    ordered reverse to the serialization order of the history, so the
//!    Lemma 2/3 orderings hold.
//!
//! The resulting extended history is exactly a completed process schedule;
//! the crash-recovery experiment (E16) verifies it reduces (RED).

use std::collections::BTreeMap;
use txproc_core::completion::complete;
use txproc_core::ids::{GlobalActivityId, ProcessId};
use txproc_core::schedule::{Event, OpKind, Schedule};
use txproc_core::serializability::process_graph_linear;
use txproc_core::spec::Spec;
use txproc_core::trace::{AbortReason, NoopSink, TraceEvent, TraceRecord, TraceSink};
use txproc_sim::workload::Workload;
use txproc_subsystem::agent::{Agent, CommitMode, InvokeOutcome};
use txproc_subsystem::error::SubsystemError;
use txproc_subsystem::subsystem::SubsystemId;
use txproc_subsystem::tpc::{Coordinator, Decision};

pub use crate::engine::InvocationLogEntry;

/// The durable state surviving a scheduler crash.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// The emitted history (the scheduler's durable log).
    pub history: Schedule,
    /// The subsystems (independent systems; they did not crash).
    pub agents: BTreeMap<SubsystemId, Agent>,
    /// The 2PC coordinator's decision log.
    pub coordinator: Coordinator,
    /// The durable invocation log.
    pub invocation_log: Vec<InvocationLogEntry>,
}

/// Outcome of recovery.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The extended history (original + group abort + completions).
    pub history: Schedule,
    /// Processes completed through the group abort, in completion order.
    pub aborted: Vec<ProcessId>,
    /// Compensating activities executed during recovery.
    pub compensations: usize,
    /// Forward-recovery activities executed during recovery.
    pub forward: usize,
    /// 2PC groups finished from the decision log.
    pub resolved_groups: usize,
    /// Prepared invocations aborted because no decision was logged.
    pub aborted_prepared: usize,
    /// The durable state after recovery: the extended history plus the
    /// updated subsystems, decision log and invocation log. A crash right
    /// after recovery resumes from this image — recovering it again must be
    /// a no-op (idempotence, exercised by the tests).
    pub image: CrashImage,
}

/// Decision trace of a recovery run. Recovery has no virtual clock, so
/// records are stamped with `time == seq` (journal order).
struct Tracer<'s> {
    sink: Box<dyn TraceSink + 's>,
    seq: u64,
}

impl Tracer<'_> {
    fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    fn emit(&mut self, history_len: usize, event: TraceEvent) {
        if !self.sink.enabled() {
            return;
        }
        let rec = TraceRecord {
            seq: self.seq,
            time: self.seq,
            history_len,
            shard: None,
            worker: None,
            event,
        };
        self.seq += 1;
        self.sink.record(rec);
    }
}

/// Where [`Recovery`] reads its durable state from.
#[derive(Debug)]
pub enum RecoverySource {
    /// A live crash image — the volatile-state path the tests and the
    /// `crash` CLI command use.
    Image(CrashImage),
    /// A WAL file on disk: salvage the clean prefix (torn tails are
    /// truncated), rebuild the crash image by replay, then recover.
    Wal(std::path::PathBuf),
    /// Raw WAL bytes (e.g. a [`txproc_core::wal::MemWal`] snapshot): the
    /// same salvage and rebuild as [`RecoverySource::Wal`].
    WalBytes(Vec<u8>),
}

/// What can go wrong between a durable log and a recovered history.
#[derive(Debug)]
pub enum RecoveryError {
    /// The WAL file could not be read.
    Io(std::io::Error),
    /// The salvaged log does not replay into a consistent crash image.
    Rebuild(crate::durability::RebuildError),
    /// A subsystem rejected a recovery action.
    Subsystem(SubsystemError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "reading WAL: {e}"),
            RecoveryError::Rebuild(e) => write!(f, "rebuilding crash image: {e}"),
            RecoveryError::Subsystem(e) => write!(f, "recovering: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// The unified recovery entry point: image-based and WAL-based recovery
/// share this one call site and one traced path.
///
/// ```ignore
/// let report = Recovery::from(RecoverySource::Wal(path)).run(&workload)?;
/// let report = Recovery::from(RecoverySource::Image(image))
///     .sink(Box::new(journal.clone()))
///     .run(&workload)?;
/// ```
pub struct Recovery<'s> {
    source: RecoverySource,
    sink: Box<dyn TraceSink + 's>,
}

impl<'s> Recovery<'s> {
    /// Recovery over a durable source, with the no-op trace sink.
    #[allow(clippy::should_implement_trait)] // mirrors `RunBuilder::new`; not a `From` impl
    pub fn from(source: RecoverySource) -> Self {
        Self {
            source,
            sink: Box::new(NoopSink),
        }
    }

    /// Delivers the recovery decision trace into `sink`: the
    /// recovery-initiated group abort (`initiator: None` — the scheduler
    /// itself is the initiator), each victim's `AbortStarted` (reason
    /// `External`), every completion operation, and the final
    /// `ProcessAborted` terminations.
    pub fn sink(mut self, sink: Box<dyn TraceSink + 's>) -> Self {
        self.sink = sink;
        self
    }

    /// Resolves the source to a crash image (salvaging and replaying the
    /// WAL when needed) and runs recovery over it.
    pub fn run(self, workload: &Workload) -> Result<RecoveryReport, RecoveryError> {
        let image = match self.source {
            RecoverySource::Image(image) => image,
            RecoverySource::Wal(path) => {
                let (records, _clean) =
                    txproc_core::wal::read_wal_file(&path).map_err(RecoveryError::Io)?;
                crate::durability::rebuild_image(workload, &records)
                    .map_err(RecoveryError::Rebuild)?
            }
            RecoverySource::WalBytes(bytes) => {
                let (records, _clean) = txproc_core::wal::read_records(&bytes);
                crate::durability::rebuild_image(workload, &records)
                    .map_err(RecoveryError::Rebuild)?
            }
        };
        recover_impl(workload, image, self.sink).map_err(RecoveryError::Subsystem)
    }
}

/// Runs crash recovery over a crash image. Shorthand for
/// `Recovery::from(RecoverySource::Image(image)).run(workload)` with the
/// original `SubsystemError` error type.
pub fn recover(workload: &Workload, image: CrashImage) -> Result<RecoveryReport, SubsystemError> {
    recover_impl(workload, image, Box::new(NoopSink))
}

/// Same as [`recover`], delivering structured [`TraceEvent`]s to `sink`.
#[deprecated(
    since = "0.10.0",
    note = "use `Recovery::from(RecoverySource::Image(image)).sink(sink).run(workload)`"
)]
pub fn recover_traced<'s>(
    workload: &Workload,
    image: CrashImage,
    sink: Box<dyn TraceSink + 's>,
) -> Result<RecoveryReport, SubsystemError> {
    recover_impl(workload, image, sink)
}

/// The one recovery implementation behind [`recover`], [`Recovery`], and
/// the deprecated `recover_traced` shim.
pub(crate) fn recover_impl<'s>(
    workload: &Workload,
    mut image: CrashImage,
    sink: Box<dyn TraceSink + 's>,
) -> Result<RecoveryReport, SubsystemError> {
    let mut tracer = Tracer { sink, seq: 0 };
    let spec = &workload.spec;

    // 1. Finish in-doubt 2PC groups from the decision log.
    let resolved = image.coordinator.resolve_in_doubt(&mut image.agents)?;
    let resolved_groups = resolved.len();
    // Committed releases missing their history event become visible. This
    // covers groups just resolved above *and* already-completed groups a
    // WAL truncation caught between phase 2 and the `Execute` append — an
    // applied decision whose history event never reached the log.
    let executed_gids: Vec<GlobalActivityId> = history_executed(&image.history);
    for record in image.coordinator.log() {
        if record.decision != Decision::Commit {
            continue;
        }
        for p in &record.participants {
            if let Some(entry) = image
                .invocation_log
                .iter()
                .find(|e| e.subsystem == p.subsystem && e.invocation == p.invocation)
            {
                if !executed_gids.contains(&entry.gid) {
                    image.history.execute(entry.gid);
                }
            }
        }
    }

    // 2. Abort prepared invocations that were never decided.
    let executed_gids: Vec<GlobalActivityId> = history_executed(&image.history);
    let mut aborted_prepared = 0;
    for entry in &image.invocation_log {
        if entry.prepared && !executed_gids.contains(&entry.gid) {
            let agent = image
                .agents
                .get_mut(&entry.subsystem)
                .expect("agent exists");
            // The invocation may already be resolved; ignore stale entries.
            if agent.abort_prepared(entry.invocation).is_ok() {
                aborted_prepared += 1;
            }
        }
    }

    // 3. Replay the history to rebuild process states; group-abort actives.
    let replay = image
        .history
        .replay(spec)
        .expect("durable history is a legal schedule");
    let mut actives: Vec<ProcessId> = replay
        .states
        .iter()
        .filter(|(_, st)| st.is_active())
        .map(|(&p, _)| p)
        .collect();
    // Reverse serialization order (dependents complete first — Lemma 2).
    let ranks = serialization_ranks(spec, &image.history);
    actives.sort_by_key(|p| std::cmp::Reverse((ranks.get(p).copied().unwrap_or(0), p.0)));

    let mut history = image.history.clone();
    if !actives.is_empty() {
        if tracer.enabled() {
            tracer.emit(
                history.len(),
                TraceEvent::GroupAbort {
                    initiator: None,
                    victims: actives.clone(),
                    trigger: None,
                },
            );
        }
        history.group_abort(actives.clone());
        if tracer.enabled() {
            for &pid in &actives {
                tracer.emit(
                    history.len(),
                    TraceEvent::AbortStarted {
                        pid,
                        reason: AbortReason::External,
                    },
                );
            }
        }
    }

    // 4. Execute completions in a single ≪̃-respecting interleaved order.
    //    Running each process's completion serially is NOT sound: a forward
    //    recovery activity of one process may then land between another
    //    process's base activity and its compensation, violating Lemma 3 and
    //    leaving the recovered history irreducible. The completion
    //    construction of Definition 8 already carries the correct partial
    //    order `≪̃`, so recovery executes one of its linearisations.
    let completed = complete(spec, &history).expect("group-aborted history has a completion");
    let mut states = history
        .replay(spec)
        .expect("group-aborted history is a legal schedule")
        .states;
    let mut compensations = 0;
    let mut forward = 0;
    let invocation_of: BTreeMap<
        GlobalActivityId,
        (SubsystemId, txproc_subsystem::agent::InvocationId),
    > = image
        .invocation_log
        .iter()
        .filter(|e| !e.prepared || executed_gids.contains(&e.gid))
        .map(|e| (e.gid, (e.subsystem, e.invocation)))
        .collect();
    let topo = completed
        .order
        .topological_order()
        .expect("≪̃ construction is acyclic");
    for idx in topo {
        if idx < completed.original_len {
            continue;
        }
        let op = &completed.ops[idx];
        let gid = op.gid;
        let (pid, a) = (gid.process, gid.activity);
        let state = states.get_mut(&pid).expect("completing state");
        match op.kind {
            OpKind::Compensation => {
                let &(sid, invocation) = invocation_of
                    .get(&gid)
                    .expect("compensatable activity was logged");
                let agent = image.agents.get_mut(&sid).expect("agent");
                match agent.compensate(invocation)? {
                    InvokeOutcome::Committed { .. } => {
                        if tracer.enabled() {
                            let service = spec.process(pid).expect("known").service(a);
                            tracer.emit(
                                history.len(),
                                TraceEvent::CompensationStarted { gid, service },
                            );
                        }
                        history.compensate(gid);
                        state.apply_compensation(a).expect("queued compensation");
                        compensations += 1;
                    }
                    other => panic!("compensation must succeed during recovery: {other:?}"),
                }
            }
            OpKind::Forward => {
                let process = spec.process(pid).expect("known process");
                let svc = process.service(a);
                let site = workload.deployment.site(svc).expect("deployed");
                let sid = site.subsystem;
                let program = site.program.clone();
                let agent = image.agents.get_mut(&sid).expect("agent");
                match agent.invoke(svc, &program, CommitMode::Immediate, false)? {
                    InvokeOutcome::Committed { .. } => {
                        history.execute(gid);
                        if tracer.enabled() {
                            tracer.emit(
                                history.len(),
                                TraceEvent::RequestAdmitted {
                                    gid,
                                    service: svc,
                                    deferred: false,
                                    blockers: Vec::new(),
                                    edges_added: Vec::new(),
                                },
                            );
                        }
                        state.apply_commit(a).expect("forward path");
                        forward += 1;
                    }
                    other => panic!("forward recovery must succeed: {other:?}"),
                }
            }
        }
    }
    for &pid in &actives {
        debug_assert!(
            states.get(&pid).is_some_and(|s| !s.is_active()),
            "completion terminates process {pid:?}"
        );
        if tracer.enabled() {
            tracer.emit(history.len(), TraceEvent::ProcessAborted { pid });
        }
    }

    Ok(RecoveryReport {
        image: CrashImage {
            history: history.clone(),
            agents: image.agents,
            coordinator: image.coordinator,
            invocation_log: image.invocation_log,
        },
        history,
        aborted: actives,
        compensations,
        forward,
        resolved_groups,
        aborted_prepared,
    })
}

fn history_executed(history: &Schedule) -> Vec<GlobalActivityId> {
    history
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Execute(g) => Some(*g),
            _ => None,
        })
        .collect()
}

fn serialization_ranks(spec: &Spec, history: &Schedule) -> BTreeMap<ProcessId, usize> {
    let ops = history.ops(spec).expect("legal history");
    let g = process_graph_linear(spec, &ops);
    match g.topological_order() {
        Some(order) => order.into_iter().enumerate().map(|(r, p)| (p, r)).collect(),
        None => BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RunConfig};
    use txproc_core::reduction::is_reducible;
    use txproc_sim::workload::{generate, WorkloadConfig};

    fn workload(seed: u64) -> Workload {
        generate(&WorkloadConfig {
            seed,
            processes: 6,
            conflict_density: 0.4,
            failure_probability: 0.1,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn recovery_after_midrun_crash_yields_reducible_history() {
        for crash_at in [1, 3, 6, 10, 15] {
            let w = workload(11);
            let mut engine = Engine::new(&w, RunConfig::default());
            engine.run_until_history(crash_at);
            let image = engine.crash();
            let report = recover(&w, image).expect("recovery succeeds");
            // The extended history must replay and reduce (RED).
            assert!(
                is_reducible(&w.spec, &report.history).unwrap(),
                "crash at {crash_at}: recovered history not reducible:\n{}",
                txproc_core::schedule::render(&report.history)
            );
            // Every process terminated.
            let replay = report.history.replay(&w.spec).unwrap();
            assert!(replay.active_processes().is_empty(), "crash at {crash_at}");
        }
    }

    #[test]
    fn recovery_of_finished_run_is_a_noop() {
        let w = workload(12);
        let mut engine = Engine::new(&w, RunConfig::default());
        while engine.tick() {}
        let image = engine.crash();
        let report = recover(&w, image).unwrap();
        assert!(report.aborted.is_empty());
        assert_eq!(report.compensations, 0);
        assert_eq!(report.forward, 0);
    }

    #[test]
    fn recovery_aborts_undecided_prepared_invocations() {
        // Find a crash point where some invocation is prepared (deferred).
        let mut exercised = false;
        'search: for seed in 0..64u64 {
            for crash_at in [4usize, 6, 8, 10, 12] {
                let w = workload(seed);
                let mut engine = Engine::new(
                    &w,
                    RunConfig {
                        seed,
                        ..RunConfig::default()
                    },
                );
                engine.run_until_history(crash_at);
                let deferred_now = engine.metrics().deferred_commits;
                let image = engine.crash();
                let report = recover(&w, image).unwrap();
                if deferred_now > 0 && report.aborted_prepared > 0 {
                    exercised = true;
                    break 'search;
                }
            }
        }
        assert!(exercised, "no crash point with a prepared invocation found");
    }

    #[test]
    fn recovery_is_idempotent() {
        // Crashing again immediately after recovery and recovering the
        // post-recovery image must change nothing: every process already
        // terminated, every in-doubt group is resolved, every undecided
        // prepared invocation is already aborted.
        for seed in [11u64, 14, 23] {
            for crash_at in [3usize, 7, 12] {
                let w = workload(seed);
                let mut engine = Engine::new(
                    &w,
                    RunConfig {
                        seed,
                        ..RunConfig::default()
                    },
                );
                engine.run_until_history(crash_at);
                let first = recover(&w, engine.crash()).expect("first recovery");
                let second = recover(&w, first.image.clone()).expect("second recovery");
                assert_eq!(
                    txproc_core::schedule::render(&second.history),
                    txproc_core::schedule::render(&first.history),
                    "seed {seed} crash {crash_at}: second recovery changed the history"
                );
                assert!(second.aborted.is_empty(), "seed {seed} crash {crash_at}");
                assert_eq!(second.compensations, 0, "seed {seed} crash {crash_at}");
                assert_eq!(second.forward, 0, "seed {seed} crash {crash_at}");
                assert_eq!(second.resolved_groups, 0, "seed {seed} crash {crash_at}");
                assert_eq!(second.aborted_prepared, 0, "seed {seed} crash {crash_at}");
            }
        }
    }

    #[test]
    fn recovered_histories_are_pred() {
        // Stronger than reducibility of the final completed schedule: the
        // whole extended history stays prefix-reducible, because recovery
        // executes the completion in a ≪̃-respecting order (Lemma 3).
        for seed in [11u64, 21, 31] {
            for crash_at in [2usize, 5, 9, 14] {
                let w = workload(seed);
                let mut engine = Engine::new(
                    &w,
                    RunConfig {
                        seed,
                        ..RunConfig::default()
                    },
                );
                engine.run_until_history(crash_at);
                let report = recover(&w, engine.crash()).expect("recovery succeeds");
                assert!(
                    txproc_core::pred::is_pred(&w.spec, &report.history).unwrap(),
                    "seed {seed} crash {crash_at}: recovered history not PRED:\n{}",
                    txproc_core::schedule::render(&report.history)
                );
            }
        }
    }

    #[test]
    fn recovery_is_deterministic() {
        let w = workload(13);
        let run_once = || {
            let mut engine = Engine::new(&w, RunConfig::default());
            engine.run_until_history(7);
            let report = recover(&w, engine.crash()).unwrap();
            txproc_core::schedule::render(&report.history)
        };
        assert_eq!(run_once(), run_once());
    }
}
