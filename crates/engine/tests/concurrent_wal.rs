//! Concurrent-driver durability: the ticket-stamped shard-event journal
//! reconstructs the exact merged history, and the unified recovery API
//! reads engine WALs from files and byte buffers interchangeably.

use txproc_core::pred::is_pred;
use txproc_core::recoverability::is_proc_rec;
use txproc_core::schedule::render;
use txproc_core::wal::{read_records, read_wal_file, DurabilityPolicy, FileWal, MemWal, WalWriter};
use txproc_engine::concurrent::{ConcurrentConfig, RuntimeKind};
use txproc_engine::durability::{rebuild_image, wal_history};
use txproc_engine::engine::{Engine, RunConfig};
use txproc_engine::recovery::{recover, Recovery, RecoverySource};
use txproc_engine::RunBuilder;
use txproc_sim::workload::{generate, Workload, WorkloadConfig};

fn workload(seed: u64) -> Workload {
    generate(&WorkloadConfig {
        seed,
        processes: 6,
        clusters: 2,
        conflict_density: 0.4,
        failure_probability: 0.1,
        ..WorkloadConfig::default()
    })
}

/// A concurrent run journaled through the builder leaves a WAL whose
/// ticket-sorted shard events replay to the exact merged history — even
/// with multiple workers racing to append — and that history passes the
/// same PRED / Proc-REC audits as the returned one.
#[test]
fn concurrent_wal_replays_to_the_merged_history() {
    for seed in 0..16u64 {
        for workers in [Some(1), Some(4)] {
            let w = workload(seed);
            let mem = MemWal::new();
            let writer = WalWriter::new(Box::new(mem.clone()), DurabilityPolicy::Buffered, seed);
            let cfg = ConcurrentConfig {
                seed,
                runtime: RuntimeKind::Events,
                workers,
                epoch: 4,
                ..ConcurrentConfig::default()
            };
            let result = RunBuilder::new(&w)
                .concurrent(cfg)
                .durability(writer, 0)
                .run()
                .into_concurrent();

            let (records, clean) = read_records(&mem.contents());
            assert_eq!(clean, mem.len(), "seed {seed}: finish() lands whole frames");
            let replayed = wal_history(&records);
            assert_eq!(
                render(&replayed),
                render(&result.history),
                "seed {seed} workers {workers:?}: WAL replay diverged from the run"
            );
            assert!(is_pred(&w.spec, &replayed).unwrap(), "seed {seed}: PRED");
            assert!(
                is_proc_rec(&w.spec, &replayed).unwrap(),
                "seed {seed}: Proc-REC"
            );
        }
    }
}

/// Journaling must not perturb the concurrent run itself: under the
/// deterministic single-worker envelope, WAL-on and WAL-off runs are
/// bit-identical.
#[test]
fn concurrent_wal_journaling_never_changes_the_run() {
    for seed in 0..16u64 {
        let w = workload(seed);
        let cfg = ConcurrentConfig {
            seed,
            runtime: RuntimeKind::Events,
            workers: Some(1),
            epoch: 4,
            ..ConcurrentConfig::default()
        };
        let plain = RunBuilder::new(&w)
            .concurrent(cfg.clone())
            .run()
            .into_concurrent();
        let mem = MemWal::new();
        let writer = WalWriter::new(Box::new(mem.clone()), DurabilityPolicy::Buffered, seed);
        let logged = RunBuilder::new(&w)
            .concurrent(cfg)
            .durability(writer, 0)
            .run()
            .into_concurrent();
        assert_eq!(
            plain.history.events(),
            logged.history.events(),
            "seed {seed}: journaling changed the history"
        );
        assert_eq!(plain.metrics.committed, logged.metrics.committed);
        assert_eq!(plain.metrics.aborted, logged.metrics.aborted);
    }
}

/// `RecoverySource::Wal` (file path) and `RecoverySource::WalBytes` agree
/// with recovering the image rebuilt by hand: one API, three sources, one
/// report.
#[test]
fn recovery_sources_agree_on_files_and_bytes() {
    let dir = std::env::temp_dir().join(format!("txproc-wal-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for seed in 0..8u64 {
        let w = workload(seed);
        let path = dir.join(format!("seed-{seed}.wal"));
        let file = FileWal::create(&path).expect("create wal file");
        let writer = WalWriter::new(Box::new(file), DurabilityPolicy::FsyncPerEpoch, seed);
        let cfg = RunConfig {
            seed,
            epoch: 4,
            ..RunConfig::default()
        };
        let mut engine = Engine::new(&w, cfg).with_wal(writer, 16);
        engine.run_until_history(7 + seed as usize);
        drop(engine.crash());

        let bytes = std::fs::read(&path).expect("read wal back");
        let (records, _) = read_wal_file(&path).expect("salvage wal");
        let by_hand = recover(&w, rebuild_image(&w, &records).expect("rebuild"))
            .expect("recover rebuilt image");
        let from_file = Recovery::from(RecoverySource::Wal(path.clone()))
            .run(&w)
            .expect("recover from file");
        let from_bytes = Recovery::from(RecoverySource::WalBytes(bytes))
            .run(&w)
            .expect("recover from bytes");

        for (name, report) in [("Wal(path)", &from_file), ("WalBytes", &from_bytes)] {
            assert_eq!(
                render(&by_hand.history),
                render(&report.history),
                "seed {seed}: {name} diverged"
            );
            assert_eq!(by_hand.aborted, report.aborted, "seed {seed}: {name}");
        }
        assert!(is_pred(&w.spec, &from_file.history).unwrap());
        assert!(is_proc_rec(&w.spec, &from_file.history).unwrap());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
