//! Differential oracle for the epoch path (ISSUE 9, satellite 1): an epoch
//! size of **1** must be bit-identical to the per-event path (`epoch = 0`)
//! on both drivers — same history, same metrics — because an epoch of one
//! *is* the per-event path: every batch boundary falls after exactly one
//! event, the plan cache replays what `certify` just planned, and the
//! group-commit rounds hold one participant each.
//!
//! The virtual-time engine is fully deterministic, so the oracle compares
//! complete [`Metrics`] values. The concurrent driver is pinned to the
//! events runtime with one worker and closed arrivals (the deterministic
//! configuration); its time-valued metrics are wall-clock, so the oracle
//! compares the history plus every deterministic counter.

use txproc_engine::concurrent::{run_concurrent, ConcurrentConfig, RuntimeKind, ShardMode};
use txproc_engine::engine::{run, RunConfig};
use txproc_sim::metrics::Metrics;
use txproc_sim::workload::{generate, Workload, WorkloadConfig};

const SEEDS: u64 = 256;

fn workload(seed: u64) -> Workload {
    generate(&WorkloadConfig {
        seed,
        processes: 5,
        conflict_density: 0.5,
        failure_probability: 0.2,
        ..WorkloadConfig::default()
    })
}

/// The deterministic (non-wall-clock) counters of a metrics value.
fn counters(m: &Metrics) -> impl PartialEq + std::fmt::Debug {
    (
        (
            m.committed,
            m.aborted,
            m.activities,
            m.compensations,
            m.rejections,
            m.cert_failures,
        ),
        (
            m.waits,
            m.retries,
            m.deferred_commits,
            m.cascaded,
            m.violations,
            m.abort_reasons,
        ),
        (m.epoch_batches, m.epoch_events),
    )
}

#[test]
fn engine_epoch_one_is_bit_identical_to_per_event() {
    for seed in 0..SEEDS {
        let w = workload(seed);
        let base_cfg = RunConfig {
            seed,
            check_pred: true,
            ..RunConfig::default()
        };
        let per_event = run(&w, base_cfg.clone());
        let epoch_one = run(
            &w,
            RunConfig {
                epoch: 1,
                ..base_cfg
            },
        );
        assert_eq!(
            txproc_core::schedule::render(&per_event.history),
            txproc_core::schedule::render(&epoch_one.history),
            "seed {seed}: histories diverge"
        );
        assert_eq!(
            per_event.metrics, epoch_one.metrics,
            "seed {seed}: metrics diverge"
        );
        assert_eq!(epoch_one.pred_ok, Some(true), "seed {seed}");
    }
}

#[test]
fn concurrent_epoch_one_is_bit_identical_to_per_event() {
    // One worker + closed arrivals is the deterministic events-runtime
    // configuration (documented on `run_concurrent_traced`), so the two
    // runs see the same interleaving and only the epoch knob differs.
    for seed in 0..SEEDS {
        let w = workload(seed);
        let base_cfg = ConcurrentConfig {
            seed,
            runtime: RuntimeKind::Events,
            shards: ShardMode::Auto,
            workers: Some(1),
            ..ConcurrentConfig::default()
        };
        let per_event = run_concurrent(&w, base_cfg.clone());
        let epoch_one = run_concurrent(
            &w,
            ConcurrentConfig {
                epoch: 1,
                ..base_cfg
            },
        );
        assert_eq!(
            txproc_core::schedule::render(&per_event.history),
            txproc_core::schedule::render(&epoch_one.history),
            "seed {seed}: histories diverge"
        );
        assert_eq!(
            counters(&per_event.metrics),
            counters(&epoch_one.metrics),
            "seed {seed}: deterministic counters diverge"
        );
    }
}

#[test]
fn epoch_sixteen_histories_stay_pred_on_both_drivers() {
    // Larger epochs are not bit-identical (group sizes differ) but every
    // safety property must hold: termination, PRED, and non-zero batch
    // accounting once epochs actually fill.
    for seed in 0..16 {
        let w = workload(seed);
        let engine = run(
            &w,
            RunConfig {
                seed,
                check_pred: true,
                epoch: 16,
                ..RunConfig::default()
            },
        );
        assert!(engine.stalled.is_empty(), "seed {seed}: stalled");
        assert_eq!(engine.pred_ok, Some(true), "seed {seed}: engine not PRED");
        assert!(
            engine.metrics.epoch_batches > 0,
            "seed {seed}: no epochs closed"
        );
        assert_eq!(
            engine.metrics.epoch_events,
            engine.history.len() as u64,
            "seed {seed}: every event belongs to exactly one epoch"
        );

        let conc = run_concurrent(
            &w,
            ConcurrentConfig {
                seed,
                epoch: 16,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(conc.metrics.terminated(), 5, "seed {seed}");
        assert!(
            txproc_core::pred::is_pred(&w.spec, &conc.history).unwrap(),
            "seed {seed}: concurrent epoch-16 history not PRED:\n{}",
            txproc_core::schedule::render(&conc.history)
        );
        assert_eq!(
            conc.metrics.epoch_events,
            conc.history.len() as u64,
            "seed {seed}: every event belongs to exactly one epoch"
        );
    }
}
