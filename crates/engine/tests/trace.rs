//! Trace-subsystem contracts: journals are deterministic where the driver
//! is, the no-op sink is observationally free, and the exports round-trip.

use txproc_core::schedule::{render, Event};
use txproc_core::trace::{chrome_trace, from_jsonl, to_jsonl, Journal, TraceEvent};
use txproc_engine::concurrent::ConcurrentConfig;
use txproc_engine::engine::{Engine, RunConfig};
use txproc_engine::RunBuilder;
use txproc_sim::workload::{generate, Workload, WorkloadConfig};

fn workload(seed: u64, processes: usize) -> Workload {
    generate(&WorkloadConfig {
        seed,
        processes,
        conflict_density: 0.4,
        failure_probability: 0.15,
        ..WorkloadConfig::default()
    })
}

fn engine_journal(w: &Workload, seed: u64) -> String {
    let journal = Journal::new();
    let cfg = RunConfig {
        seed,
        ..RunConfig::default()
    };
    let _ = RunBuilder::new(w)
        .config(cfg)
        .sink(Box::new(journal.clone()))
        .run();
    to_jsonl(&journal.snapshot())
}

#[test]
fn engine_journals_are_bit_identical_across_runs() {
    for seed in [4u64, 7, 23] {
        let w = workload(seed, 6);
        let a = engine_journal(&w, seed);
        let b = engine_journal(&w, seed);
        assert!(!a.is_empty(), "seed {seed}: empty journal");
        assert_eq!(a, b, "seed {seed}: journals diverge");
    }
}

#[test]
fn traced_run_matches_untraced_history_and_metrics() {
    for seed in [4u64, 11] {
        let w = workload(seed, 6);
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        let untraced = Engine::new(&w, cfg.clone()).run();
        let journal = Journal::new();
        let traced = RunBuilder::new(&w)
            .config(cfg)
            .sink(Box::new(journal.clone()))
            .run()
            .into_engine();
        assert_eq!(
            render(&untraced.history),
            render(&traced.history),
            "seed {seed}: tracing perturbed the schedule"
        );
        assert_eq!(
            untraced.metrics, traced.metrics,
            "seed {seed}: tracing perturbed the metrics"
        );
        assert!(!journal.is_empty(), "seed {seed}");
    }
}

#[test]
fn jsonl_and_chrome_exports_round_trip_on_fixture() {
    let w = workload(4, 4);
    let journal = Journal::new();
    let _ = RunBuilder::new(&w)
        .config(RunConfig::default())
        .sink(Box::new(journal.clone()))
        .run();
    let records = journal.snapshot();
    assert!(!records.is_empty());

    let jsonl = to_jsonl(&records);
    let parsed = from_jsonl(&jsonl).expect("journal parses back");
    assert_eq!(parsed.len(), records.len());
    assert_eq!(to_jsonl(&parsed), jsonl, "JSONL round-trip not stable");

    let chrome = chrome_trace(&records);
    assert!(chrome.contains("\"traceEvents\""));
    for pid in w.spec.processes().map(|p| p.id) {
        assert!(
            chrome.contains(&format!("\"tid\": {}", pid.0))
                || chrome.contains(&format!("\"tid\":{}", pid.0)),
            "missing lane for {pid}"
        );
    }
}

#[test]
fn concurrent_single_process_journal_is_deterministic() {
    let w = workload(5, 1);
    let run = || {
        let journal = Journal::new();
        let _ = RunBuilder::new(&w)
            .concurrent(ConcurrentConfig {
                seed: 5,
                ..ConcurrentConfig::default()
            })
            .sink(Box::new(journal.clone()))
            .run();
        to_jsonl(&journal.snapshot())
    };
    let a = run();
    assert!(!a.is_empty());
    assert_eq!(a, run(), "single-process concurrent journal diverges");
}

#[test]
fn concurrent_journal_is_consistent_with_history_and_metrics() {
    // Multi-threaded interleavings are nondeterministic, so no bit-identity
    // across runs; instead the journal must agree with the emitted history
    // and the metrics of the same run.
    let w = workload(3, 5);
    let journal = Journal::new();
    let result = RunBuilder::new(&w)
        .concurrent(ConcurrentConfig {
            seed: 3,
            ..ConcurrentConfig::default()
        })
        .sink(Box::new(journal.clone()))
        .run()
        .into_concurrent();
    let records = journal.snapshot();

    let committed = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::ProcessCommitted { .. }))
        .count() as u64;
    let aborted = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::ProcessAborted { .. }))
        .count() as u64;
    assert_eq!(committed, result.metrics.committed);
    assert_eq!(aborted, result.metrics.aborted);

    let admitted_immediate = records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::RequestAdmitted {
                    deferred: false,
                    ..
                }
            )
        })
        .count();
    let released = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::CommitReleased { .. }))
        .count();
    let executes = result
        .history
        .events()
        .iter()
        .filter(|e| matches!(e, Event::Execute(_)))
        .count();
    assert_eq!(admitted_immediate + released, executes);

    let compensations = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::CompensationStarted { .. }))
        .count();
    let compensates = result
        .history
        .events()
        .iter()
        .filter(|e| matches!(e, Event::Compensate(_)))
        .count();
    assert_eq!(compensations, compensates);

    let abort_starts = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::AbortStarted { .. }))
        .count() as u64;
    assert_eq!(abort_starts, result.metrics.abort_reasons.total());

    // Journal sequence numbers are dense and ordered.
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
    }
}
