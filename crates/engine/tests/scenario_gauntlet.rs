//! Correctness gauntlet over the named adversarial scenarios.
//!
//! Every scenario in the registry runs through both drivers — the
//! virtual-time engine and the conflict-domain sharded concurrent driver —
//! under the certified PRED policy, and every produced history must pass
//! the batch PRED checker with zero Proc-REC violations. The default run
//! covers a handful of seeds per scenario so `cargo test` stays fast; the
//! `#[ignore]`d full run sweeps 128 seeds per scenario and backs E22's
//! acceptance claim (`cargo test -p txproc-engine --test scenario_gauntlet
//! -- --ignored --nocapture`).
//!
//! Alongside the correctness bar, this file pins the determinism contract
//! (bit-identical histories per (scenario, seed); shard-mode-independent
//! outcomes on disjoint variants) and the concurrent driver's metrics
//! under open-system arrivals.

use std::collections::BTreeSet;
use txproc_core::ids::ProcessId;
use txproc_core::pred_incremental::check_pred_incremental;
use txproc_core::recoverability::proc_rec_violations;
use txproc_core::schedule::{Event, Schedule};
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::{CertifierKind, PolicyKind};
use txproc_engine::{run_concurrent, ConcurrentConfig, ShardMode};
use txproc_sim::scenario::{find, registry, Scenario};
use txproc_sim::workload::{generate, ArrivalModel, Workload};

fn certified_run_config(seed: u64) -> RunConfig {
    RunConfig {
        policy: PolicyKind::Pred,
        certifier: CertifierKind::Incremental,
        seed,
        ..RunConfig::default()
    }
}

fn certified_concurrent_config(seed: u64) -> ConcurrentConfig {
    ConcurrentConfig {
        policy: PolicyKind::Pred,
        certifier: CertifierKind::Incremental,
        seed,
        ..ConcurrentConfig::default()
    }
}

fn assert_certified(name: &str, seed: u64, mode: &str, w: &Workload, history: &Schedule) {
    let report = check_pred_incremental(&w.spec, history)
        .unwrap_or_else(|e| panic!("{name} seed {seed} [{mode}]: illegal history: {e:?}"));
    assert!(
        report.pred,
        "{name} seed {seed} [{mode}]: history not PRED (first violation at prefix {:?})",
        report.first_violation
    );
    let violations = proc_rec_violations(&w.spec, history).expect("legal history");
    assert!(
        violations.is_empty(),
        "{name} seed {seed} [{mode}]: Proc-REC violations {violations:?}"
    );
}

fn outcome_sets(history: &Schedule) -> (BTreeSet<ProcessId>, BTreeSet<ProcessId>) {
    let mut committed = BTreeSet::new();
    let mut aborted = BTreeSet::new();
    for e in history.events() {
        match e {
            Event::Commit(p) => {
                committed.insert(*p);
            }
            Event::Abort(p) => {
                aborted.insert(*p);
            }
            Event::GroupAbort(ps) => {
                aborted.extend(ps.iter().copied());
            }
            _ => {}
        }
    }
    (committed, aborted)
}

fn gauntlet(scenario: &Scenario, seeds: std::ops::Range<u64>, concurrent: bool) {
    for seed in seeds {
        let w = generate(&scenario.config_for_seed(seed));
        let r = run(&w, certified_run_config(seed));
        assert_certified(scenario.name, seed, "engine", &w, &r.history);
        assert_eq!(
            r.metrics.terminated() as usize,
            w.config.processes,
            "{} seed {seed}: engine left processes unterminated",
            scenario.name
        );
        if concurrent {
            let c = run_concurrent(&w, certified_concurrent_config(seed));
            assert_certified(scenario.name, seed, "concurrent", &w, &c.history);
            assert_eq!(
                c.metrics.terminated() as usize,
                w.config.processes,
                "{} seed {seed}: concurrent left processes unterminated",
                scenario.name
            );
        }
    }
}

/// Every scenario, both drivers, a handful of seeds: zero PRED / Proc-REC
/// violations. The fast always-on slice of the gauntlet.
#[test]
fn every_scenario_certified_on_both_drivers() {
    for scenario in registry() {
        gauntlet(&scenario, 0..4, true);
    }
}

/// The full 128-seed sweep behind E22's acceptance claim. Ignored by
/// default (minutes of wall time); CI's nightly/manual gauntlet job and
/// the bench harness run the same volume.
#[test]
#[ignore = "full 128-seed sweep; run with --ignored"]
fn every_scenario_certified_over_128_seeds() {
    for scenario in registry() {
        gauntlet(&scenario, 0..128, true);
    }
}

/// Determinism, part 1: generating and running a scenario twice at the
/// same seed yields bit-identical histories and metrics on the
/// virtual-time engine — generation and scheduling share no hidden state.
#[test]
fn engine_runs_are_bit_identical_per_scenario_seed() {
    for scenario in registry() {
        for seed in [0u64, 7, 19] {
            let (a, b) = (
                generate(&scenario.config_for_seed(seed)),
                generate(&scenario.config_for_seed(seed)),
            );
            let (ra, rb) = (
                run(&a, certified_run_config(seed)),
                run(&b, certified_run_config(seed)),
            );
            assert_eq!(
                ra.history, rb.history,
                "{} seed {seed}: histories diverged across generations",
                scenario.name
            );
            assert_eq!(ra.metrics.committed, rb.metrics.committed);
            assert_eq!(ra.metrics.aborted, rb.metrics.aborted);
            assert_eq!(ra.metrics.latencies, rb.metrics.latencies);
            assert_eq!(ra.metrics.makespan, rb.metrics.makespan);
        }
    }
}

/// Determinism, part 2: on the disjoint variant (one cluster per process,
/// so scheduling degenerates to the deterministic failure coins) the
/// sharded and single-lock concurrent drivers must produce bit-equal
/// commit/abort sets for every scenario shape — arrivals, storms and
/// tenant mixes included.
#[test]
fn shard_modes_agree_on_disjoint_scenario_variants() {
    for scenario in registry() {
        for seed in [2u64, 11] {
            let w = generate(&scenario.disjoint_variant(seed));
            let single = run_concurrent(
                &w,
                ConcurrentConfig {
                    shards: ShardMode::Single,
                    ..certified_concurrent_config(seed)
                },
            );
            let auto = run_concurrent(
                &w,
                ConcurrentConfig {
                    shards: ShardMode::Auto,
                    ..certified_concurrent_config(seed)
                },
            );
            assert_eq!(
                outcome_sets(&single.history),
                outcome_sets(&auto.history),
                "{} seed {seed}: shard modes disagree on disjoint variant",
                scenario.name
            );
        }
    }
}

/// Concurrent-driver metrics under open-system arrivals (satellite 3):
/// per-process latency samples exist for every process, percentiles are
/// ordered, latencies fit inside the makespan, and the per-pid breakdown
/// carries exactly the same samples as the flat vector.
#[test]
fn concurrent_metrics_under_open_arrivals() {
    for name in ["flash-crowd", "noisy-neighbor"] {
        let scenario = find(name).unwrap();
        assert!(
            !matches!(scenario.config.arrivals, ArrivalModel::Closed),
            "{name} must use an open arrival model"
        );
        let w = generate(&scenario.config_for_seed(3));
        let c = run_concurrent(&w, certified_concurrent_config(3));
        let m = &c.metrics;
        assert_eq!(
            m.latencies.len(),
            w.config.processes,
            "{name}: one sample per process"
        );
        assert_eq!(
            m.latency_by_pid.len(),
            w.config.processes,
            "{name}: per-pid latency for every process"
        );
        let mut flat = m.latencies.clone();
        let mut by_pid: Vec<u64> = m.latency_by_pid.values().copied().collect();
        flat.sort_unstable();
        by_pid.sort_unstable();
        assert_eq!(
            flat, by_pid,
            "{name}: per-pid samples must match the flat vector"
        );
        let (p50, p95) = (
            m.latency_percentile(0.5).unwrap(),
            m.latency_percentile(0.95).unwrap(),
        );
        assert!(p50 <= p95, "{name}: p50 {p50} > p95 {p95}");
        assert!(m.makespan > 0, "{name}: zero makespan");
        assert!(
            m.latencies.iter().all(|&l| l <= m.makespan),
            "{name}: latency sample beyond makespan"
        );
    }
}

/// The virtual-time engine under open arrivals: dispatches respect the
/// arrival schedule (makespan at least the last arrival), and blocked-time
/// accounting only names real processes.
#[test]
fn engine_metrics_under_open_arrivals() {
    let scenario = find("noisy-neighbor").unwrap();
    let config = scenario.config_for_seed(5);
    let w = generate(&config);
    let last_arrival = *txproc_sim::workload::arrival_times(&config).last().unwrap();
    let r = run(&w, certified_run_config(5));
    let m = &r.metrics;
    assert!(
        m.makespan >= last_arrival,
        "makespan {} precedes the last arrival {last_arrival}",
        m.makespan
    );
    assert_eq!(m.latencies.len(), w.config.processes);
    for pid in m.blocked_time.keys() {
        assert!((*pid as usize) < w.config.processes, "unknown pid {pid}");
    }
}
