//! Shim-pinning differentials: every deprecated entry point must stay
//! bit-identical to the [`RunBuilder`] composition that replaced it.
//!
//! The builder collapsed `Engine::with_sink` / `with_telemetry` /
//! `with_sampling`, `run_concurrent_traced` / `run_concurrent_instrumented`,
//! and `recover_traced` into one canonical API; those names survive as thin
//! delegating shims. These 256-seed sweeps are the contract that delegating
//! changed nothing: same histories, same metrics, same trace records, same
//! recovery reports. The concurrent comparisons pin the driver to its
//! deterministic envelope (events runtime, one worker, closed arrivals) so
//! equality is exact rather than statistical.

#![allow(deprecated)]

use txproc_core::schedule::render;
use txproc_core::telemetry::Telemetry;
use txproc_core::trace::{Journal, NoopSink};
use txproc_engine::concurrent::{
    run_concurrent_instrumented, run_concurrent_traced, ConcurrentConfig, RuntimeKind,
};
use txproc_engine::engine::{Engine, RunConfig};
use txproc_engine::recovery::{recover, recover_traced, Recovery, RecoverySource};
use txproc_engine::RunBuilder;
use txproc_sim::timeseries::TimeSeries;
use txproc_sim::workload::{generate, Workload, WorkloadConfig};

fn workload(seed: u64) -> Workload {
    generate(&WorkloadConfig {
        seed,
        processes: 3 + (seed % 4) as usize,
        clusters: 1 + (seed % 3) as usize,
        conflict_density: (seed % 5) as f64 / 5.0,
        failure_probability: if seed.is_multiple_of(2) { 0.2 } else { 0.0 },
        ..WorkloadConfig::default()
    })
}

fn engine_cfg(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        epoch: (seed % 5) as usize,
        ..RunConfig::default()
    }
}

/// `Engine::with_sink` delegates to `RunBuilder::sink`: identical history,
/// metrics, and — decisively — identical trace record streams.
#[test]
fn with_sink_shim_matches_builder() {
    for seed in 0..256u64 {
        let w = workload(seed);
        let cfg = engine_cfg(seed);

        let shim_journal = Journal::default();
        let shim = Engine::with_sink(&w, cfg.clone(), Box::new(shim_journal.clone())).run();

        let builder_journal = Journal::default();
        let built = RunBuilder::new(&w)
            .config(cfg)
            .sink(Box::new(builder_journal.clone()))
            .run()
            .into_engine();

        assert_eq!(
            render(&shim.history),
            render(&built.history),
            "seed {seed}: with_sink shim diverged from builder"
        );
        assert_eq!(shim.metrics, built.metrics, "seed {seed}: metrics");
        assert_eq!(
            shim_journal.take(),
            builder_journal.take(),
            "seed {seed}: trace records"
        );
    }
}

/// `with_telemetry` + `with_sampling` delegate to `RunBuilder::telemetry` /
/// `sampling`: identical runs and identical sampled series lengths.
#[test]
fn telemetry_and_sampling_shims_match_builder() {
    for seed in 0..256u64 {
        let w = workload(seed);
        let cfg = engine_cfg(seed);

        let shim_series = TimeSeries::new(256);
        let shim = Engine::new(&w, cfg.clone())
            .with_telemetry(Telemetry::on())
            .with_sampling(8, shim_series.clone())
            .run();

        let builder_series = TimeSeries::new(256);
        let built = RunBuilder::new(&w)
            .config(cfg)
            .telemetry(Telemetry::on())
            .sampling(8, builder_series.clone())
            .run()
            .into_engine();

        assert_eq!(
            render(&shim.history),
            render(&built.history),
            "seed {seed}: telemetry shim diverged from builder"
        );
        assert_eq!(shim.metrics, built.metrics, "seed {seed}: metrics");
        assert_eq!(
            shim_series.len(),
            builder_series.len(),
            "seed {seed}: sample count"
        );
    }
}

fn deterministic_concurrent_cfg(seed: u64) -> ConcurrentConfig {
    ConcurrentConfig {
        seed,
        runtime: RuntimeKind::Events,
        workers: Some(1),
        epoch: (seed % 3) as usize * 4,
        ..ConcurrentConfig::default()
    }
}

/// `run_concurrent_traced` delegates to `RunBuilder::concurrent` + `sink`.
/// Single-worker events runtime makes the comparison exact.
#[test]
fn concurrent_traced_shim_matches_builder() {
    for seed in 0..256u64 {
        let w = workload(seed);
        let cfg = deterministic_concurrent_cfg(seed);

        let shim_journal = Journal::default();
        let shim = run_concurrent_traced(&w, cfg.clone(), Box::new(shim_journal.clone()));

        let builder_journal = Journal::default();
        let built = RunBuilder::new(&w)
            .concurrent(cfg)
            .sink(Box::new(builder_journal.clone()))
            .run()
            .into_concurrent();

        assert_eq!(
            shim.history.events(),
            built.history.events(),
            "seed {seed}: run_concurrent_traced shim diverged from builder"
        );
        assert_eq!(shim.metrics.committed, built.metrics.committed);
        assert_eq!(shim.metrics.aborted, built.metrics.aborted);
        assert_eq!(shim.metrics.activities, built.metrics.activities);
        assert_eq!(
            shim_journal.take(),
            builder_journal.take(),
            "seed {seed}: trace records"
        );
    }
}

/// `run_concurrent_instrumented` delegates to the builder with a sink and
/// telemetry composed.
#[test]
fn concurrent_instrumented_shim_matches_builder() {
    for seed in 0..256u64 {
        let w = workload(seed);
        let cfg = deterministic_concurrent_cfg(seed);

        let shim =
            run_concurrent_instrumented(&w, cfg.clone(), Box::new(NoopSink), Telemetry::on());
        let built = RunBuilder::new(&w)
            .concurrent(cfg)
            .telemetry(Telemetry::on())
            .run()
            .into_concurrent();

        assert_eq!(
            shim.history.events(),
            built.history.events(),
            "seed {seed}: run_concurrent_instrumented shim diverged from builder"
        );
        assert_eq!(shim.metrics.committed, built.metrics.committed);
        assert_eq!(shim.metrics.aborted, built.metrics.aborted);
    }
}

/// `recover` / `recover_traced` and the unified `Recovery::from(source)`
/// produce identical reports from the same crash image.
#[test]
fn recovery_entry_points_agree() {
    for seed in 0..256u64 {
        let w = workload(seed);
        let mut engine = Engine::new(&w, engine_cfg(seed));
        engine.run_until_history(3 + (seed % 7) as usize);
        let image = engine.crash();

        let plain = recover(&w, image.clone()).expect("recover");
        let traced = recover_traced(&w, image.clone(), Box::new(NoopSink)).expect("recover_traced");
        let unified = Recovery::from(RecoverySource::Image(image))
            .run(&w)
            .expect("Recovery::run");

        for (name, report) in [("recover_traced", &traced), ("Recovery::from", &unified)] {
            assert_eq!(
                render(&plain.history),
                render(&report.history),
                "seed {seed}: {name} diverged from recover"
            );
            assert_eq!(plain.aborted, report.aborted, "seed {seed}: {name}");
            assert_eq!(
                plain.compensations, report.compensations,
                "seed {seed}: {name}"
            );
        }
    }
}
