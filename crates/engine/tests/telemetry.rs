//! Telemetry-subsystem contracts against real driver runs: a disabled
//! registry is observationally free (bit-identical schedules and metrics),
//! an enabled one captures every hot-path phase, and the exports
//! (Prometheus text, time-series JSON) round-trip on live output.

use txproc_core::schedule::render;
use txproc_core::telemetry::{prometheus_text, Phase, Telemetry};
use txproc_core::trace::NoopSink;
use txproc_engine::concurrent::ConcurrentConfig;
use txproc_engine::engine::{Engine, RunConfig};
use txproc_engine::RunBuilder;
use txproc_sim::timeseries::{from_json, TimeSeries};
use txproc_sim::workload::{generate, Workload, WorkloadConfig};

fn workload(seed: u64, processes: usize) -> Workload {
    generate(&WorkloadConfig {
        seed,
        processes,
        conflict_density: 0.4,
        failure_probability: 0.15,
        ..WorkloadConfig::default()
    })
}

#[test]
fn disabled_telemetry_is_bit_identical_on_engine() {
    for seed in [4u64, 11] {
        let w = workload(seed, 6);
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        let plain = Engine::new(&w, cfg.clone()).run();
        let off = RunBuilder::new(&w)
            .config(cfg)
            .telemetry(Telemetry::off())
            .run()
            .into_engine();
        assert_eq!(
            render(&plain.history),
            render(&off.history),
            "seed {seed}: a disabled registry perturbed the schedule"
        );
        assert_eq!(
            plain.metrics, off.metrics,
            "seed {seed}: a disabled registry perturbed the metrics"
        );
    }
}

#[test]
fn enabled_telemetry_does_not_perturb_engine_outcome() {
    // Phase timers read clocks but must not change scheduling decisions:
    // the virtual-time engine is deterministic, so history and metrics
    // stay bit-identical even with the registry live.
    for seed in [4u64, 11] {
        let w = workload(seed, 6);
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        let plain = Engine::new(&w, cfg.clone()).run();
        let tele = Telemetry::on();
        let on = RunBuilder::new(&w)
            .config(cfg)
            .telemetry(tele.clone())
            .run()
            .into_engine();
        assert_eq!(render(&plain.history), render(&on.history), "seed {seed}");
        assert_eq!(plain.metrics, on.metrics, "seed {seed}");
        let snap = tele.snapshot().expect("enabled registry snapshots");
        let certify = snap.phase(Phase::Certify).expect("certify phase present");
        assert!(certify.count > 0, "seed {seed}: no certify intervals");
    }
}

#[test]
fn disabled_telemetry_is_bit_identical_on_single_process_concurrent() {
    // The concurrent driver is only deterministic with one process; that is
    // enough to pin the disabled path to zero observable effect.
    let w = workload(5, 1);
    let run = |tele: Telemetry| {
        let r = RunBuilder::new(&w)
            .concurrent(ConcurrentConfig {
                seed: 5,
                ..ConcurrentConfig::default()
            })
            .sink(Box::new(NoopSink))
            .telemetry(tele)
            .run()
            .into_concurrent();
        (render(&r.history), r.metrics.committed, r.metrics.aborted)
    };
    assert_eq!(
        run(Telemetry::off()),
        run(Telemetry::off()),
        "disabled concurrent runs diverge"
    );
}

#[test]
fn enabled_telemetry_captures_concurrent_phases() {
    let w = workload(3, 8);
    let tele = Telemetry::on();
    let r = RunBuilder::new(&w)
        .concurrent(ConcurrentConfig {
            seed: 3,
            ..ConcurrentConfig::default()
        })
        .sink(Box::new(NoopSink))
        .telemetry(tele.clone())
        .run()
        .into_concurrent();
    assert!(r.metrics.committed + r.metrics.aborted > 0);
    let snap = tele.snapshot().expect("enabled registry snapshots");
    for phase in [
        Phase::Certify,
        Phase::Policy,
        Phase::LockWait,
        Phase::LockHold,
    ] {
        let p = snap.phase(phase).expect("phase accumulator present");
        assert!(p.count > 0, "{}: no intervals recorded", p.phase);
        assert!(p.p50_ns <= p.p95_ns && p.p95_ns <= p.max_ns, "{}", p.phase);
    }
    // Per-shard instruments agree with the run's own metrics.
    let committed: u64 = snap
        .instruments
        .iter()
        .filter(|i| i.name == "committed_total")
        .map(|i| i.value)
        .sum();
    assert_eq!(committed, r.metrics.committed);
    let events: u64 = snap
        .instruments
        .iter()
        .filter(|i| i.name == "events_total")
        .map(|i| i.value)
        .sum();
    assert_eq!(events, r.history.len() as u64);
}

#[test]
fn exports_round_trip_on_live_run() {
    let w = workload(4, 6);
    let tele = Telemetry::on();
    let series = TimeSeries::new(64);
    let _ = RunBuilder::new(&w)
        .config(RunConfig {
            seed: 4,
            ..RunConfig::default()
        })
        .telemetry(tele.clone())
        .sampling(8, series.clone())
        .run();

    let snap = tele.snapshot().expect("snapshot");
    let prom = prometheus_text(&snap);
    assert!(prom.contains("# TYPE txproc_phase_duration_ns histogram"));
    assert!(prom.contains("txproc_phase_duration_ns_count{phase=\"certify\"}"));
    assert!(prom.contains("txproc_uptime_ns"));

    assert!(!series.is_empty(), "virtual-time sampling recorded nothing");
    let doc = from_json(&series.to_json()).expect("series JSON parses back");
    assert_eq!(doc.schema, "txproc-timeseries/v1");
    assert_eq!(doc.samples.len(), series.len());
    // Virtual timestamps are monotone non-decreasing along the ring.
    let stamps: Vec<Option<u64>> = doc.samples.iter().map(|s| s.virtual_time).collect();
    assert!(
        stamps.iter().all(Option::is_some),
        "engine samples carry vt"
    );
    let mut sorted = stamps.clone();
    sorted.sort_unstable();
    assert_eq!(stamps, sorted, "sample timestamps out of order");
}
