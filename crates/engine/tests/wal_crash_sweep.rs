//! Crash-point sweep over the durable write-ahead journal.
//!
//! The crash model: a crash truncates the log at an arbitrary byte offset;
//! everything else is volatile. For every truncation point — each record
//! boundary plus mid-record torn tails — the salvaged prefix must rebuild
//! into a crash image whose recovery yields a PRED, Proc-REC history with
//! every process terminated, no activity executed twice, and an idempotent
//! second recovery. The sweep runs per-event mode, epoch (group-commit)
//! mode, and snapshot-accelerated logs; `nightly_full_sweep` (ignored by
//! default, run by the nightly CI job) widens the seed range.

use std::collections::BTreeSet;
use txproc_core::schedule::{render, Event};
use txproc_core::wal::{encode_record, read_records, DurabilityPolicy, MemWal, WalWriter};
use txproc_engine::durability::rebuild_image;
use txproc_engine::engine::{Engine, RunConfig};
use txproc_engine::recovery::recover;
use txproc_sim::workload::{generate, Workload, WorkloadConfig};

fn workload(seed: u64) -> Workload {
    generate(&WorkloadConfig {
        seed,
        processes: 6,
        conflict_density: 0.4,
        failure_probability: 0.1,
        ..WorkloadConfig::default()
    })
}

fn wal_engine(w: &Workload, epoch: usize, snapshot_every: usize) -> (Engine<'_>, MemWal) {
    let mem = MemWal::new();
    let writer = WalWriter::new(
        Box::new(mem.clone()),
        DurabilityPolicy::Buffered,
        w.config.seed,
    );
    let cfg = RunConfig {
        seed: w.config.seed,
        epoch,
        ..RunConfig::default()
    };
    let engine = Engine::new(w, cfg).with_wal(writer, snapshot_every);
    (engine, mem)
}

/// Byte offset of every record boundary in `bytes` (0 and EOF included).
fn boundaries(bytes: &[u8]) -> Vec<usize> {
    let (records, clean) = read_records(bytes);
    assert_eq!(clean, bytes.len(), "a finished run leaves no torn tail");
    let mut at = vec![0usize];
    for r in &records {
        at.push(at.last().unwrap() + encode_record(r).len());
    }
    assert_eq!(*at.last().unwrap(), bytes.len());
    at
}

/// The full sweep contract at one truncation offset.
fn check_cut(w: &Workload, bytes: &[u8], cut: usize, label: &str) {
    let (records, _) = read_records(&bytes[..cut]);
    let image = rebuild_image(w, &records)
        .unwrap_or_else(|e| panic!("{label} cut {cut}: rebuild failed: {e}"));
    let report = recover(w, image).unwrap_or_else(|e| panic!("{label} cut {cut}: recover: {e}"));
    assert!(
        txproc_core::pred::is_pred(&w.spec, &report.history).unwrap(),
        "{label} cut {cut}: recovered history not PRED:\n{}",
        render(&report.history)
    );
    assert!(
        txproc_core::recoverability::is_proc_rec(&w.spec, &report.history).unwrap(),
        "{label} cut {cut}: recovered history not Proc-REC:\n{}",
        render(&report.history)
    );
    let replay = report.history.replay(&w.spec).unwrap();
    assert!(
        replay.active_processes().is_empty(),
        "{label} cut {cut}: processes left active"
    );
    // No effect applied twice: each activity executes/compensates at most
    // once in the recovered history.
    let mut executed = BTreeSet::new();
    let mut compensated = BTreeSet::new();
    for e in report.history.events() {
        match e {
            Event::Execute(g) => assert!(executed.insert(*g), "{label} cut {cut}: {g} twice"),
            Event::Compensate(g) => {
                assert!(compensated.insert(*g), "{label} cut {cut}: {g} comp twice")
            }
            _ => {}
        }
    }
    // Re-recovery of the post-recovery image is a no-op.
    let second = recover(w, report.image.clone()).expect("second recovery");
    assert_eq!(
        render(&second.history),
        render(&report.history),
        "{label} cut {cut}: re-recovery changed the history"
    );
    assert!(second.aborted.is_empty(), "{label} cut {cut}");
    assert_eq!(second.compensations, 0, "{label} cut {cut}");
    assert_eq!(second.forward, 0, "{label} cut {cut}");
    assert_eq!(second.resolved_groups, 0, "{label} cut {cut}");
    assert_eq!(second.aborted_prepared, 0, "{label} cut {cut}");
}

/// Sweeps every record boundary and one torn mid-record offset per frame.
fn sweep(seed: u64, epoch: usize, snapshot_every: usize, label: &str) {
    let w = workload(seed);
    let (engine, mem) = wal_engine(&w, epoch, snapshot_every);
    let result = engine.run();
    assert!(result.stalled.is_empty(), "{label}: run stalled");
    let bytes = mem.contents();
    let at = boundaries(&bytes);
    for (i, &cut) in at.iter().enumerate() {
        check_cut(&w, &bytes, cut, label);
        // A torn tail mid-way into the following record truncates back to
        // this boundary and must recover identically.
        if let Some(&next) = at.get(i + 1) {
            let torn = cut + (next - cut) / 2;
            let (r1, c1) = read_records(&bytes[..torn]);
            let (r2, _) = read_records(&bytes[..cut]);
            assert_eq!(c1, cut, "{label}: torn cut {torn} salvages to {cut}");
            assert_eq!(r1, r2);
            if i % 8 == 0 {
                check_cut(&w, &bytes, torn, label);
            }
        }
    }
}

#[test]
fn wal_journaling_never_changes_the_run() {
    for seed in 0..8u64 {
        for epoch in [0usize, 4] {
            let w = workload(seed);
            let cfg = RunConfig {
                seed,
                epoch,
                ..RunConfig::default()
            };
            let plain = Engine::new(&w, cfg.clone()).run();
            let (engine, _mem) = wal_engine(&w, epoch, 8);
            let logged = engine.run();
            assert_eq!(
                render(&plain.history),
                render(&logged.history),
                "seed {seed} epoch {epoch}: WAL changed the history"
            );
            assert_eq!(plain.metrics.makespan, logged.metrics.makespan);
            assert_eq!(plain.metrics.activities, logged.metrics.activities);
        }
    }
}

#[test]
fn full_log_rebuild_matches_the_crash_image() {
    for seed in 0..8u64 {
        for crash_at in [3usize, 9, 100_000] {
            let w = workload(seed);
            let (mut engine, mem) = wal_engine(&w, 0, 0);
            engine.run_until_history(crash_at);
            let image = engine.crash();
            let (records, _) = read_records(&mem.contents());
            let rebuilt = rebuild_image(&w, &records).expect("rebuild");
            assert_eq!(
                render(&rebuilt.history),
                render(&image.history),
                "seed {seed} crash {crash_at}"
            );
            assert_eq!(rebuilt.invocation_log, image.invocation_log);
            assert_eq!(
                rebuilt.coordinator.log().len(),
                image.coordinator.log().len()
            );
            // The decisive equivalence: both images recover identically.
            let from_image = recover(&w, image).expect("recover image");
            let from_wal = recover(&w, rebuilt).expect("recover wal");
            assert_eq!(
                render(&from_image.history),
                render(&from_wal.history),
                "seed {seed} crash {crash_at}: recovery diverged"
            );
            assert_eq!(from_image.aborted, from_wal.aborted);
            assert_eq!(from_image.compensations, from_wal.compensations);
        }
    }
}

#[test]
fn crash_sweep_per_event_mode() {
    for seed in 0..8u64 {
        sweep(seed, 0, 0, &format!("per-event seed {seed}"));
    }
}

#[test]
fn crash_sweep_epoch_mode_with_snapshots() {
    for seed in 0..8u64 {
        sweep(seed, 4, 8, &format!("epoch seed {seed}"));
    }
}

#[test]
fn rebuild_rejects_mismatched_workload() {
    let w = workload(1);
    let (engine, mem) = wal_engine(&w, 0, 0);
    engine.run();
    let (records, _) = read_records(&mem.contents());
    let other = workload(2);
    assert!(
        rebuild_image(&other, &records).is_err(),
        "log of seed 1 must not rebuild against workload seed 2"
    );
}

/// The full nightly sweep: 64 seeds per mode. Run with
/// `cargo test -p txproc-engine --test wal_crash_sweep -- --ignored`.
#[test]
#[ignore = "nightly: 64-seed sweep"]
fn nightly_full_sweep() {
    for seed in 0..64u64 {
        sweep(seed, 0, 0, &format!("nightly per-event seed {seed}"));
        sweep(seed, 4, 8, &format!("nightly epoch seed {seed}"));
    }
}
