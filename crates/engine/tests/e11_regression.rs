//! Regression for the E11 divergence (see ROADMAP): the engine run at
//! workload seed 4 (6 processes, density 0.5, 20% failures) emits a PRED
//! history containing a compensation `a5_5⁻¹` that precedes a conflicting
//! forward activity `a1_13` whose pivot lands one event before P5's next
//! pivot. Theorem 1 (PRED ⇒ Proc-REC) admits this; the Proc-REC checker
//! used to flag it (`PivotOrder { earlier: P5, later: P1 }`) because its
//! Definition 11.2 scan constrained compensating operations as the earlier
//! element of a conflicting pair. Compensations are themselves recovery and
//! are never undone again, so they impose no pivot obligation.

use txproc_core::pred::is_pred;
use txproc_core::recoverability::{is_proc_rec, theorem1_holds};
use txproc_core::schedule::{Event, OpKind};
use txproc_engine::engine::{run, RunConfig};
use txproc_sim::workload::{generate, WorkloadConfig};

#[test]
fn e11_seed4_pred_history_is_proc_rec() {
    let w = generate(&WorkloadConfig {
        seed: 4,
        processes: 6,
        conflict_density: 0.5,
        failure_probability: 0.2,
        ..WorkloadConfig::default()
    });
    let r = run(
        &w,
        RunConfig {
            seed: 4,
            ..RunConfig::default()
        },
    );
    // The triage precondition: the history is PRED and actually contains
    // compensations followed by forward activities (the shape that used to
    // trip the checker). If workload generation ever changes, this guard
    // fails loudly instead of the test passing vacuously.
    assert!(is_pred(&w.spec, &r.history).unwrap());
    let replay = r.history.replay(&w.spec).unwrap();
    let has_comp_before_forward = replay.ops.iter().enumerate().any(|(u, x)| {
        x.kind == OpKind::Compensation
            && replay.ops[u + 1..]
                .iter()
                .any(|y| y.kind == OpKind::Forward && y.gid.process != x.gid.process)
    });
    assert!(
        has_comp_before_forward,
        "workload shape changed; regression no longer exercised"
    );
    assert!(
        r.history
            .events()
            .iter()
            .any(|e| matches!(e, Event::Commit(_))),
        "workload shape changed; regression no longer exercised"
    );

    assert!(is_proc_rec(&w.spec, &r.history).unwrap());
    assert!(theorem1_holds(&w.spec, &r.history).unwrap());
}
