//! Differential stress tests for the conflict-domain sharded driver.
//!
//! Two oracles, both over hundreds of seeds:
//!
//! 1. Whatever interleaving the OS produces, the ticket-merged global
//!    history of a sharded run must pass the batch PRED checker and carry
//!    zero Proc-REC violations — the same bar the virtual-time engine is
//!    held to.
//! 2. On workloads whose processes are pairwise non-conflicting (one
//!    cluster per process), scheduling decisions degenerate to the
//!    deterministic failure coins, so the sharded and single-lock drivers
//!    must produce bit-equal commit/abort sets.

use std::collections::BTreeSet;
use txproc_core::domains::DomainPartition;
use txproc_core::ids::ProcessId;
use txproc_core::schedule::{Event, Schedule};
use txproc_engine::{run_concurrent, ConcurrentConfig, ShardMode};
use txproc_sim::workload::{generate, WorkloadConfig};

fn outcome_sets(history: &Schedule) -> (BTreeSet<ProcessId>, BTreeSet<ProcessId>) {
    let mut committed = BTreeSet::new();
    let mut aborted = BTreeSet::new();
    for e in history.events() {
        match e {
            Event::Commit(p) => {
                committed.insert(*p);
            }
            Event::Abort(p) => {
                aborted.insert(*p);
            }
            Event::GroupAbort(ps) => {
                aborted.extend(ps.iter().copied());
            }
            _ => {}
        }
    }
    (committed, aborted)
}

/// Oracle 1: sharded merged histories are PRED and Proc-REC clean across
/// varied shapes (cluster counts, conflict densities, failure rates).
#[test]
fn sharded_histories_certified_over_256_seeds() {
    for seed in 0..256u64 {
        let processes = 3 + (seed % 4) as usize; // 3..=6
        let clusters = 1 + (seed % 3) as usize; // 1..=3
        let w = generate(&WorkloadConfig {
            seed,
            processes,
            clusters,
            conflict_density: (seed % 5) as f64 / 5.0,
            failure_probability: if seed % 2 == 0 { 0.2 } else { 0.0 },
            ..WorkloadConfig::default()
        });
        let result = run_concurrent(
            &w,
            ConcurrentConfig {
                seed,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(
            result.metrics.terminated() as usize,
            processes,
            "seed {seed}: not all processes terminated"
        );
        let report = txproc_core::pred::check_pred(&w.spec, &result.history)
            .unwrap_or_else(|e| panic!("seed {seed}: merged history illegal: {e:?}"));
        assert!(
            report.pred,
            "seed {seed}: merged sharded history not PRED (first violation at prefix {:?}):\n{}",
            report.first_violation,
            txproc_core::schedule::render(&result.history)
        );
        let violations = txproc_core::recoverability::proc_rec_violations(&w.spec, &result.history)
            .expect("legal history");
        assert!(
            violations.is_empty(),
            "seed {seed}: Proc-REC violations {violations:?} in:\n{}",
            txproc_core::schedule::render(&result.history)
        );
    }
}

/// Oracle 2: on shard-disjoint workloads the sharded and single-lock
/// drivers commit and abort exactly the same processes.
#[test]
fn sharded_matches_single_lock_on_disjoint_workloads_over_256_seeds() {
    for seed in 0..256u64 {
        let processes = 3 + (seed % 4) as usize;
        let w = generate(&WorkloadConfig {
            seed,
            processes,
            clusters: processes, // one cluster per process: fully disjoint
            conflict_density: 0.0,
            failure_probability: 0.25,
            ..WorkloadConfig::default()
        });
        assert_eq!(
            DomainPartition::partition(&w.spec).domain_count(),
            processes,
            "seed {seed}: workload not fully disjoint"
        );
        let cfg = ConcurrentConfig {
            seed,
            ..ConcurrentConfig::default()
        };
        let sharded = run_concurrent(&w, cfg.clone());
        let single = run_concurrent(
            &w,
            ConcurrentConfig {
                shards: ShardMode::Single,
                ..cfg
            },
        );
        assert_eq!(
            outcome_sets(&sharded.history),
            outcome_sets(&single.history),
            "seed {seed}: sharded vs single-lock outcome sets diverge"
        );
        assert_eq!(
            sharded.metrics.committed, single.metrics.committed,
            "seed {seed}: committed counts diverge"
        );
        assert_eq!(
            sharded.metrics.aborted, single.metrics.aborted,
            "seed {seed}: aborted counts diverge"
        );
        assert!(
            txproc_core::pred::is_pred(&w.spec, &sharded.history).unwrap(),
            "seed {seed}: sharded history not PRED"
        );
    }
}
