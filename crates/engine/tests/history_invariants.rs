//! Invariants of the histories the PRED scheduler emits, checked directly on
//! the event stream (independently of the PRED checker):
//!
//! * per-process compensations run in reverse order of their activities
//!   (Lemma 2, intra-process),
//! * conflicting compensations of different processes run in reverse order
//!   of their base activities (Lemma 2, inter-process),
//! * compensations precede conflicting forward-recovery activities of other
//!   aborting processes (Lemma 3),
//! * a non-compensatable activity of `P_j` conflicting-after an activity of
//!   an active `P_i` commits only after `P_i` terminated (Lemma 1.1).

use txproc_core::ids::{GlobalActivityId, ProcessId};
use txproc_core::schedule::{Event, Schedule};
use txproc_core::spec::Spec;
use txproc_engine::engine::{run, RunConfig};
use txproc_sim::workload::{generate, Workload, WorkloadConfig};

fn histories() -> Vec<(Workload, Schedule)> {
    (0..15u64)
        .map(|seed| {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 6,
                conflict_density: 0.5,
                failure_probability: 0.25,
                ..WorkloadConfig::default()
            });
            let r = run(
                &w,
                RunConfig {
                    seed,
                    ..RunConfig::default()
                },
            );
            assert!(r.stalled.is_empty(), "seed {seed} stalled");
            (w, r.history)
        })
        .collect()
}

fn conflict(spec: &Spec, a: GlobalActivityId, b: GlobalActivityId) -> bool {
    spec.activities_conflict(a, b).unwrap()
}

#[test]
fn compensations_reverse_intra_process_order() {
    for (_, history) in histories() {
        let events = history.events();
        for p in events.iter().filter_map(|e| match e {
            Event::Compensate(g) => Some(g.process),
            _ => None,
        }) {
            // Collect this process's execute positions and compensate order.
            let mut exec_pos = std::collections::BTreeMap::new();
            for (i, e) in events.iter().enumerate() {
                if let Event::Execute(g) = e {
                    if g.process == p {
                        exec_pos.insert(g.activity, i);
                    }
                }
            }
            let mut last_base_pos = usize::MAX;
            let mut boundary = 0usize;
            for e in events {
                match e {
                    // Forward execution after compensations resets the
                    // reverse-order window (alternative switching).
                    Event::Execute(g) if g.process == p => {
                        last_base_pos = usize::MAX;
                        boundary = boundary.max(exec_pos[&g.activity]);
                    }
                    Event::Compensate(g) if g.process == p => {
                        let base = exec_pos[&g.activity];
                        assert!(
                            base < last_base_pos,
                            "{p}: compensations not in reverse order of execution"
                        );
                        last_base_pos = base;
                    }
                    _ => {}
                }
            }
        }
    }
}

#[test]
fn conflicting_cross_process_compensations_reverse_base_order() {
    for (w, history) in histories() {
        let events = history.events();
        let exec_pos: std::collections::BTreeMap<GlobalActivityId, usize> = events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Event::Execute(g) => Some((*g, i)),
                _ => None,
            })
            .collect();
        let comps: Vec<(usize, GlobalActivityId)> = events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Event::Compensate(g) => Some((i, *g)),
                _ => None,
            })
            .collect();
        for (i, (ci, gi)) in comps.iter().enumerate() {
            for (cj, gj) in &comps[i + 1..] {
                if gi.process == gj.process || !conflict(&w.spec, *gi, *gj) {
                    continue;
                }
                // Lemma 2 constrains *overlapping* pairs: when gj's base
                // executed between gi's base and gi's compensation, the
                // inner pair must cancel first — compensations in reverse
                // order of the bases. Sequential (disjoint) pairs such as
                // ⟨gi gi⁻¹ gj gj⁻¹⟩ impose nothing.
                let (bi, bj) = (exec_pos[gi], exec_pos[gj]);
                let overlapping = bi < bj && bj < *ci;
                assert!(
                    !overlapping || cj < ci,
                    "Lemma 2 violated: exec({gi})@{bi} < exec({gj})@{bj} < \
                     comp({gi})@{ci} but comp({gj})@{cj} came later"
                );
            }
        }
    }
}

#[test]
fn lemma1_noncompensatable_commits_after_conflicting_predecessor_terminates() {
    for (w, history) in histories() {
        let events = history.events();
        let term_pos: std::collections::BTreeMap<ProcessId, usize> = events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Event::Commit(p) => Some((*p, i)),
                _ => None,
            })
            .collect();
        // Last event index per process (abort completions included).
        let mut last_pos: std::collections::BTreeMap<ProcessId, usize> = Default::default();
        for (i, e) in events.iter().enumerate() {
            let p = match e {
                Event::Execute(g) | Event::Fail(g) | Event::Compensate(g) => Some(g.process),
                Event::Commit(p) | Event::Abort(p) => Some(*p),
                Event::GroupAbort(_) => None,
            };
            if let Some(p) = p {
                last_pos.insert(p, i);
            }
        }
        for (j, e) in events.iter().enumerate() {
            let Event::Execute(gj) = e else { continue };
            let svc = w.spec.service_of(*gj).unwrap();
            if w.spec.catalog.termination(svc).is_compensatable() {
                continue;
            }
            // Conflicting earlier activities of other processes.
            for (i, e2) in events.iter().enumerate().take(j) {
                let Event::Execute(gi) = e2 else { continue };
                if gi.process == gj.process || !conflict(&w.spec, *gi, *gj) {
                    continue;
                }
                // Skip if gi was compensated before j (cancelled) or its
                // process quasi-committed before j.
                let compensated_before_j = events[..j]
                    .iter()
                    .any(|e| matches!(e, Event::Compensate(g) if g == gi));
                if compensated_before_j {
                    continue;
                }
                let quasi = events[i..j].iter().any(|e| {
                    matches!(e, Event::Execute(g)
                        if g.process == gi.process
                            && !w.spec.catalog
                                .termination(w.spec.service_of(*g).unwrap())
                                .is_compensatable())
                });
                if quasi {
                    continue;
                }
                // Completion forward activities run after their process's
                // abort; the predecessor constraint does not apply to them.
                let after_own_abort = events[..j]
                    .iter()
                    .any(|e| matches!(e, Event::Abort(p) if *p == gj.process));
                if after_own_abort {
                    continue;
                }
                let terminated_before_j =
                    term_pos.get(&gi.process).map(|&t| t < j).unwrap_or(false)
                        || last_pos
                            .get(&gi.process)
                            .map(|&t| {
                                t < j
                                    && events
                                        .iter()
                                        .any(|e| matches!(e, Event::Abort(p) if *p == gi.process))
                            })
                            .unwrap_or(false);
                assert!(
                    terminated_before_j,
                    "Lemma 1.1 violated: non-compensatable {gj} committed at {j} \
                     while conflicting predecessor {} (activity {gi} at {i}) was live",
                    gi.process
                );
            }
        }
    }
}
