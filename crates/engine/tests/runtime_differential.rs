//! Differential stress tests pinning the event-driven runtime to the
//! thread-per-process baseline.
//!
//! Three oracles:
//!
//! 1. On workloads whose processes are pairwise non-conflicting,
//!    scheduling decisions degenerate to the deterministic failure coins,
//!    so the events and thread runtimes must produce bit-equal
//!    commit/abort sets over 256 seeds.
//! 2. With a single worker and closed arrivals the events runtime has no
//!    scheduling nondeterminism left: repeated runs must produce
//!    bit-identical merged histories.
//! 3. Lost-wakeup stress: the thread runtime with the fallback timeout
//!    removed must still terminate on conflict-heavy, abort-heavy
//!    workloads — a missed notify (e.g. the historical finalize
//!    lost-notify bug) hangs it, which a watchdog converts into a test
//!    failure.

use std::collections::BTreeSet;
use txproc_core::domains::DomainPartition;
use txproc_core::ids::ProcessId;
use txproc_core::schedule::{Event, Schedule};
use txproc_engine::{run_concurrent, ConcurrentConfig, RuntimeKind};
use txproc_sim::workload::{generate, WorkloadConfig};

fn outcome_sets(history: &Schedule) -> (BTreeSet<ProcessId>, BTreeSet<ProcessId>) {
    let mut committed = BTreeSet::new();
    let mut aborted = BTreeSet::new();
    for e in history.events() {
        match e {
            Event::Commit(p) => {
                committed.insert(*p);
            }
            Event::Abort(p) => {
                aborted.insert(*p);
            }
            Event::GroupAbort(ps) => {
                aborted.extend(ps.iter().copied());
            }
            _ => {}
        }
    }
    (committed, aborted)
}

/// Oracle 1: events and threads runtimes commit and abort exactly the same
/// processes on disjoint workloads, over 256 seeds.
#[test]
fn events_matches_threads_on_disjoint_workloads_over_256_seeds() {
    for seed in 0..256u64 {
        let processes = 3 + (seed % 4) as usize;
        let w = generate(&WorkloadConfig {
            seed,
            processes,
            clusters: processes, // one cluster per process: fully disjoint
            conflict_density: 0.0,
            failure_probability: 0.25,
            ..WorkloadConfig::default()
        });
        assert_eq!(
            DomainPartition::partition(&w.spec).domain_count(),
            processes,
            "seed {seed}: workload not fully disjoint"
        );
        let cfg = ConcurrentConfig {
            seed,
            runtime: RuntimeKind::Events,
            ..ConcurrentConfig::default()
        };
        let events = run_concurrent(&w, cfg.clone());
        let threads = run_concurrent(
            &w,
            ConcurrentConfig {
                runtime: RuntimeKind::Threads,
                ..cfg
            },
        );
        assert_eq!(
            outcome_sets(&events.history),
            outcome_sets(&threads.history),
            "seed {seed}: events vs threads outcome sets diverge"
        );
        assert_eq!(
            events.metrics.committed, threads.metrics.committed,
            "seed {seed}: committed counts diverge"
        );
        assert_eq!(
            events.metrics.aborted, threads.metrics.aborted,
            "seed {seed}: aborted counts diverge"
        );
        assert!(
            txproc_core::pred::is_pred(&w.spec, &events.history).unwrap(),
            "seed {seed}: events history not PRED"
        );
    }
}

/// Oracle 2: one worker + closed arrivals ⇒ the events runtime is fully
/// deterministic — bit-identical histories across repeated runs, including
/// on conflict-heavy multi-domain workloads.
#[test]
fn single_worker_events_runtime_is_deterministic() {
    for seed in [0u64, 7, 21, 42] {
        let w = generate(&WorkloadConfig {
            seed,
            processes: 10,
            clusters: 3,
            conflict_density: 0.5,
            failure_probability: 0.2,
            ..WorkloadConfig::default()
        });
        let cfg = ConcurrentConfig {
            seed,
            runtime: RuntimeKind::Events,
            workers: Some(1),
            ..ConcurrentConfig::default()
        };
        let first = run_concurrent(&w, cfg.clone());
        assert_eq!(first.metrics.terminated(), 10, "seed {seed}");
        for rep in 0..3 {
            let again = run_concurrent(&w, cfg.clone());
            assert_eq!(
                first.history.events(),
                again.history.events(),
                "seed {seed} rep {rep}: single-worker histories diverge"
            );
            assert_eq!(
                first.metrics.committed, again.metrics.committed,
                "seed {seed} rep {rep}"
            );
        }
    }
}

/// Oracle 3: the thread runtime without any fallback timeout terminates on
/// abort-heavy contended workloads. Runs under a watchdog: a lost wakeup
/// deadlocks the run, and the harness reports it instead of hanging.
#[test]
fn threads_runtime_survives_lost_wakeup_stress() {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        for seed in 0..24u64 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 8,
                clusters: 2,
                conflict_density: 0.7,
                failure_probability: 0.3,
                ..WorkloadConfig::default()
            });
            let result = run_concurrent(
                &w,
                ConcurrentConfig {
                    seed,
                    runtime: RuntimeKind::Threads,
                    fallback_wait: false,
                    ..ConcurrentConfig::default()
                },
            );
            assert_eq!(result.metrics.terminated(), 8, "seed {seed}");
        }
        tx.send(()).ok();
    });
    match rx.recv_timeout(std::time::Duration::from_secs(120)) {
        Ok(()) => handle.join().expect("stress runs clean"),
        Err(_) => panic!(
            "thread runtime hung without the fallback timeout: a wait was \
             never notified (lost-wakeup bug)"
        ),
    }
}
