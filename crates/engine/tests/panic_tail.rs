//! A run that panics mid-flight must still leave durable, parseable tails:
//! the JSONL trace ends on a record boundary (prefix-complete) and the WAL
//! salvages to a clean prefix that rebuilds and recovers. This pins the
//! poison-safe flush guards in `JsonlSink` / `WalWriter` drop paths.

use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use txproc_core::trace::{from_jsonl, JsonlSink, TraceRecord, TraceSink};
use txproc_core::wal::{read_records, DurabilityPolicy, MemWal, WalWriter};
use txproc_engine::durability::rebuild_image;
use txproc_engine::engine::RunConfig;
use txproc_engine::recovery::recover;
use txproc_engine::RunBuilder;
use txproc_sim::workload::{generate, WorkloadConfig};

/// Shared byte buffer that outlives the sink (and the panic).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Delegates to the wrapped sink, then panics after `left` records — the
/// deterministic stand-in for a run crashing mid-epoch.
struct PanicAfter<S> {
    inner: S,
    left: usize,
}

impl<S: TraceSink> TraceSink for PanicAfter<S> {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&mut self, rec: TraceRecord) {
        if self.left == 0 {
            panic!("injected crash mid-run");
        }
        self.left -= 1;
        self.inner.record(rec);
    }
    fn flush(&mut self) {
        self.inner.flush();
    }
}

#[test]
fn panicking_run_leaves_parseable_jsonl_and_wal_tails() {
    let w = generate(&WorkloadConfig {
        seed: 11,
        processes: 6,
        conflict_density: 0.4,
        failure_probability: 0.1,
        ..WorkloadConfig::default()
    });
    let buf = SharedBuf::default();
    let mem = MemWal::new();
    let cfg = RunConfig {
        seed: 11,
        epoch: 4,
        ..RunConfig::default()
    };
    let sink = PanicAfter {
        inner: JsonlSink::new(buf.clone()),
        left: 25,
    };
    let writer = WalWriter::new(Box::new(mem.clone()), DurabilityPolicy::Buffered, 11);
    let builder = RunBuilder::new(&w)
        .config(cfg)
        .sink(Box::new(sink))
        .durability(writer, 8);
    let panicked = catch_unwind(AssertUnwindSafe(move || builder.run())).is_err();
    assert!(panicked, "the injected sink crash must unwind the run");

    // JSONL tail: the unwinding drop flushed every record the sink accepted;
    // the file parses line by line with nothing torn.
    let bytes = buf.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let text = String::from_utf8(bytes).expect("utf8 journal");
    let records = from_jsonl(&text).expect("parseable journal tail");
    assert_eq!(records.len(), 25, "every accepted record is on disk");

    // WAL tail: drop-flushed frames salvage cleanly, and the salvaged
    // prefix rebuilds into a recoverable crash image.
    let wal_bytes = mem.contents();
    let (wal_records, clean) = read_records(&wal_bytes);
    assert_eq!(clean, wal_bytes.len(), "drop flush lands whole frames");
    assert!(!wal_records.is_empty());
    let image = rebuild_image(&w, &wal_records).expect("rebuild from panic tail");
    let report = recover(&w, image).expect("recover from panic tail");
    assert!(txproc_core::pred::is_pred(&w.spec, &report.history).unwrap());
}
