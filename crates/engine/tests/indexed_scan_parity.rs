//! Differential test for the indexed protocol hot path: the engine driven
//! by the indexed [`PolicyKind::PredProtocol`] must emit histories
//! bit-identical to the engine driven by [`PolicyKind::PredScan`] (the
//! retained pre-index scan oracle) across randomized workloads, and those
//! histories must be prefix-reducible.
//!
//! This is the end-to-end counterpart of the per-decision differential
//! checks (`debug_assert!`s inside `protocol.rs` and the
//! `indexed_decisions_match_scan_oracle` proptest in `txproc-core`): any
//! divergence in admissions, commit blockers, completion gates or abort
//! plans would eventually surface as a diverging event stream.

use txproc_core::pred::check_pred;
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::{CertifierKind, PolicyKind};
use txproc_sim::workload::{generate, WorkloadConfig};

/// 256 randomized workloads: seeds 0..256 sweeping conflict density and
/// failure probability so the runs exercise waits, deferred commits,
/// cascades and aborts, not just the happy path.
fn configs() -> impl Iterator<Item = WorkloadConfig> {
    (0..256u64).map(|seed| WorkloadConfig {
        seed,
        processes: 4 + (seed % 3) as usize,
        conflict_density: [0.2, 0.5, 0.8][(seed % 3) as usize],
        failure_probability: [0.0, 0.15, 0.3][((seed / 3) % 3) as usize],
        ..WorkloadConfig::default()
    })
}

#[test]
fn indexed_and_scan_policies_emit_identical_histories() {
    for cfg in configs() {
        let w = generate(&cfg);
        let indexed = run(
            &w,
            RunConfig {
                policy: PolicyKind::PredProtocol,
                seed: cfg.seed,
                ..RunConfig::default()
            },
        );
        let scan = run(
            &w,
            RunConfig {
                policy: PolicyKind::PredScan,
                seed: cfg.seed,
                ..RunConfig::default()
            },
        );
        assert_eq!(
            indexed.history.events(),
            scan.history.events(),
            "seed {}: indexed and scan policies diverged",
            cfg.seed
        );
        assert_eq!(
            indexed.metrics.terminated(),
            scan.metrics.terminated(),
            "seed {}: termination counts diverged",
            cfg.seed
        );
        // PRED-checking every seed would dominate the test's runtime; a
        // fixed stride keeps coverage across the density/failure sweep.
        // The uncertified pred-protocol ablation does not itself guarantee
        // PRED, so the reducibility assertion runs on the certified policy,
        // under both certifiers.
        if cfg.seed % 16 == 0 {
            for certifier in [CertifierKind::Batch, CertifierKind::Incremental] {
                let certified = run(
                    &w,
                    RunConfig {
                        policy: PolicyKind::Pred,
                        certifier,
                        seed: cfg.seed,
                        ..RunConfig::default()
                    },
                );
                let report = check_pred(&w.spec, &certified.history).unwrap();
                assert!(
                    report.pred,
                    "seed {}: certified ({certifier:?}) history not prefix-reducible",
                    cfg.seed
                );
            }
        }
    }
}
