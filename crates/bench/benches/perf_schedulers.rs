//! E13 benchmark: end-to-end scheduler runs across conflict densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::PolicyKind;
use txproc_sim::workload::{generate, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf_schedulers");
    g.sample_size(20);
    for &density in &[0.1, 0.5] {
        let w = generate(&WorkloadConfig {
            seed: 9,
            processes: 16,
            conflict_density: density,
            failure_probability: 0.1,
            ..WorkloadConfig::default()
        });
        for kind in [
            PolicyKind::Pred,
            PolicyKind::PredProtocol,
            PolicyKind::Conservative,
            PolicyKind::Serial,
        ] {
            g.bench_with_input(
                BenchmarkId::new(kind.label(), format!("density-{density}")),
                &w,
                |b, w| {
                    b.iter(|| {
                        run(
                            w,
                            RunConfig {
                                policy: kind,
                                ..RunConfig::default()
                            },
                        )
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
