//! Figure 4 benchmark: conflict-serializability checking of the paper's
//! schedules S_t2 and S'_t2.

use criterion::{criterion_group, criterion_main, Criterion};
use txproc_bench::scenarios::{figure4a_st2, figure4b_st2};
use txproc_core::fixtures::paper_world;
use txproc_core::serializability::is_serializable;

fn bench(c: &mut Criterion) {
    let fx = paper_world();
    let a = figure4a_st2(&fx);
    let b = figure4b_st2(&fx);
    let mut g = c.benchmark_group("fig4_serializability");
    g.bench_function("serializable_4a", |bencher| {
        bencher.iter(|| is_serializable(std::hint::black_box(&fx.spec), &a).unwrap())
    });
    g.bench_function("non_serializable_4b", |bencher| {
        bencher.iter(|| is_serializable(std::hint::black_box(&fx.spec), &b).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
