//! E18 benchmark: incremental vs. batch PRED certification.
//!
//! The batch certifier answers "is this extended prefix still PRED?" by
//! rebuilding the completed schedule and reducing it from scratch — O(n²)
//! per event, O(n³) to certify a whole history of n events. The incremental
//! certifier ([`txproc_core::pred_incremental::IncrementalPred`]) carries
//! the serialization closure, cancellation state and completion overlays
//! across events. This benchmark certifies entire engine-emitted histories
//! of growing length both ways; the gap must grow superlinearly with
//! history length (speedup curve in EXPERIMENTS.md E18).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txproc_core::pred::check_pred;
use txproc_core::pred_incremental::{check_pred_incremental, IncrementalPred};
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::PolicyKind;
use txproc_sim::workload::{generate, WorkloadConfig};

/// Engine-emitted histories of growing length (uncertified protocol runs,
/// so certification cost is measured on realistic, conflict-rich inputs).
fn histories() -> Vec<(
    txproc_sim::workload::Workload,
    txproc_core::schedule::Schedule,
)> {
    [4usize, 8, 16, 24, 32, 48, 64]
        .into_iter()
        .map(|processes| {
            let w = generate(&WorkloadConfig {
                seed: 1,
                processes,
                conflict_density: 0.4,
                failure_probability: 0.1,
                ..WorkloadConfig::default()
            });
            let result = run(
                &w,
                RunConfig {
                    policy: PolicyKind::PredProtocol,
                    ..RunConfig::default()
                },
            );
            (w, result.history)
        })
        .collect::<Vec<_>>()
}

fn bench(c: &mut Criterion) {
    let inputs = histories();
    let mut g = c.benchmark_group("pred_incremental");
    for (w, history) in &inputs {
        let n = history.len();
        // Batch reference: per-prefix completion + reduction (check_pred).
        g.bench_with_input(BenchmarkId::new("batch", n), history, |b, h| {
            b.iter(|| check_pred(&w.spec, h).unwrap())
        });
        // Incremental: one certifier driven over the same events.
        g.bench_with_input(BenchmarkId::new("incremental", n), history, |b, h| {
            b.iter(|| check_pred_incremental(&w.spec, h).unwrap())
        });
        // Amortized per-event certification at the full-history frontier:
        // the certifier already holds n events; what one more answer costs.
        let mut inc = IncrementalPred::new(&w.spec);
        for e in history.events() {
            inc.record(e).unwrap();
        }
        let probe = history.events().last().cloned();
        if let Some(probe) = probe {
            g.bench_with_input(BenchmarkId::new("per_event", n), &inc, |b, inc| {
                b.iter(|| {
                    // The last event re-certified against the full prefix is
                    // illegal (already applied) for some kinds; certify a
                    // fresh legal continuation instead: the cheapest uniform
                    // probe is the verdict for the recorded history itself.
                    let _ = inc.certify(std::hint::black_box(&probe));
                    inc.pred()
                })
            });
        }
    }
    g.finish();

    // Sanity: both certifiers agree on every input (differential oracle).
    for (w, history) in &inputs {
        let batch = check_pred(&w.spec, history).unwrap();
        let incremental = check_pred_incremental(&w.spec, history).unwrap();
        assert_eq!(
            batch,
            incremental,
            "certifiers diverged on n={}",
            history.len()
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
