//! E17 benchmark: scheduler cost vs number of concurrent processes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::PolicyKind;
use txproc_sim::workload::{generate, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability");
    g.sample_size(15);
    for &n in &[8usize, 16, 32, 64] {
        let w = generate(&WorkloadConfig {
            seed: 3,
            processes: n,
            conflict_density: 0.3,
            failure_probability: 0.1,
            ..WorkloadConfig::default()
        });
        g.bench_with_input(BenchmarkId::new("pred-protocol", n), &w, |b, w| {
            b.iter(|| {
                run(
                    w,
                    RunConfig {
                        policy: PolicyKind::PredProtocol,
                        ..RunConfig::default()
                    },
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("serial", n), &w, |b, w| {
            b.iter(|| {
                run(
                    w,
                    RunConfig {
                        policy: PolicyKind::Serial,
                        ..RunConfig::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
