//! E17/E19 benchmark: scheduler cost vs number of concurrent processes.
//!
//! Covers the deterministic engine at 8–256 processes (pred-protocol vs
//! serial) and the threaded concurrent driver at 8–64 processes. The larger
//! sizes exercise the indexed protocol hot path: per-decision cost must stay
//! O(degree), not O(live ops), for these to finish in sensible time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txproc_engine::concurrent::{run_concurrent, ConcurrentConfig};
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::PolicyKind;
use txproc_sim::workload::{generate, WorkloadConfig};

fn workload(n: usize) -> txproc_sim::workload::Workload {
    generate(&WorkloadConfig {
        seed: 3,
        processes: n,
        conflict_density: 0.3,
        failure_probability: 0.1,
        ..WorkloadConfig::default()
    })
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability");
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        // Large sizes are slow per iteration; fewer samples keep wall time sane.
        g.sample_size(if n >= 128 { 10 } else { 15 });
        let w = workload(n);
        g.bench_with_input(BenchmarkId::new("pred-protocol", n), &w, |b, w| {
            b.iter(|| {
                run(
                    w,
                    RunConfig {
                        policy: PolicyKind::PredProtocol,
                        ..RunConfig::default()
                    },
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("serial", n), &w, |b, w| {
            b.iter(|| {
                run(
                    w,
                    RunConfig {
                        policy: PolicyKind::Serial,
                        ..RunConfig::default()
                    },
                )
            })
        });
    }
    g.finish();

    // One thread per process: cap the size so the bench stays within
    // reasonable thread counts, and measure the driver end to end.
    let mut g = c.benchmark_group("scalability-concurrent");
    g.sample_size(10);
    for &n in &[8usize, 16, 32, 64] {
        let w = workload(n);
        g.bench_with_input(BenchmarkId::new("pred-protocol", n), &w, |b, w| {
            b.iter(|| {
                run_concurrent(
                    w,
                    ConcurrentConfig {
                        policy: PolicyKind::PredProtocol,
                        ..ConcurrentConfig::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
