//! E16 benchmark: crash-recovery cost (group abort + completion replay) as
//! a function of the crash point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txproc_engine::engine::{Engine, RunConfig};
use txproc_engine::recovery::recover;
use txproc_sim::workload::{generate, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let w = generate(&WorkloadConfig {
        seed: 11,
        processes: 8,
        conflict_density: 0.4,
        failure_probability: 0.1,
        ..WorkloadConfig::default()
    });
    let mut g = c.benchmark_group("crash_recovery");
    g.sample_size(20);
    for crash_at in [4usize, 12, 24] {
        g.bench_with_input(
            BenchmarkId::new("crash_and_recover", crash_at),
            &crash_at,
            |b, &crash_at| {
                b.iter(|| {
                    let mut engine = Engine::new(&w, RunConfig::default());
                    engine.run_until_history(crash_at);
                    let image = engine.crash();
                    recover(&w, image).unwrap().history.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
