//! E15 benchmark: weak-order makespan planning (§3.6) and the subsystem's
//! commit-order machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txproc_core::ids::{ActivityId, GlobalActivityId, ProcessId};
use txproc_core::weak::{makespan, OrderConstraint, OrderKind, Task};
use txproc_subsystem::kv::{Key, Program};
use txproc_subsystem::subsystem::{Subsystem, SubsystemId};

fn chain(n: u32, kind: OrderKind) -> (Vec<Task>, Vec<OrderConstraint>) {
    let tasks: Vec<Task> = (0..n)
        .map(|i| Task {
            gid: GlobalActivityId::new(ProcessId(i), ActivityId(0)),
            duration: 10,
            subsystem: 0,
        })
        .collect();
    let constraints = tasks
        .windows(2)
        .map(|w| OrderConstraint {
            first: w[0].gid,
            second: w[1].gid,
            kind,
        })
        .collect();
    (tasks, constraints)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("weak_order");
    for n in [16u32, 64, 256] {
        for (label, kind) in [("strong", OrderKind::Strong), ("weak", OrderKind::Weak)] {
            let (tasks, constraints) = chain(n, kind);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| makespan(&tasks, &constraints).unwrap().makespan)
            });
        }
    }
    g.bench_function("subsystem_commit_order", |b| {
        b.iter(|| {
            let mut s = Subsystem::new(SubsystemId(0), "w");
            let (t1, _) = s.execute(&Program::add(Key(1), 1)).unwrap();
            let (t2, _) = s.execute(&Program::add(Key(1), 1)).unwrap();
            s.order_commits(t1, t2).unwrap();
            s.commit(t1).unwrap();
            s.commit(t2).unwrap();
            s.peek(Key(1))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
