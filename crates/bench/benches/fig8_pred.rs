//! Figure 8 benchmark: prefix-reducibility checking (Definition 10) of the
//! paper's schedules, and PRED-check scaling with history length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txproc_bench::scenarios::{figure4a_st2, figure7};
use txproc_core::fixtures::paper_world;
use txproc_core::pred::check_pred;
use txproc_engine::engine::{run, RunConfig};
use txproc_sim::workload::{generate, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let fx = paper_world();
    let st2 = figure4a_st2(&fx);
    let s7 = figure7(&fx);
    let mut g = c.benchmark_group("fig8_pred");
    g.bench_function("check_pred_st2", |b| {
        b.iter(|| check_pred(std::hint::black_box(&fx.spec), &st2).unwrap())
    });
    g.bench_function("check_pred_fig7", |b| {
        b.iter(|| check_pred(std::hint::black_box(&fx.spec), &s7).unwrap())
    });
    // Scaling: PRED-check cost on engine-emitted histories of growing size.
    for processes in [4usize, 8, 16] {
        let w = generate(&WorkloadConfig {
            seed: 1,
            processes,
            conflict_density: 0.4,
            failure_probability: 0.1,
            ..WorkloadConfig::default()
        });
        let result = run(
            &w,
            RunConfig {
                policy: txproc_engine::policy::PolicyKind::PredProtocol,
                ..RunConfig::default()
            },
        );
        g.bench_with_input(
            BenchmarkId::new("check_pred_history", result.history.len()),
            &result.history,
            |b, h| b.iter(|| check_pred(&w.spec, h).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
