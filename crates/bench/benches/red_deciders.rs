//! Ablation: the `O(n²)` graph-based RED decider vs the faithful
//! rule-rewriting search (Definition 9 applied literally).

use criterion::{criterion_group, criterion_main, Criterion};
use txproc_bench::scenarios::figure4a_st2;
use txproc_core::completion::complete;
use txproc_core::fixtures::paper_world;
use txproc_core::reduction::{reduce, reduce_exhaustive};

fn bench(c: &mut Criterion) {
    let fx = paper_world();
    let s = figure4a_st2(&fx);
    let completed = complete(&fx.spec, &s).unwrap();
    let mut g = c.benchmark_group("red_deciders");
    g.sample_size(20);
    g.bench_function("graph_decider", |b| {
        b.iter(|| reduce(std::hint::black_box(&fx.spec), &completed).reducible)
    });
    g.bench_function("exhaustive_rewriter", |b| {
        b.iter(|| reduce_exhaustive(std::hint::black_box(&fx.spec), &completed, 500_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
