//! Figure 6 benchmark: completion (Definition 8) and reduction
//! (Definition 9) of the paper's S_t2.

use criterion::{criterion_group, criterion_main, Criterion};
use txproc_bench::scenarios::figure4a_st2;
use txproc_core::completion::complete;
use txproc_core::fixtures::paper_world;
use txproc_core::reduction::reduce;

fn bench(c: &mut Criterion) {
    let fx = paper_world();
    let s = figure4a_st2(&fx);
    let completed = complete(&fx.spec, &s).unwrap();
    let mut g = c.benchmark_group("fig6_reduction");
    g.bench_function("complete_st2", |b| {
        b.iter(|| complete(std::hint::black_box(&fx.spec), &s).unwrap())
    });
    g.bench_function("reduce_st2", |b| {
        b.iter(|| reduce(std::hint::black_box(&fx.spec), &completed))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
