//! Figure 1 benchmark: executing the CIM scenario (construction +
//! production) end to end under each scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use txproc_bench::scenarios::cim_workload;
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::PolicyKind;

fn bench(c: &mut Criterion) {
    let (_, workload) = cim_workload(0.2);
    let mut g = c.benchmark_group("fig1_cim");
    for kind in [PolicyKind::Pred, PolicyKind::Serial, PolicyKind::UnsafeCc] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                run(
                    std::hint::black_box(&workload),
                    RunConfig {
                        policy: kind,
                        ..RunConfig::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
