//! The experiment suite: one function per experiment of EXPERIMENTS.md,
//! regenerating every figure and formal result of the paper plus the
//! extrapolated performance studies.

use crate::cells;
use crate::scenarios::{cim_workload, figure4a_st2, figure4b_st2, figure7, figure9};
use crate::tables::{ExperimentResult, Table};
use txproc_core::completion::complete;
use txproc_core::fixtures::paper_world;
use txproc_core::flex::{valid_executions, FlexAnalysis};
use txproc_core::pred::{check_pred, is_pred};
use txproc_core::recoverability::{is_proc_rec, proc_rec_violations, sot_like, theorem1_holds};
use txproc_core::reduction::reduce;
use txproc_core::schedule::render;
use txproc_core::serializability::{is_serializable, serialization_order};
use txproc_core::weak::{makespan, OrderConstraint, OrderKind, Task};
use txproc_engine::engine::{run, Engine, RunConfig};
use txproc_engine::policy::PolicyKind;
use txproc_engine::recovery::recover;
use txproc_sim::workload::{generate, WorkloadConfig};

/// Runs one experiment by id (`"e1"`..`"e17"`).
pub fn run_experiment(id: &str) -> Option<ExperimentResult> {
    match id {
        "e1" => Some(e1_cim()),
        "e2" => Some(e2_process_p1()),
        "e3" => Some(e3_valid_executions()),
        "e4" => Some(e4_serializability()),
        "e5" => Some(e5_completion()),
        "e6" => Some(e6_reduction()),
        "e7" => Some(e7_figure7_pred()),
        "e8" => Some(e8_prefix_violation()),
        "e9" => Some(e9_quasi_commit()),
        "e10" => Some(e10_theorem1()),
        "e11" => Some(e11_lemmas()),
        "e12" => Some(e12_sot()),
        "e13" => Some(e13_throughput()),
        "e14" => Some(e14_violations()),
        "e15" => Some(e15_weak_order()),
        "e16" => Some(e16_crash_recovery()),
        "e17" => Some(e17_scalability()),
        _ => None,
    }
}

/// All experiment ids in order.
pub fn all_ids() -> Vec<String> {
    (1..=17).map(|i| format!("e{i}")).collect()
}

/// E1 — Figure 1: the CIM interleaving is incorrect; the PRED scheduler
/// defers the production process behind the construction process's outcome.
pub fn e1_cim() -> ExperimentResult {
    let mut t = Table::new(
        "CIM scenario: construction + production under each scheduler (test activity fails)",
        &[
            "scheduler",
            "committed",
            "aborted",
            "compensations",
            "history PRED?",
        ],
    );
    let mut pass = true;
    for kind in [PolicyKind::Pred, PolicyKind::Serial, PolicyKind::UnsafeCc] {
        // Seed chosen so the construction test activity fails (the paper's
        // §2.2 situation). High failure rate plus a seed scan makes sure the
        // failure actually hits the pivot.
        let (fx, w) = cim_workload(0.45);
        let mut chosen = None;
        for seed in 0..200 {
            let r = run(
                &w,
                RunConfig {
                    policy: kind,
                    seed,
                    check_pred: true,
                    // Stagger arrivals so production reads the BOM the
                    // construction process wrote (Figure 1's timeline).
                    arrival_gap: 70,
                    ..RunConfig::default()
                },
            );
            let test_failed = r.history.events().iter().any(|e| {
                matches!(e, txproc_core::schedule::Event::Fail(g)
                    if *g == fx.construction_activity("test"))
            });
            if test_failed {
                chosen = Some(r);
                break;
            }
        }
        let r = chosen.expect("a seed with a failing test activity exists");
        let ok = r.pred_ok.unwrap_or(false);
        if kind != PolicyKind::UnsafeCc && !ok {
            pass = false;
        }
        if kind == PolicyKind::UnsafeCc && ok {
            // The unsafe scheduler may get lucky on this workload; that is
            // acceptable — E14 quantifies the violation rate.
        }
        t.row(cells![
            kind.label(),
            r.metrics.committed,
            r.metrics.aborted,
            r.metrics.compensations,
            ok
        ]);
    }
    ExperimentResult {
        id: "E1".into(),
        source: "Figure 1, §2.2, §3.5".into(),
        title: "CIM scenario: correct coordination of construction and production".into(),
        expectation:
            "PRED and serial schedulers keep the history prefix-reducible even when the test fails"
                .into(),
        tables: vec![t],
        pass,
    }
}

/// E2 — Figure 2: process P₁'s structure and flex analysis.
pub fn e2_process_p1() -> ExperimentResult {
    let fx = paper_world();
    let analysis = FlexAnalysis::analyze(&fx.p1, &fx.spec.catalog);
    let mut t = Table::new("Process P₁ (Figure 2)", &["property", "value"]);
    t.row(cells!["activities", fx.p1.len()]);
    t.row(cells![
        "guaranteed termination",
        analysis.has_guaranteed_termination()
    ]);
    t.row(cells![
        "strict well-formed flex",
        analysis.strict_well_formed
    ]);
    t.row(cells![
        "state-determining activity s_1_0",
        analysis
            .state_determining
            .map(|a| format!("a1_{}", a.0 + 1))
            .unwrap_or_default()
    ]);
    let pass = analysis.has_guaranteed_termination()
        && analysis.strict_well_formed
        && analysis.state_determining == Some(txproc_core::ids::ActivityId(1));
    ExperimentResult {
        id: "E2".into(),
        source: "Figure 2, Example 2".into(),
        title: "P₁ is a process with guaranteed termination; its pivot a1_2 is s_1_0".into(),
        expectation: "well-formed flex structure, s_1_0 = a1_2".into(),
        tables: vec![t],
        pass,
    }
}

/// E3 — Figure 3: the four valid executions of P₁.
pub fn e3_valid_executions() -> ExperimentResult {
    let fx = paper_world();
    let execs = valid_executions(&fx.p1, &fx.spec.catalog, 100).unwrap();
    let mut t = Table::new(
        "Valid executions of P₁ (Figure 3)",
        &["#", "execution", "terminates"],
    );
    for (i, e) in execs.iter().enumerate() {
        t.row(cells![
            i + 1,
            e,
            if e.committed { "commit" } else { "abort" }
        ]);
    }
    ExperimentResult {
        id: "E3".into(),
        source: "Figure 3, Example 1".into(),
        title: "Four possible valid executions of P₁".into(),
        expectation: "exactly 4 executions".into(),
        pass: execs.len() == 4,
        tables: vec![t],
    }
}

/// E4 — Figure 4: serializable vs. non-serializable interleavings.
pub fn e4_serializability() -> ExperimentResult {
    let fx = paper_world();
    let a = figure4a_st2(&fx);
    let b = figure4b_st2(&fx);
    let ser_a = is_serializable(&fx.spec, &a).unwrap();
    let ser_b = is_serializable(&fx.spec, &b).unwrap();
    let order_a = serialization_order(&fx.spec, &a).unwrap();
    let mut t = Table::new(
        "Conflict serializability (Figure 4)",
        &["schedule", "history", "serializable", "serialization order"],
    );
    t.row(cells![
        "S_t2 (4a)",
        render(&a),
        ser_a,
        order_a
            .map(|o| format!("{o:?}"))
            .unwrap_or_else(|| "-".into())
    ]);
    t.row(cells!["S'_t2 (4b)", render(&b), ser_b, "-"]);
    ExperimentResult {
        id: "E4".into(),
        source: "Figure 4, Examples 3-4".into(),
        title: "S_t2 is serializable (P₁ before P₂); S'_t2 has cyclic dependencies".into(),
        expectation: "4(a) serializable, 4(b) not".into(),
        pass: ser_a && !ser_b,
        tables: vec![t],
    }
}

/// E5 — Figure 5 / Definition 8: the completion of S_t2.
pub fn e5_completion() -> ExperimentResult {
    let fx = paper_world();
    let s = figure4a_st2(&fx);
    let completed = complete(&fx.spec, &s).unwrap();
    let mut t = Table::new(
        "Completion activities added to S_t2 (Example 5)",
        &["activity", "kind"],
    );
    for op in completed.completion_ops() {
        t.row(cells![
            op,
            match op.kind {
                txproc_core::schedule::OpKind::Forward => "forward recovery",
                txproc_core::schedule::OpKind::Compensation => "compensation",
            }
        ]);
    }
    // Example 5: {a1_3⁻¹, a1_5, a1_6} for P₁ and {a2_5} for P₂.
    let pass = completed.completion_ops().len() == 4
        && completed
            .completion_ops()
            .iter()
            .filter(|o| o.kind == txproc_core::schedule::OpKind::Compensation)
            .count()
            == 1;
    ExperimentResult {
        id: "E5".into(),
        source: "Figure 5, Definition 8, Example 5".into(),
        title: "Completed process schedule S̃_t2 adds {a1_3⁻¹, a1_5, a1_6, a2_5}".into(),
        expectation: "four completion activities, one compensation".into(),
        pass,
        tables: vec![t],
    }
}

/// E6 — Figure 6 / Example 6: reduction of S̃_t2.
pub fn e6_reduction() -> ExperimentResult {
    let fx = paper_world();
    let s = figure4a_st2(&fx);
    let completed = complete(&fx.spec, &s).unwrap();
    let outcome = reduce(&fx.spec, &completed);
    let mut t = Table::new("Reduction of S̃_t2 (Example 6)", &["property", "value"]);
    t.row(cells!["cancelled pairs", outcome.cancelled_pairs.len()]);
    t.row(cells![
        "cancelled",
        outcome
            .cancelled_pairs
            .iter()
            .map(|&(f, _)| completed.ops[f].to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ]);
    t.row(cells!["reducible (RED)", outcome.reducible]);
    t.row(cells![
        "serialization of reduced schedule",
        outcome
            .process_graph
            .topological_order()
            .map(|o| format!("{o:?}"))
            .unwrap_or_else(|| "-".into())
    ]);
    let pass = outcome.reducible && outcome.cancelled_pairs.len() == 1;
    ExperimentResult {
        id: "E6".into(),
        source: "Figure 6, Example 6".into(),
        title: "Only ⟨a1_3, a1_3⁻¹⟩ cancels; the reduced schedule serializes P₁ → P₂".into(),
        expectation: "S_t2 ∈ RED with exactly one cancelled pair".into(),
        pass,
        tables: vec![t],
    }
}

/// E7 — Figure 7 / Examples 7 and 9: S″ is PRED.
pub fn e7_figure7_pred() -> ExperimentResult {
    let fx = paper_world();
    let s = figure7(&fx);
    let report = check_pred(&fx.spec, &s).unwrap();
    let mut t = Table::new(
        "Prefix reducibility of S″ (Figure 7)",
        &["prefix", "reducible"],
    );
    for (k, red) in report.prefix_reducible.iter().enumerate() {
        t.row(cells![k, red]);
    }
    ExperimentResult {
        id: "E7".into(),
        source: "Figure 7, Examples 7 and 9".into(),
        title: "Every prefix of S″ is reducible: S″ ∈ PRED".into(),
        expectation: "PRED".into(),
        pass: report.pred,
        tables: vec![t],
    }
}

/// E8 — Figure 8 / Example 8: the prefix S_t1 breaks reducibility.
pub fn e8_prefix_violation() -> ExperimentResult {
    let fx = paper_world();
    let s = figure4a_st2(&fx);
    let report = check_pred(&fx.spec, &s).unwrap();
    let mut t = Table::new(
        "Prefix reducibility of S_t2 (Example 8)",
        &["prefix", "reducible"],
    );
    for (k, red) in report.prefix_reducible.iter().enumerate() {
        t.row(cells![k, red]);
    }
    let pass = report.reducible() && !report.pred && report.first_violation == Some(4);
    ExperimentResult {
        id: "E8".into(),
        source: "Figure 8, Example 8".into(),
        title: "S_t2 is RED but not PRED: completing S_t1 yields the cycle a1_1 ≪ a2_1 ≪ a1_1⁻¹"
            .into(),
        expectation: "full schedule reducible, first violating prefix = S_t1 (4 events)".into(),
        pass,
        tables: vec![t],
    }
}

/// E9 — Figure 9 / Example 10: quasi-commit of non-compensatable activities.
pub fn e9_quasi_commit() -> ExperimentResult {
    let fx = paper_world();
    let good = figure9(&fx);
    let mut bad = txproc_core::schedule::Schedule::new();
    bad.execute(fx.a(1, 1))
        .execute(fx.a(3, 1))
        .execute(fx.a(3, 2));
    bad.commit(txproc_core::ids::ProcessId(3));
    let good_pred = is_pred(&fx.spec, &good).unwrap();
    let bad_pred = is_pred(&fx.spec, &bad).unwrap();
    let mut t = Table::new(
        "Quasi-commit (Figure 9): conflicting access after vs. before P₁'s pivot",
        &["schedule", "history", "PRED"],
    );
    t.row(cells!["after pivot (Fig. 9)", render(&good), good_pred]);
    t.row(cells!["before pivot + P₃ F-REC", render(&bad), bad_pred]);
    ExperimentResult {
        id: "E9".into(),
        source: "Figure 9, Example 10, §3.5".into(),
        title: "After P₁'s pivot commits, a1_1 can no longer be compensated: P₃'s conflicting access is safe".into(),
        expectation: "Figure 9 interleaving PRED; same access before the quasi-commit not PRED".into(),
        pass: good_pred && !bad_pred,
        tables: vec![t],
    }
}

/// E10 — Theorem 1 on randomized histories: PRED ⇒ serializable ∧ Proc-REC.
pub fn e10_theorem1() -> ExperimentResult {
    let mut checked = 0u32;
    let mut pred_count = 0u32;
    let mut holds = 0u32;
    for seed in 0..20u64 {
        let w = generate(&WorkloadConfig {
            seed,
            processes: 4,
            conflict_density: 0.5,
            failure_probability: 0.2,
            ..WorkloadConfig::default()
        });
        for kind in [
            PolicyKind::Pred,
            PolicyKind::UnsafeCc,
            PolicyKind::PredProtocol,
        ] {
            let r = run(
                &w,
                RunConfig {
                    policy: kind,
                    seed,
                    ..RunConfig::default()
                },
            );
            checked += 1;
            if is_pred(&w.spec, &r.history).unwrap_or(false) {
                pred_count += 1;
            }
            if theorem1_holds(&w.spec, &r.history).unwrap_or(false) {
                holds += 1;
            }
        }
    }
    let mut t = Table::new("Theorem 1 validation", &["metric", "count"]);
    t.row(cells!["histories checked", checked]);
    t.row(cells!["PRED histories", pred_count]);
    t.row(cells!["Theorem 1 implication holds", holds]);
    ExperimentResult {
        id: "E10".into(),
        source: "Theorem 1".into(),
        title: "PRED implies serializability and process-recoverability on every checked history"
            .into(),
        expectation: "implication holds for all histories; a healthy mix of PRED/non-PRED".into(),
        pass: holds == checked && pred_count > 0 && pred_count < checked,
        tables: vec![t],
    }
}

/// E11 — Lemmas 1–3: PRED histories never violate the lemma obligations.
pub fn e11_lemmas() -> ExperimentResult {
    let mut pred_histories = 0u32;
    let mut proc_rec_ok = 0u32;
    for seed in 0..40u64 {
        let w = generate(&WorkloadConfig {
            seed,
            processes: 6,
            conflict_density: 0.5,
            failure_probability: 0.2,
            ..WorkloadConfig::default()
        });
        let r = run(
            &w,
            RunConfig {
                seed,
                ..RunConfig::default()
            },
        );
        if is_pred(&w.spec, &r.history).unwrap_or(false) {
            pred_histories += 1;
            if is_proc_rec(&w.spec, &r.history).unwrap_or(false) {
                proc_rec_ok += 1;
            }
        }
    }
    // And the directed counterexample: violating Lemma 1.1 (pivot order)
    // breaks Proc-REC and PRED.
    let fx = paper_world();
    let mut bad = txproc_core::schedule::Schedule::new();
    bad.execute(fx.a(1, 1))
        .execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3))
        .execute(fx.a(1, 2));
    let bad_violations = proc_rec_violations(&fx.spec, &bad).unwrap();
    let bad_pred = is_pred(&fx.spec, &bad).unwrap();
    let mut t = Table::new(
        "Lemma obligations on scheduler output",
        &["metric", "value"],
    );
    t.row(cells!["PRED histories emitted", pred_histories]);
    t.row(cells!["of which process-recoverable", proc_rec_ok]);
    t.row(cells![
        "directed Lemma-1 violation: Proc-REC violations",
        bad_violations.len()
    ]);
    t.row(cells!["directed Lemma-1 violation: PRED", bad_pred]);
    ExperimentResult {
        id: "E11".into(),
        source: "Lemmas 1-3, Definition 11".into(),
        title: "Scheduler output satisfies the lemma obligations; violating them breaks PRED"
            .into(),
        expectation: "all PRED histories Proc-REC; the directed violation is neither".into(),
        pass: pred_histories > 0
            && proc_rec_ok == pred_histories
            && !bad_violations.is_empty()
            && !bad_pred,
        tables: vec![t],
    }
}

/// E12 — §3.5: an SOT-like criterion cannot exist for processes.
pub fn e12_sot() -> ExperimentResult {
    let fx = paper_world();
    let mut s_t1 = txproc_core::schedule::Schedule::new();
    s_t1.execute(fx.a(1, 1))
        .execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3));
    let sot = sot_like(&fx.spec, &s_t1).unwrap();
    let pred = is_pred(&fx.spec, &s_t1).unwrap();
    let mut t = Table::new(
        "SOT-like criterion vs PRED on S_t1",
        &["criterion", "verdict"],
    );
    t.row(cells!["SOT-like (inspects only S)", sot]);
    t.row(cells!["PRED (inspects S̃)", pred]);
    ExperimentResult {
        id: "E12".into(),
        source: "§3.5 (SOT discussion)".into(),
        title: "A criterion that never inspects the completed schedule accepts the non-PRED S_t1"
            .into(),
        expectation: "SOT-like accepts, PRED rejects".into(),
        pass: sot && !pred,
        tables: vec![t],
    }
}

/// E13 — Throughput/latency of the schedulers across conflict densities.
pub fn e13_throughput() -> ExperimentResult {
    let mut t = Table::new(
        "Scheduler performance vs conflict density (16 processes, 10% failures, mean of 5 seeds)",
        &[
            "density",
            "scheduler",
            "makespan",
            "committed",
            "aborted",
            "latency p50",
            "waits",
        ],
    );
    let mut pass = true;
    for &density in &[0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut serial_makespan = 0.0;
        let mut pred_makespan = 0.0;
        for kind in [
            PolicyKind::Pred,
            PolicyKind::PredProtocol,
            PolicyKind::Conservative,
            PolicyKind::Serial,
        ] {
            let mut agg = txproc_sim::metrics::Metrics::new();
            let reps = 5;
            for seed in 0..reps {
                let w = generate(&WorkloadConfig {
                    seed,
                    processes: 16,
                    conflict_density: density,
                    failure_probability: 0.1,
                    ..WorkloadConfig::default()
                });
                let r = run(
                    &w,
                    RunConfig {
                        policy: kind,
                        seed,
                        ..RunConfig::default()
                    },
                );
                agg.merge(&r.metrics);
            }
            let makespan = agg.makespan as f64 / reps as f64;
            if kind == PolicyKind::Serial {
                serial_makespan = makespan;
            }
            if kind == PolicyKind::Pred {
                pred_makespan = makespan;
            }
            t.row(cells![
                format!("{density:.1}"),
                kind.label(),
                format!("{makespan:.0}"),
                agg.committed,
                agg.aborted,
                agg.latency_percentile(0.5).unwrap_or(0),
                agg.waits
            ]);
        }
        // Shape claim: PRED beats serial execution.
        if pred_makespan > serial_makespan {
            pass = false;
        }
    }
    ExperimentResult {
        id: "E13".into(),
        source: "extrapolated (the paper reports no numbers)".into(),
        title: "The PRED scheduler admits more parallelism than serial/conservative execution"
            .into(),
        expectation: "pred makespan ≤ serial makespan at every density".into(),
        pass,
        tables: vec![t],
    }
}

/// E14 — Correctness-violation rates under failures.
pub fn e14_violations() -> ExperimentResult {
    let mut t = Table::new(
        "Non-PRED history rate under failures (20 seeds, 6 processes, density 0.7, 30% failures)",
        &["scheduler", "runs", "non-PRED histories", "rate"],
    );
    let mut rates = std::collections::BTreeMap::new();
    for kind in [
        PolicyKind::Pred,
        PolicyKind::PredProtocol,
        PolicyKind::UnsafeCc,
        PolicyKind::Serial,
    ] {
        let mut violations = 0u32;
        let runs = 20u32;
        for seed in 0..u64::from(runs) {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 6,
                conflict_density: 0.7,
                failure_probability: 0.3,
                ..WorkloadConfig::default()
            });
            let r = run(
                &w,
                RunConfig {
                    policy: kind,
                    seed,
                    check_pred: true,
                    ..RunConfig::default()
                },
            );
            if r.pred_ok == Some(false) {
                violations += 1;
            }
        }
        rates.insert(kind.label(), violations);
        t.row(cells![
            kind.label(),
            runs,
            violations,
            format!("{:.0}%", violations as f64 * 100.0 / runs as f64)
        ]);
    }
    let pass = rates["pred"] == 0 && rates["serial"] == 0 && rates["unsafe-cc"] > 0;
    ExperimentResult {
        id: "E14".into(),
        source: "§2.2, Example 8 (extrapolated measurement)".into(),
        title: "Concurrency control alone is insufficient: the unsafe scheduler emits non-PRED histories".into(),
        expectation: "pred/serial: 0 violations; unsafe-cc: > 0".into(),
        pass,
        tables: vec![t],
    }
}

/// E15 — §3.6: parallelism gained by weak orders.
pub fn e15_weak_order() -> ExperimentResult {
    let mut t = Table::new(
        "Makespan of a chain of n conflicting activities (duration 10 each)",
        &["n", "strong order", "weak order", "speedup"],
    );
    let mut pass = true;
    for n in [2u32, 4, 8, 16] {
        let tasks: Vec<Task> = (0..n)
            .map(|i| Task {
                gid: txproc_core::ids::GlobalActivityId::new(
                    txproc_core::ids::ProcessId(i),
                    txproc_core::ids::ActivityId(0),
                ),
                duration: 10,
                subsystem: 0,
            })
            .collect();
        let constraints = |kind: OrderKind| -> Vec<OrderConstraint> {
            tasks
                .windows(2)
                .map(|w| OrderConstraint {
                    first: w[0].gid,
                    second: w[1].gid,
                    kind,
                })
                .collect()
        };
        let strong = makespan(&tasks, &constraints(OrderKind::Strong)).unwrap();
        let weak = makespan(&tasks, &constraints(OrderKind::Weak)).unwrap();
        if weak.makespan > strong.makespan {
            pass = false;
        }
        t.row(cells![
            n,
            strong.makespan,
            weak.makespan,
            format!("{:.2}x", strong.makespan as f64 / weak.makespan as f64)
        ]);
    }
    ExperimentResult {
        id: "E15".into(),
        source: "§3.6 (composite systems / weak orders)".into(),
        title: "Weak (commit-order) constraints let conflicting activities overlap".into(),
        expectation: "weak makespan ≤ strong makespan, gap grows with chain length".into(),
        pass,
        tables: vec![t],
    }
}

/// E16 — Crash recovery by completion replay (§3.3).
pub fn e16_crash_recovery() -> ExperimentResult {
    let mut t = Table::new(
        "Scheduler crash at event k, then recovery (seed 11, 6 processes)",
        &[
            "crash after",
            "active at crash",
            "compensations",
            "forward steps",
            "recovered history RED",
        ],
    );
    let mut pass = true;
    for crash_at in [1usize, 4, 8, 12, 20, 30] {
        let w = generate(&WorkloadConfig {
            seed: 11,
            processes: 6,
            conflict_density: 0.4,
            failure_probability: 0.1,
            ..WorkloadConfig::default()
        });
        let mut engine = Engine::new(&w, RunConfig::default());
        engine.run_until_history(crash_at);
        let image = engine.crash();
        let report = recover(&w, image).expect("recovery succeeds");
        let red = txproc_core::reduction::is_reducible(&w.spec, &report.history).unwrap();
        if !red {
            pass = false;
        }
        t.row(cells![
            crash_at,
            report.aborted.len(),
            report.compensations,
            report.forward,
            red
        ]);
    }
    ExperimentResult {
        id: "E16".into(),
        source: "§3.3 (group abort), Definition 8".into(),
        title: "After a scheduler crash, the group-abort completion yields a reducible history"
            .into(),
        expectation: "every recovered history is RED".into(),
        pass,
        tables: vec![t],
    }
}

/// E17 — Scalability with the number of concurrent processes.
pub fn e17_scalability() -> ExperimentResult {
    let mut t = Table::new(
        "Makespan vs number of processes (density 0.3, 10% failures)",
        &["processes", "scheduler", "makespan", "throughput/kilotick"],
    );
    let mut pass = true;
    for &n in &[4usize, 8, 16, 32] {
        let mut results = std::collections::BTreeMap::new();
        for kind in [PolicyKind::PredProtocol, PolicyKind::Serial] {
            let w = generate(&WorkloadConfig {
                seed: 3,
                processes: n,
                conflict_density: 0.3,
                failure_probability: 0.1,
                ..WorkloadConfig::default()
            });
            let r = run(
                &w,
                RunConfig {
                    policy: kind,
                    seed: 3,
                    ..RunConfig::default()
                },
            );
            results.insert(kind.label(), r.metrics.makespan);
            t.row(cells![
                n,
                kind.label(),
                r.metrics.makespan,
                format!("{:.2}", r.metrics.throughput_per_kilotick())
            ]);
        }
        if results["pred-protocol"] > results["serial"] {
            pass = false;
        }
    }
    ExperimentResult {
        id: "E17".into(),
        source: "extrapolated".into(),
        title: "The PRED protocol's advantage over serial execution grows with concurrency".into(),
        expectation: "pred-protocol makespan ≤ serial at every scale".into(),
        pass,
        tables: vec![t],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_experiments_pass() {
        for id in ["e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e12"] {
            let e = run_experiment(id).unwrap();
            assert!(e.pass, "{id} failed: {e:#?}");
        }
    }

    #[test]
    fn weak_order_experiment_passes() {
        assert!(e15_weak_order().pass);
    }

    #[test]
    fn crash_recovery_experiment_passes() {
        assert!(e16_crash_recovery().pass);
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("e99").is_none());
        assert_eq!(all_ids().len(), 17);
    }
}
