//! Minimal text-table rendering for experiment reports.

use serde::{Deserialize, Serialize};

/// A rendered experiment: a title, commentary, and one or more tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"E6"`.
    pub id: String,
    /// Paper source, e.g. `"Figure 6 / Examples 5-6"`.
    pub source: String,
    /// One-line description.
    pub title: String,
    /// What the paper claims / what we expect.
    pub expectation: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Whether the measured outcome matches the expectation.
    pub pass: bool,
}

/// One table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table caption.
    pub caption: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from headers.
    pub fn new(caption: impl Into<String>, header: &[&str]) -> Self {
        Self {
            caption: caption.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies every cell).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.caption));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("  | ");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!("{c:<w$} | "));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str("  |");
        for w in &widths {
            out.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a full experiment.
pub fn render_experiment(e: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== {} [{}] {} ==\n   source: {}\n   expectation: {}\n",
        e.id,
        if e.pass { "PASS" } else { "FAIL" },
        e.title,
        e.source,
        e.expectation
    ));
    for t in &e.tables {
        out.push('\n');
        out.push_str(&t.render());
    }
    out
}

/// Helper: stringify any Display list into cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*][..]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "column"]);
        t.row(cells!["x", 12]);
        t.row(cells!["longer", 3]);
        let s = t.render();
        assert!(s.contains("| a      | column |"));
        assert!(s.contains("| longer | 3      |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(cells!["only-one"]);
    }

    #[test]
    fn experiment_renders_with_status() {
        let e = ExperimentResult {
            id: "E0".into(),
            source: "none".into(),
            title: "demo".into(),
            expectation: "works".into(),
            tables: vec![],
            pass: true,
        };
        assert!(render_experiment(&e).contains("[PASS]"));
    }
}
