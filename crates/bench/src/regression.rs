//! The perf-regression gate: diffs a fresh scheduler bench report against a
//! committed baseline (`BENCH_baseline.json`), failing on per-point
//! throughput or latency deviations beyond the gate.
//!
//! ## Host-speed normalization
//!
//! CI machines differ in clock speed from the machine that recorded the
//! baseline, and a raw `current / baseline` comparison would fail on any
//! slower host. The gate therefore compares each run's ratio against the
//! **median ratio across all matched runs**: a uniformly slower (or faster)
//! host shifts every ratio by the same factor and cancels out, while a real
//! regression shows up as one or a few points deviating from the rest. A
//! change that slows *every* point uniformly is indistinguishable from a
//! slower host by construction — that case is covered by E24's absolute
//! overhead budget and by eyeballing the trend, not by this gate.
//!
//! Runs are keyed by `(mode, policy, processes, density, shards label,
//! runtime)` — plus an `/e{N}` suffix for epoch-mode runs (schema v7),
//! additively: per-event runs keep their old keys, so v7 reports still
//! match v5/v6 baselines on the per-event intersection. Sweep-point sets
//! may differ between baseline and current (smoke vs full): only the
//! intersection is compared, and the report says how many points matched.
//! The parser works on the loosely-typed [`Value`] tree, so it reads v5
//! through v7 reports.

use serde::Value;
use std::collections::BTreeMap;

/// Per-point throughput floor: a run's throughput ratio may fall at most
/// 20% below the cross-run median ratio.
pub const THROUGHPUT_FLOOR: f64 = 0.8;

/// Per-point latency ceiling: a run's p95 ratio may rise at most 30% above
/// the cross-run median ratio.
pub const P95_CEILING: f64 = 1.3;

/// One matched run with its normalized ratios.
#[derive(Debug, Clone)]
pub struct PointDiff {
    /// The run key (mode/policy/processes/density/shards/runtime).
    pub key: String,
    /// `current events_per_sec / baseline events_per_sec`.
    pub throughput_ratio: f64,
    /// `current latency_p95 / baseline latency_p95` (`None` when either
    /// side has no p95).
    pub p95_ratio: Option<f64>,
    /// Violation description, when the point breaches the gate.
    pub violation: Option<String>,
}

/// Outcome of one comparison.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// Matched (key-intersected) runs.
    pub points: Vec<PointDiff>,
    /// Keys present in the baseline but absent in the current report.
    pub unmatched_baseline: usize,
    /// Keys present in the current report but absent in the baseline.
    pub unmatched_current: usize,
    /// Median throughput ratio across matched runs (the host-speed factor).
    pub median_throughput_ratio: f64,
    /// Median p95 ratio across matched runs with latency on both sides.
    pub median_p95_ratio: Option<f64>,
}

impl RegressionReport {
    /// The gate verdict: true when no matched point breaches it.
    pub fn passed(&self) -> bool {
        self.points.iter().all(|p| p.violation.is_none())
    }

    /// Human-readable summary (one line per matched point plus a verdict).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "regression gate: {} matched runs (baseline-only {}, current-only {}), \
             median throughput ratio {:.3}\n",
            self.points.len(),
            self.unmatched_baseline,
            self.unmatched_current,
            self.median_throughput_ratio,
        ));
        for p in &self.points {
            let p95 = p
                .p95_ratio
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "  {} {} throughput x{:.3} p95 x{}\n",
                if p.violation.is_some() {
                    "FAIL"
                } else {
                    "ok  "
                },
                p.key,
                p.throughput_ratio,
                p95,
            ));
            if let Some(v) = &p.violation {
                out.push_str(&format!("       {v}\n"));
            }
        }
        out.push_str(if self.passed() {
            "verdict: PASS\n"
        } else {
            "verdict: FAIL\n"
        });
        out
    }
}

/// Comparison error: unparseable input or no overlapping runs.
#[derive(Debug)]
pub struct RegressionError(pub String);

impl std::fmt::Display for RegressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regression comparison failed: {}", self.0)
    }
}

impl std::error::Error for RegressionError {}

#[derive(Debug, Clone)]
struct RunPoint {
    events_per_sec: f64,
    latency_p95: Option<f64>,
}

fn field<'a>(map: &'a Value, name: &str) -> Option<&'a Value> {
    map.as_map()?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(f) => Some(*f),
        Value::I64(i) => Some(*i as f64),
        Value::U64(u) => Some(*u as f64),
        _ => None,
    }
}

/// Extracts the keyed end-to-end runs of a bench report. Duplicate keys
/// (repeated measurements of the same point, e.g. the ratio-pair reps) keep
/// the highest-throughput run, matching the bench's min-of-N/best-of-N
/// estimator discipline.
fn index_runs(report: &Value) -> Result<BTreeMap<String, RunPoint>, RegressionError> {
    let runs = field(report, "runs")
        .and_then(Value::as_seq)
        .ok_or_else(|| RegressionError("report has no `runs` array".into()))?;
    let mut out: BTreeMap<String, RunPoint> = BTreeMap::new();
    for run in runs {
        let mode = field(run, "mode").and_then(Value::as_str).unwrap_or("?");
        let policy = field(run, "policy").and_then(Value::as_str).unwrap_or("?");
        let processes = field(run, "processes").and_then(as_f64).unwrap_or(0.0);
        let density = field(run, "density").and_then(as_f64).unwrap_or(0.0);
        let shards = field(run, "shard_mode")
            .and_then(Value::as_str)
            .unwrap_or("-");
        let runtime = field(run, "runtime").and_then(Value::as_str).unwrap_or("-");
        let Some(eps) = field(run, "events_per_sec").and_then(as_f64) else {
            continue;
        };
        // Epoch-mode runs (schema v7) get their own keys; the field is
        // absent in older reports and 0 on per-event runs, both of which
        // keep the unsuffixed key.
        let epoch = field(run, "epoch").and_then(as_f64).unwrap_or(0.0);
        let mut key = format!("{mode}/{policy}/n{processes}/d{density}/{shards}/{runtime}");
        if epoch > 0.0 {
            key.push_str(&format!("/e{epoch}"));
        }
        // WAL-journaled runs (schema v8) get their own `/wal:`-suffixed
        // keys, one per durability policy; unlogged runs — `durability`
        // null or absent — keep their pre-v8 keys.
        if let Some(durability) = field(run, "durability").and_then(Value::as_str) {
            key.push_str(&format!("/wal:{durability}"));
        }
        let point = RunPoint {
            events_per_sec: eps,
            latency_p95: field(run, "latency_p95").and_then(as_f64),
        };
        match out.get(&key) {
            Some(prev) if prev.events_per_sec >= point.events_per_sec => {}
            _ => {
                out.insert(key, point);
            }
        }
    }
    if out.is_empty() {
        return Err(RegressionError("report has no usable runs".into()));
    }
    Ok(out)
}

fn median(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    Some(xs[xs.len() / 2])
}

/// Compares two bench-report JSON documents (baseline, current).
pub fn compare(baseline: &str, current: &str) -> Result<RegressionReport, RegressionError> {
    let base: Value = serde_json::from_str(baseline)
        .map_err(|e| RegressionError(format!("baseline does not parse: {e}")))?;
    let curr: Value = serde_json::from_str(current)
        .map_err(|e| RegressionError(format!("current report does not parse: {e}")))?;
    let base_runs = index_runs(&base)?;
    let curr_runs = index_runs(&curr)?;

    let mut matched: Vec<(String, f64, Option<f64>)> = Vec::new();
    for (key, b) in &base_runs {
        let Some(c) = curr_runs.get(key) else {
            continue;
        };
        let tput = c.events_per_sec / b.events_per_sec.max(1e-9);
        let p95 = match (b.latency_p95, c.latency_p95) {
            (Some(b95), Some(c95)) if b95 > 0.0 => Some(c95 / b95),
            _ => None,
        };
        matched.push((key.clone(), tput, p95));
    }
    if matched.is_empty() {
        return Err(RegressionError(
            "no runs with matching keys between baseline and current".into(),
        ));
    }
    let unmatched_baseline = base_runs.len() - matched.len();
    let unmatched_current = curr_runs.len() - matched.len();
    let med_tput =
        median(matched.iter().map(|(_, t, _)| *t).collect()).expect("matched is non-empty");
    let med_p95 = median(matched.iter().filter_map(|(_, _, p)| *p).collect());

    let points = matched
        .into_iter()
        .map(|(key, tput, p95)| {
            let mut violation = None;
            if tput < med_tput * THROUGHPUT_FLOOR {
                violation = Some(format!(
                    "throughput ratio {tput:.3} below {THROUGHPUT_FLOOR} x median ({:.3})",
                    med_tput * THROUGHPUT_FLOOR
                ));
            } else if let (Some(p95), Some(med)) = (p95, med_p95) {
                if p95 > med * P95_CEILING {
                    violation = Some(format!(
                        "p95 ratio {p95:.3} above {P95_CEILING} x median ({:.3})",
                        med * P95_CEILING
                    ));
                }
            }
            PointDiff {
                key,
                throughput_ratio: tput,
                p95_ratio: p95,
                violation,
            }
        })
        .collect();
    Ok(RegressionReport {
        points,
        unmatched_baseline,
        unmatched_current,
        median_throughput_ratio: med_tput,
        median_p95_ratio: med_p95,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(points: &[(&str, usize, f64, f64, f64)]) -> String {
        // (policy, processes, density, events_per_sec, latency_p95)
        let runs: Vec<String> = points
            .iter()
            .map(|(policy, n, d, eps, p95)| {
                format!(
                    "{{\"mode\":\"concurrent\",\"policy\":\"{policy}\",\"processes\":{n},\
                     \"density\":{d},\"shard_mode\":\"auto\",\"runtime\":\"events\",\
                     \"events_per_sec\":{eps},\"latency_p95\":{p95}}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"txproc-bench-scheduler/v6\",\"runs\":[{}]}}",
            runs.join(",")
        )
    }

    const BASE: &[(&str, usize, f64, f64, f64)] = &[
        ("pred", 8, 0.3, 10_000.0, 500.0),
        ("pred", 32, 0.3, 8_000.0, 900.0),
        ("pred", 128, 0.3, 6_000.0, 2_000.0),
        ("serial", 32, 0.3, 2_000.0, 4_000.0),
        ("pred", 32, 0.6, 5_000.0, 1_500.0),
    ];

    #[test]
    fn baseline_vs_itself_passes() {
        let b = report(BASE);
        let r = compare(&b, &b).expect("comparable");
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.points.len(), BASE.len());
        assert!((r.median_throughput_ratio - 1.0).abs() < 1e-9);
        assert!(r
            .points
            .iter()
            .all(|p| (p.throughput_ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn injected_single_point_slowdown_fails() {
        let b = report(BASE);
        // One point 25% slower; the rest unchanged → its ratio (0.75)
        // deviates beyond 0.8 x median (1.0).
        let mut worse = BASE.to_vec();
        worse[1].3 *= 0.75;
        let r = compare(&b, &report(&worse)).expect("comparable");
        assert!(!r.passed(), "{}", r.render());
        let bad: Vec<_> = r.points.iter().filter(|p| p.violation.is_some()).collect();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].key.contains("n32"), "{}", bad[0].key);
        assert!(bad[0].key.contains("d0.3"), "{}", bad[0].key);
    }

    #[test]
    fn uniform_host_slowdown_cancels_out() {
        // Every point 40% slower — a slower CI host, not a regression.
        let b = report(BASE);
        let scaled: Vec<_> = BASE
            .iter()
            .map(|&(p, n, d, eps, p95)| (p, n, d, eps * 0.6, p95 / 0.6))
            .collect();
        let r = compare(&b, &report(&scaled)).expect("comparable");
        assert!(r.passed(), "{}", r.render());
        assert!((r.median_throughput_ratio - 0.6).abs() < 1e-9);
    }

    #[test]
    fn injected_p95_inflation_fails() {
        let b = report(BASE);
        let mut worse = BASE.to_vec();
        worse[2].4 *= 1.5; // one point's p95 50% up, throughput unchanged
        let r = compare(&b, &report(&worse)).expect("comparable");
        assert!(!r.passed(), "{}", r.render());
        let bad: Vec<_> = r.points.iter().filter(|p| p.violation.is_some()).collect();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].violation.as_ref().unwrap().contains("p95"));
    }

    #[test]
    fn disjoint_sweeps_compare_on_intersection() {
        let b = report(BASE);
        let mut extended = BASE.to_vec();
        extended.push(("pred", 256, 0.3, 5_000.0, 3_000.0));
        let r = compare(&b, &report(&extended)).expect("comparable");
        assert!(r.passed());
        assert_eq!(r.points.len(), BASE.len());
        assert_eq!(r.unmatched_current, 1);
        assert_eq!(r.unmatched_baseline, 0);
    }

    #[test]
    fn epoch_runs_get_distinct_keys() {
        // The same sweep point per-event (no epoch field, as in pre-v7
        // reports) and in epoch mode must not collide: the epoch run gets
        // an `/e16`-suffixed key of its own.
        let doc = "{\"runs\":[\
            {\"mode\":\"engine\",\"policy\":\"pred\",\"processes\":32,\
             \"density\":0.6,\"events_per_sec\":1000.0,\"latency_p95\":500.0},\
            {\"mode\":\"engine\",\"policy\":\"pred\",\"processes\":32,\
             \"density\":0.6,\"epoch\":16,\"events_per_sec\":1500.0,\
             \"latency_p95\":400.0}]}";
        let r = compare(doc, doc).expect("comparable");
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.points.len(), 2);
        assert!(
            r.points.iter().any(|p| p.key.ends_with("/e16")),
            "epoch run key missing suffix: {:?}",
            r.points.iter().map(|p| &p.key).collect::<Vec<_>>()
        );
        assert!(r.points.iter().any(|p| !p.key.contains("/e")));
    }

    #[test]
    fn wal_runs_get_distinct_keys() {
        // The same epoch-16 sweep point unlogged and under two fsync
        // policies (schema v8): three distinct keys, no collisions — so a
        // durability regression is gated per policy, and v7 baselines
        // still match the unlogged run.
        let doc = "{\"runs\":[\
            {\"mode\":\"engine\",\"policy\":\"pred\",\"processes\":16,\
             \"density\":0.6,\"epoch\":16,\"durability\":null,\
             \"events_per_sec\":1000.0,\"latency_p95\":500.0},\
            {\"mode\":\"engine\",\"policy\":\"pred\",\"processes\":16,\
             \"density\":0.6,\"epoch\":16,\"durability\":\"fsync-epoch\",\
             \"events_per_sec\":900.0,\"latency_p95\":550.0},\
            {\"mode\":\"engine\",\"policy\":\"pred\",\"processes\":16,\
             \"density\":0.6,\"epoch\":16,\"durability\":\"fsync-1\",\
             \"events_per_sec\":200.0,\"latency_p95\":900.0}]}";
        let r = compare(doc, doc).expect("comparable");
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.points.len(), 3);
        assert!(r.points.iter().any(|p| p.key.ends_with("/wal:fsync-epoch")));
        assert!(r.points.iter().any(|p| p.key.ends_with("/wal:fsync-1")));
        assert!(
            r.points.iter().any(|p| !p.key.contains("/wal")),
            "unlogged run must keep its pre-v8 key"
        );
    }

    #[test]
    fn unparseable_or_disjoint_reports_error() {
        assert!(compare("not json", "{}").is_err());
        let b = report(BASE);
        let other = report(&[("conservative", 999, 0.9, 1.0, 1.0)]);
        assert!(compare(&b, &other).is_err() || !compare(&b, &other).unwrap().points.is_empty());
        // Fully disjoint keys: explicit error, not a silent pass.
        let r = compare(&b, &other);
        assert!(r.is_err(), "disjoint reports must not pass silently");
    }
}
