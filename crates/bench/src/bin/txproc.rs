//! `txproc` — command-line front end for the transactional process
//! management toolkit.
//!
//! ```text
//! txproc simulate  [--seed N] [--processes N] [--density F] [--failures F]
//!                  [--policy pred|pred-wait|pred-protocol|serial|conservative|unsafe-cc]
//!                  [--arrival-gap N] [--check]
//!                  [--runtime events|threads] [--workers N] [--shards auto|single|N]
//!                  # --runtime switches to the wall-clock concurrent driver
//! txproc generate  [--seed N] [--processes N] [--density F] [--json PATH]
//! txproc check     --scenario PATH.json        # {"spec": …, "history": …}
//! txproc demo      fig4a|fig4b|fig7|fig9       # PRED-check a paper schedule
//! txproc dot       p1|p2|p3|cim-construction|cim-production
//! txproc crash     [--seed N] [--at N]         # crash/recovery demo
//! txproc bench     [--smoke] [--out PATH] [--seed N] [--processes CSV]
//!                  [--density CSV] [--policy CSV] [--certifier batch|incremental]
//!                  [--arrival-gap N]           # perf trajectory → BENCH_scheduler.json
//!                  [--shards auto|single|N]    # concurrent-driver shard topology
//!                  [--clusters N]              # tenants in the sharding comparison
//!                  [--runtime events|threads] [--workers N]
//!                  [--open-processes CSV] [--open-gap US]  # Poisson open-arrival sweep
//! txproc trace     [--seed N] [--processes N] [--density F] [--failures F]
//!                  [--policy …] [--certifier …] [--arrival-gap N]
//!                  [--pid N] [--kind SUBSTR]   # filter the printed journal
//!                  [--explain PID]             # why was P blocked/aborted?
//!                  [--json PATH]               # JSONL event journal
//!                  [--chrome PATH]             # chrome://tracing / Perfetto
//!                  [--dot-dir DIR]             # per-step conflict-graph dots
//! txproc gauntlet  [--seeds N] [--scenario NAME] [--policy …] [--certifier …]
//!                  [--shards auto|single|N] [--runtime events|threads]
//!                  [--workers N] [--json PATH]
//!                  # run the named adversarial scenarios (engine + sharded
//!                  # concurrent) through the PRED / Proc-REC checkers and
//!                  # their acceptance envelopes; non-zero exit on failure
//! ```

use serde::Deserialize;
use txproc_bench::scenarios;
use txproc_core::dot::process_to_dot;
use txproc_core::fixtures::{cim_world, paper_world};
use txproc_core::ids::ProcessId;
use txproc_core::pred::check_pred;
use txproc_core::schedule::{render, Schedule};
use txproc_core::spec::Spec;
use txproc_engine::concurrent::{try_run_concurrent, ConcurrentConfig, RuntimeKind, ShardMode};
use txproc_engine::engine::{run, Engine, RunConfig};
use txproc_engine::policy::{CertifierKind, PolicyKind};
use txproc_engine::recovery::recover;
use txproc_sim::workload::{try_generate, WorkloadConfig};

/// Simple `--key value` argument map.
struct Args {
    values: std::collections::BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut values = std::collections::BTreeMap::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(key) = a.strip_prefix("--") {
                if key == "check" || key == "smoke" {
                    values.insert(key.to_string(), "true".to_string());
                } else {
                    i += 1;
                    let v = raw.get(i).ok_or_else(|| format!("--{key} needs a value"))?;
                    values.insert(key.to_string(), v.clone());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Args { values, positional })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    // `pred-scan` is deliberately not in `all()` (it duplicates
    // pred-protocol decisions); it stays selectable by name as the
    // pre-index perf baseline.
    if name == PolicyKind::PredScan.label() {
        return Ok(PolicyKind::PredScan);
    }
    PolicyKind::all()
        .into_iter()
        .find(|k| k.label() == name)
        .ok_or_else(|| format!("unknown policy: {name}"))
}

fn parse_certifier(name: &str) -> Result<CertifierKind, String> {
    CertifierKind::all()
        .into_iter()
        .find(|k| k.label() == name)
        .ok_or_else(|| format!("unknown certifier: {name} (expected batch|incremental)"))
}

fn parse_runtime(raw: &str) -> Result<RuntimeKind, String> {
    RuntimeKind::parse(raw)
        .ok_or_else(|| format!("invalid --runtime value: {raw} (want events|threads)"))
}

fn parse_shards(raw: &str) -> Result<ShardMode, String> {
    ShardMode::parse(raw)
        .ok_or_else(|| format!("invalid --shards value: {raw} (want auto|single|N)"))
}

fn parse_workers(args: &Args) -> Result<Option<usize>, String> {
    match args.values.get("workers") {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid --workers value: {raw}")),
    }
}

fn workload_from(args: &Args) -> Result<txproc_sim::workload::Workload, String> {
    try_generate(&WorkloadConfig {
        seed: args.get("seed", 42u64)?,
        processes: args.get("processes", 8usize)?,
        conflict_density: args.get("density", 0.3f64)?,
        failure_probability: args.get("failures", 0.1f64)?,
        ..WorkloadConfig::default()
    })
    .map_err(|e| e.to_string())
}

/// `simulate --runtime events|threads`: the wall-clock concurrent driver
/// instead of the virtual-time engine. Config errors (e.g. a workload past
/// the thread runtime's cap) surface as CLI errors naming the knob to turn.
fn simulate_concurrent(
    args: &Args,
    w: &txproc_sim::workload::Workload,
    policy: PolicyKind,
    certifier: CertifierKind,
    runtime: RuntimeKind,
) -> Result<(), String> {
    let shards = match args.values.get("shards") {
        Some(raw) => parse_shards(raw)?,
        None => ShardMode::Auto,
    };
    let r = try_run_concurrent(
        w,
        ConcurrentConfig {
            policy,
            seed: args.get("seed", 42u64)?,
            certifier,
            shards,
            runtime,
            workers: parse_workers(args)?,
            ..ConcurrentConfig::default()
        },
    )?;
    println!("policy:            {}", policy.label());
    println!("runtime:           {}", runtime.label());
    println!("shards:            {}", r.metrics.shards.len());
    println!(
        "committed/aborted: {}/{}",
        r.metrics.committed, r.metrics.aborted
    );
    println!("activities:        {}", r.metrics.activities);
    println!("compensations:     {}", r.metrics.compensations);
    println!(
        "latency p50/p95:   {:?}/{:?} µs",
        r.metrics.latency_percentile(0.5),
        r.metrics.latency_percentile(0.95)
    );
    if let Some(rt) = &r.metrics.runtime {
        println!("workers:           {}", rt.workers);
        println!("steps/repolls:     {}/{}", rt.steps, rt.repolls);
        println!("run-queue peak:    {}", rt.run_queue_peak);
        println!("in-flight peak:    {}", rt.in_flight_peak);
        println!(
            "sched delay p50/p95: {:?}/{:?} ns",
            rt.delay_percentile_ns(0.5),
            rt.delay_percentile_ns(0.95)
        );
        println!("worker utilization: {:.1}%", rt.utilization() * 100.0);
    }
    if args.flag("check") {
        let ok = txproc_core::pred::is_pred(&w.spec, &r.history).map_err(|e| e.to_string())?;
        println!("history PRED:      {ok}");
        if !ok {
            return Err("concurrent history is not PRED".to_string());
        }
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let w = workload_from(args)?;
    let policy = parse_policy(&args.get("policy", "pred".to_string())?)?;
    let certifier = parse_certifier(&args.get("certifier", "incremental".to_string())?)?;
    if let Some(raw) = args.values.get("runtime") {
        return simulate_concurrent(args, &w, policy, certifier, parse_runtime(raw)?);
    }
    let cfg = RunConfig {
        policy,
        seed: args.get("seed", 42u64)?,
        arrival_gap: args.get("arrival-gap", 0u64)?,
        check_pred: args.flag("check"),
        certifier,
        ..RunConfig::default()
    };
    let r = run(&w, cfg);
    println!("policy:            {}", policy.label());
    if policy.certified() {
        println!("certifier:         {}", certifier.label());
    }
    println!("makespan:          {}", r.metrics.makespan);
    println!(
        "committed/aborted: {}/{}",
        r.metrics.committed, r.metrics.aborted
    );
    println!("activities:        {}", r.metrics.activities);
    println!("compensations:     {}", r.metrics.compensations);
    println!("retries:           {}", r.metrics.retries);
    println!("deferred commits:  {}", r.metrics.deferred_commits);
    println!(
        "waits/rejections:  {}/{}",
        r.metrics.waits, r.metrics.rejections
    );
    println!(
        "latency p50/p95:   {:?}/{:?}",
        r.metrics.latency_percentile(0.5),
        r.metrics.latency_percentile(0.95)
    );
    if let Some(ok) = r.pred_ok {
        println!("history PRED:      {ok}");
    }
    if !r.stalled.is_empty() {
        return Err(format!("stalled processes: {:?}", r.stalled));
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let w = workload_from(args)?;
    println!("processes: {}", w.spec.process_count());
    for p in w.spec.processes() {
        let analysis = txproc_core::flex::FlexAnalysis::analyze(p, &w.spec.catalog);
        println!(
            "  {} ({} activities, guaranteed termination: {})",
            p.name,
            p.len(),
            analysis.has_guaranteed_termination()
        );
    }
    println!("services: {}", w.spec.catalog.len());
    println!(
        "declared conflicting pairs: {}",
        w.spec.conflicts.declared_pairs()
    );
    println!("subsystems: {}", w.deployment.subsystems().len());
    if let Some(path) = args.values.get("json") {
        let json = serde_json::to_string_pretty(&w.spec).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote spec to {path}");
    }
    Ok(())
}

/// On-disk scenario: a spec plus a history to check.
#[derive(Deserialize)]
struct Scenario {
    spec: Spec,
    history: Schedule,
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let path = args
        .values
        .get("scenario")
        .ok_or("check needs --scenario PATH")?;
    let raw = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let scenario: Scenario = serde_json::from_str(&raw).map_err(|e| e.to_string())?;
    print_pred_report(&scenario.spec, &scenario.history)
}

fn cmd_demo(args: &Args) -> Result<(), String> {
    let which = args
        .positional
        .first()
        .ok_or("demo needs a schedule name")?;
    let fx = paper_world();
    let s = match which.as_str() {
        "fig4a" => scenarios::figure4a_st2(&fx),
        "fig4b" => scenarios::figure4b_st2(&fx),
        "fig7" => scenarios::figure7(&fx),
        "fig9" => scenarios::figure9(&fx),
        other => return Err(format!("unknown demo schedule: {other}")),
    };
    print_pred_report(&fx.spec, &s)
}

fn print_pred_report(spec: &Spec, s: &Schedule) -> Result<(), String> {
    println!("history: {}", render(s));
    let serializable =
        txproc_core::serializability::is_serializable(spec, s).map_err(|e| e.to_string())?;
    println!("serializable: {serializable}");
    let report = check_pred(spec, s).map_err(|e| e.to_string())?;
    println!("reducible (RED): {}", report.reducible());
    println!("prefix-reducible (PRED): {}", report.pred);
    if let Some(k) = report.first_violation {
        println!("first violating prefix: {k} events");
    }
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let which = args.positional.first().ok_or("dot needs a process name")?;
    let out = match which.as_str() {
        "p1" | "p2" | "p3" => {
            let fx = paper_world();
            let p = match which.as_str() {
                "p1" => &fx.p1,
                "p2" => &fx.p2,
                _ => &fx.p3,
            };
            process_to_dot(p, &fx.spec)
        }
        "cim-construction" | "cim-production" => {
            let fx = cim_world();
            let p = if which == "cim-construction" {
                &fx.construction
            } else {
                &fx.production
            };
            process_to_dot(p, &fx.spec)
        }
        other => return Err(format!("unknown process: {other}")),
    };
    print!("{out}");
    Ok(())
}

fn parse_csv<T: std::str::FromStr>(raw: &str, what: &str) -> Result<Vec<T>, String> {
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("invalid {what} value: {s}"))
        })
        .collect()
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    use txproc_bench::perf::{run_scheduler_bench, SchedulerBenchConfig};
    let mut cfg = if args.flag("smoke") {
        SchedulerBenchConfig::smoke()
    } else {
        SchedulerBenchConfig::full()
    };
    cfg.seed = args.get("seed", cfg.seed)?;
    cfg.arrival_gap = args.get("arrival-gap", cfg.arrival_gap)?;
    if let Some(raw) = args.values.get("processes") {
        cfg.processes = parse_csv(raw, "--processes")?;
    }
    if let Some(raw) = args.values.get("density") {
        cfg.densities = parse_csv(raw, "--density")?;
    }
    if let Some(raw) = args.values.get("policy") {
        cfg.policies = raw
            .split(',')
            .map(|s| parse_policy(s.trim()))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(raw) = args.values.get("certifier") {
        cfg.certifier = parse_certifier(raw)?;
    }
    if let Some(raw) = args.values.get("shards") {
        cfg.shards = parse_shards(raw)?;
    }
    if let Some(raw) = args.values.get("runtime") {
        cfg.runtime = parse_runtime(raw)?;
    }
    cfg.workers = parse_workers(args)?.or(cfg.workers);
    if let Some(raw) = args.values.get("open-processes") {
        cfg.open_processes = parse_csv(raw, "--open-processes")?;
    }
    cfg.open_mean_gap_us = args.get("open-gap", cfg.open_mean_gap_us)?;
    cfg.sharding_clusters = args.get("clusters", cfg.sharding_clusters)?;
    let report = run_scheduler_bench(&cfg);
    for e in &report.runs {
        let shard = match &e.shard_mode {
            Some(m) => format!(
                " shards={m}/{} runtime={}",
                e.shards,
                e.runtime.as_deref().unwrap_or("?")
            ),
            None => String::new(),
        };
        println!(
            "{:<10} {:<14} n={:<4} d={:<4} {:>10.2} ms  {:>12.0} events/s  ({} committed, {} aborted){shard}",
            e.mode, e.policy, e.processes, e.density, e.wall_ms, e.events_per_sec,
            e.committed, e.aborted
        );
    }
    for p in &report.runtime_ratio {
        println!(
            "ratio      n={:<5} d={:<4} events {:>12.0} ev/s  threads {:>12.0} ev/s  {:>5.2}x",
            p.processes, p.density, p.events_per_sec_events, p.events_per_sec_threads, p.ratio
        );
    }
    for o in &report.open_runs {
        println!(
            "open       n={:<6} gap={}µs shards={} workers={} {:>10.2} ms  {:>12.0} events/s  \
             in-flight-peak={} pred-violations={} proc-rec-violations={} (verify {:.0} ms)",
            o.processes,
            o.mean_gap_us,
            o.shards,
            o.workers,
            o.wall_ms,
            o.events_per_sec,
            o.in_flight_peak,
            o.pred_violations,
            o.proc_rec_violations,
            o.verify_ms,
        );
    }
    for d in &report.decision {
        println!(
            "decision   live_ops={:<6} edges={:<5} indexed {:>9.0} ns/request  scan {:>9.0} ns/request",
            d.live_ops, d.edges, d.ns_per_request_indexed, d.ns_per_request_scan
        );
    }
    for t in &report.trace_overhead {
        println!(
            "trace      {:<14} n={:<4} d={:<4} {:>10.2} ms  ({:+.1}% vs untraced)",
            t.sink, t.processes, t.density, t.wall_ms, t.overhead_pct
        );
    }
    for n in &report.notes {
        println!("note: {n}");
    }
    let out = args
        .values
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_scheduler.json".to_string());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

/// Re-runs a seeded workload with the trace journal attached and renders
/// the scheduler's decisions: pretty-printed (filterable), as a JSONL
/// journal, as a Chrome-trace timeline, as per-step conflict-graph dot
/// snapshots, or as an `--explain` decision chain for one process.
fn cmd_trace(args: &Args) -> Result<(), String> {
    use txproc_core::trace::{chrome_trace, explain_process, to_jsonl, Journal};
    let w = workload_from(args)?;
    let policy = parse_policy(&args.get("policy", "pred".to_string())?)?;
    let certifier = parse_certifier(&args.get("certifier", "incremental".to_string())?)?;
    let cfg = RunConfig {
        policy,
        seed: args.get("seed", 42u64)?,
        arrival_gap: args.get("arrival-gap", 0u64)?,
        certifier,
        ..RunConfig::default()
    };
    let journal = Journal::new();
    let r = Engine::with_sink(&w, cfg, Box::new(journal.clone())).run();
    let records = journal.snapshot();

    if let Some(path) = args.values.get("json") {
        std::fs::write(path, to_jsonl(&records)).map_err(|e| e.to_string())?;
        println!("wrote {} trace records to {path}", records.len());
    }
    if let Some(path) = args.values.get("chrome") {
        std::fs::write(path, chrome_trace(&records)).map_err(|e| e.to_string())?;
        println!("wrote chrome trace to {path} (load in chrome://tracing or Perfetto)");
    }
    if let Some(dir) = args.values.get("dot-dir") {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let mut prefix = Schedule::new();
        for (i, e) in r.history.events().iter().enumerate() {
            prefix.push(e.clone());
            let dot = txproc_core::dot::conflict_graph_to_dot(&w.spec, &prefix)
                .map_err(|e| e.to_string())?;
            let path = std::path::Path::new(dir).join(format!("step_{:03}.dot", i + 1));
            std::fs::write(&path, dot).map_err(|e| e.to_string())?;
        }
        println!(
            "wrote {} conflict-graph snapshots to {dir}",
            r.history.len()
        );
    }
    if let Some(raw) = args.values.get("explain") {
        let pid = ProcessId(
            raw.parse()
                .map_err(|_| format!("invalid --explain pid: {raw}"))?,
        );
        print!("{}", explain_process(&records, pid));
        return Ok(());
    }
    let pid_filter: Option<ProcessId> = match args.values.get("pid") {
        Some(raw) => Some(ProcessId(
            raw.parse().map_err(|_| format!("invalid --pid: {raw}"))?,
        )),
        None => None,
    };
    let kind_filter = args.values.get("kind");
    let mut shown = 0usize;
    for rec in &records {
        if let Some(p) = pid_filter {
            if !rec.event.mentions(p) {
                continue;
            }
        }
        if let Some(k) = kind_filter {
            if !rec.event.kind().contains(k.as_str()) {
                continue;
            }
        }
        println!("{rec}");
        shown += 1;
    }
    println!(
        "-- {shown} of {} records (history: {} events, {} committed, {} aborted)",
        records.len(),
        r.history.len(),
        r.metrics.committed,
        r.metrics.aborted
    );
    Ok(())
}

/// Runs the scenario gauntlet: every named scenario (or one, with
/// `--scenario`) over `--seeds` seeds through engine and sharded-concurrent
/// runs, each history checked for PRED and Proc-REC, the aggregate checked
/// against the scenario's acceptance envelope. Errors (exit 1) when any
/// scenario fails.
fn cmd_gauntlet(args: &Args) -> Result<(), String> {
    use txproc_bench::scenarios::{run_scenario, GauntletConfig};
    let mut cfg = GauntletConfig::smoke();
    cfg.seeds = args.get("seeds", cfg.seeds)?;
    cfg.seed_base = args.get("seed-base", cfg.seed_base)?;
    cfg.policy = parse_policy(&args.get("policy", cfg.policy.label().to_string())?)?;
    cfg.certifier = parse_certifier(&args.get("certifier", cfg.certifier.label().to_string())?)?;
    if let Some(raw) = args.values.get("shards") {
        cfg.shards = parse_shards(raw)?;
    }
    if let Some(raw) = args.values.get("runtime") {
        cfg.runtime = parse_runtime(raw)?;
    }
    cfg.workers = parse_workers(args)?.or(cfg.workers);
    let scenarios =
        match args.values.get("scenario") {
            Some(name) => vec![txproc_sim::scenario::find(name)
                .ok_or_else(|| format!("unknown scenario: {name}"))?],
            None => txproc_sim::scenario::registry(),
        };
    let mut failed = Vec::new();
    let mut reports = Vec::new();
    for s in &scenarios {
        let report = run_scenario(s, &cfg);
        for m in &report.modes {
            let mode_label = match &m.runtime {
                Some(rt) => format!("{}/{rt}", m.mode),
                None => m.mode.to_string(),
            };
            println!(
                "{:<15} {:<16} seeds={:<4} commit-rate={:.3} p50={:?} p95={:?} pred-violations={} proc-rec-violations={} [{}] ({:.0} ms)",
                report.name,
                mode_label,
                m.runs,
                m.commit_rate,
                m.latency_p50,
                m.latency_p95,
                m.pred_violations,
                m.proc_rec_violations,
                if m.envelope_breaches.is_empty() {
                    "envelope ok".to_string()
                } else {
                    m.envelope_breaches.join("; ")
                },
                m.wall_ms,
            );
        }
        if !report.pass {
            failed.push(report.name.clone());
        }
        reports.push(report);
    }
    if let Some(path) = args.values.get("json") {
        let json = serde_json::to_string_pretty(&reports).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if failed.is_empty() {
        println!(
            "gauntlet: all {} scenario(s) passed over {} seed(s)",
            reports.len(),
            cfg.seeds
        );
        Ok(())
    } else {
        Err(format!("gauntlet failures: {}", failed.join(", ")))
    }
}

fn cmd_crash(args: &Args) -> Result<(), String> {
    let w = workload_from(args)?;
    let at = args.get("at", 8usize)?;
    let mut engine = Engine::new(&w, RunConfig::default());
    engine.run_until_history(at);
    println!("history at crash: {}", render(engine.history()));
    let report = recover(&w, engine.crash()).map_err(|e| e.to_string())?;
    println!(
        "recovered: {} aborted, {} compensations, {} forward steps, {} 2PC groups resolved",
        report.aborted.len(),
        report.compensations,
        report.forward,
        report.resolved_groups
    );
    let red = txproc_core::reduction::is_reducible(&w.spec, &report.history)
        .map_err(|e| e.to_string())?;
    println!("recovered history RED: {red}");
    Ok(())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!(
            "usage: txproc <simulate|generate|check|demo|dot|crash|bench|trace|gauntlet> [options]"
        );
        std::process::exit(2);
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "generate" => cmd_generate(&args),
        "check" => cmd_check(&args),
        "demo" => cmd_demo(&args),
        "dot" => cmd_dot(&args),
        "crash" => cmd_crash(&args),
        "bench" => cmd_bench(&args),
        "trace" => cmd_trace(&args),
        "gauntlet" => cmd_gauntlet(&args),
        other => Err(format!("unknown command: {other}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Args {
        Args::parse(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["--seed", "7", "--density", "0.4", "fig7", "--check"]);
        assert_eq!(a.get("seed", 0u64).unwrap(), 7);
        assert!((a.get("density", 0.0f64).unwrap() - 0.4).abs() < 1e-9);
        assert_eq!(a.positional, vec!["fig7"]);
        assert!(a.flag("check"));
        assert!(!a.flag("json"));
        assert_eq!(a.get("processes", 8usize).unwrap(), 8);
    }

    #[test]
    fn invalid_value_reported() {
        let a = args(&["--seed", "x"]);
        assert!(a.get("seed", 0u64).is_err());
    }

    #[test]
    fn missing_value_reported() {
        let raw = vec!["--seed".to_string()];
        assert!(Args::parse(&raw).is_err());
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(parse_policy("pred").unwrap(), PolicyKind::Pred);
        assert_eq!(parse_policy("unsafe-cc").unwrap(), PolicyKind::UnsafeCc);
        assert_eq!(parse_policy("pred-scan").unwrap(), PolicyKind::PredScan);
        assert!(parse_policy("bogus").is_err());
    }

    #[test]
    fn bench_smoke_writes_report() {
        let out = std::env::temp_dir().join("txproc_bench_smoke_test.json");
        let a = args(&[
            "--smoke",
            "--processes",
            "5",
            "--policy",
            "pred-protocol,pred-scan",
            "--out",
            out.to_str().unwrap(),
        ]);
        cmd_bench(&a).unwrap();
        let raw = std::fs::read_to_string(&out).unwrap();
        assert!(raw.contains("txproc-bench-scheduler/v5"));
        assert!(raw.contains("pred-scan"));
        assert!(raw.contains("zipf-hotspot"));
        assert!(raw.contains("runtime_ratio"));
        assert!(raw.contains("open_runs"));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn simulate_concurrent_runtimes() {
        let events = args(&[
            "--seed",
            "3",
            "--processes",
            "6",
            "--runtime",
            "events",
            "--check",
        ]);
        cmd_simulate(&events).unwrap();
        let threads = args(&[
            "--seed",
            "3",
            "--processes",
            "6",
            "--runtime",
            "threads",
            "--workers",
            "2",
        ]);
        cmd_simulate(&threads).unwrap();
        let bad = args(&["--runtime", "fibers"]);
        assert!(cmd_simulate(&bad).is_err());
        // The thread runtime's process cap surfaces as a CLI error naming
        // the knob that lifts it.
        let capped = args(&["--processes", "600", "--runtime", "threads"]);
        let err = cmd_simulate(&capped).unwrap_err();
        assert!(err.contains("--runtime events"), "{err}");
    }

    #[test]
    fn gauntlet_runs_one_scenario() {
        let out = std::env::temp_dir().join("txproc_gauntlet_cli_test.json");
        let a = args(&[
            "--scenario",
            "zipf-hotspot",
            "--seeds",
            "2",
            "--json",
            out.to_str().unwrap(),
        ]);
        cmd_gauntlet(&a).unwrap();
        let raw = std::fs::read_to_string(&out).unwrap();
        assert!(raw.contains("zipf-hotspot"));
        assert!(raw.contains("pred_violations"));
        std::fs::remove_file(&out).ok();

        let bad = args(&["--scenario", "no-such"]);
        assert!(cmd_gauntlet(&bad).is_err());
    }

    #[test]
    fn invalid_workload_config_is_a_cli_error() {
        let a = args(&["--processes", "0"]);
        let err = cmd_simulate(&a).unwrap_err();
        assert!(err.contains("processes"), "{err}");
    }

    #[test]
    fn demo_schedules_check_cleanly() {
        for which in ["fig4a", "fig4b", "fig7", "fig9"] {
            let a = Args {
                values: Default::default(),
                positional: vec![which.to_string()],
            };
            cmd_demo(&a).unwrap();
        }
    }

    #[test]
    fn dot_export_runs() {
        for which in ["p1", "p2", "p3", "cim-construction", "cim-production"] {
            let a = Args {
                values: Default::default(),
                positional: vec![which.to_string()],
            };
            cmd_dot(&a).unwrap();
        }
    }

    #[test]
    fn trace_exports_and_explains() {
        let dir = std::env::temp_dir().join("txproc_trace_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("trace.jsonl");
        let chrome = dir.join("trace.json");
        let dots = dir.join("dots");
        let base = [
            "--seed",
            "4",
            "--processes",
            "6",
            "--density",
            "0.5",
            "--failures",
            "0.2",
        ];
        let mut export = base.to_vec();
        export.extend([
            "--json",
            json.to_str().unwrap(),
            "--chrome",
            chrome.to_str().unwrap(),
            "--dot-dir",
            dots.to_str().unwrap(),
        ]);
        cmd_trace(&args(&export)).unwrap();
        let jsonl = std::fs::read_to_string(&json).unwrap();
        assert!(jsonl.lines().count() > 0);
        assert!(std::fs::read_to_string(&chrome)
            .unwrap()
            .contains("traceEvents"));
        assert!(std::fs::read_dir(&dots).unwrap().count() > 0);
        let mut explain = base.to_vec();
        explain.extend(["--explain", "0"]);
        cmd_trace(&args(&explain)).unwrap();
        let mut filtered = base.to_vec();
        filtered.extend(["--pid", "1", "--kind", "request"]);
        cmd_trace(&args(&filtered)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_and_crash_run() {
        let a = args(&["--seed", "3", "--processes", "4", "--check"]);
        cmd_simulate(&a).unwrap();
        cmd_crash(&a).unwrap();
        cmd_generate(&a).unwrap();
    }
}
