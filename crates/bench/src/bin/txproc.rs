//! `txproc` — command-line front end for the transactional process
//! management toolkit.
//!
//! ```text
//! txproc simulate  [--seed N] [--processes N] [--density F] [--failures F]
//!                  [--policy pred|pred-wait|pred-protocol|serial|conservative|unsafe-cc]
//!                  [--arrival-gap N] [--check] [--epoch N]
//!                  [--runtime events|threads] [--workers N] [--shards auto|single|N]
//!                  [--wal PATH] [--durability none|buffered|fsync-N|fsync-epoch]
//!                  [--snapshot-every N]
//!                  # --runtime switches to the wall-clock concurrent driver
//!                  # --epoch N batches certification/commit in N-event
//!                  # epochs (0 = per-event path, the default)
//!                  # --wal journals the run write-ahead to PATH; --durability
//!                  # picks the fsync policy (default fsync-epoch)
//! txproc generate  [--seed N] [--processes N] [--density F] [--json PATH]
//! txproc check     --scenario PATH.json        # {"spec": …, "history": …}
//! txproc demo      fig4a|fig4b|fig7|fig9       # PRED-check a paper schedule
//! txproc dot       p1|p2|p3|cim-construction|cim-production
//! txproc crash     [--seed N] [--at N] [--epoch N]  # crash/recovery demo
//!                  [--wal PATH] [--durability …] [--snapshot-every N]
//!                  # with --wal the in-memory image is discarded and the
//!                  # scheduler state is rebuilt from the log alone
//! txproc bench     [--smoke] [--out PATH] [--seed N] [--processes CSV]
//!                  [--density CSV] [--policy CSV] [--certifier batch|incremental]
//!                  [--arrival-gap N]           # perf trajectory → BENCH_scheduler.json
//!                  [--shards auto|single|N]    # concurrent-driver shard topology
//!                  [--clusters N]              # tenants in the sharding comparison
//!                  [--runtime events|threads] [--workers N]
//!                  [--open-processes CSV] [--open-gap US]  # Poisson open-arrival sweep
//!                  [--epoch N]                 # epoch size of the epoch sweep entries
//!                  [--durability-processes N]  # E26 durability sweep size (0 = skip)
//! txproc trace     [--seed N] [--processes N] [--density F] [--failures F]
//!                  [--policy …] [--certifier …] [--arrival-gap N]
//!                  [--pid N] [--kind SUBSTR]   # filter the printed journal
//!                  [--explain PID]             # why was P blocked/aborted?
//!                  [--json PATH]               # JSONL event journal
//!                  [--chrome PATH]             # chrome://tracing / Perfetto
//!                  [--dot-dir DIR]             # per-step conflict-graph dots
//!                  [--trace-sample N]          # keep every Nth process chain
//! txproc stats     [--seed N] [--processes N] [--density F] [--failures F]
//!                  [--policy …] [--certifier …] [--arrival-gap N]
//!                  [--runtime events|threads] [--shards …] [--workers N]
//!                  [--prom PATH]               # Prometheus text (default: stdout)
//!                  [--timeseries PATH]         # sampled series as JSON
//!                  [--samples N]               # time-series ring capacity
//!                  [--sample-ms N]             # wall sampler period (concurrent)
//!                  [--sample-events N]         # virtual-time period (engine)
//! txproc top       [--seed N] [--processes N] [--density F] [--failures F]
//!                  [--policy …] [--certifier …] [--runtime events|threads]
//!                  [--shards …] [--workers N] [--refresh-ms N]
//!                  # live per-shard/per-worker metrics while the
//!                  # concurrent driver runs the workload
//! txproc regression [--baseline PATH] [--current PATH]
//!                  # perf-regression gate: diff a fresh BENCH_scheduler.json
//!                  # against the committed BENCH_baseline.json; exit 1 on
//!                  # per-point throughput/latency deviations past the gate
//! txproc gauntlet  [--seeds N] [--scenario NAME] [--policy …] [--certifier …]
//!                  [--shards auto|single|N] [--runtime events|threads]
//!                  [--workers N] [--epoch N] [--json PATH]
//!                  # run the named adversarial scenarios (engine + sharded
//!                  # concurrent) through the PRED / Proc-REC checkers and
//!                  # their acceptance envelopes; non-zero exit on failure
//! ```

use serde::Deserialize;
use txproc_bench::scenarios;
use txproc_core::dot::process_to_dot;
use txproc_core::fixtures::{cim_world, paper_world};
use txproc_core::ids::ProcessId;
use txproc_core::pred::check_pred;
use txproc_core::schedule::{render, Schedule};
use txproc_core::spec::Spec;
use txproc_core::wal::{DurabilityPolicy, FileWal, WalWriter};
use txproc_engine::concurrent::{ConcurrentConfig, RuntimeKind, ShardMode};
use txproc_engine::engine::{Engine, RunConfig};
use txproc_engine::policy::{CertifierKind, PolicyKind};
use txproc_engine::recovery::{recover, Recovery, RecoverySource};
use txproc_engine::RunBuilder;
use txproc_sim::workload::{try_generate, WorkloadConfig};

/// Simple `--key value` argument map.
struct Args {
    values: std::collections::BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut values = std::collections::BTreeMap::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(key) = a.strip_prefix("--") {
                if key == "check" || key == "smoke" {
                    values.insert(key.to_string(), "true".to_string());
                } else {
                    i += 1;
                    let v = raw.get(i).ok_or_else(|| format!("--{key} needs a value"))?;
                    values.insert(key.to_string(), v.clone());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Args { values, positional })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    // `pred-scan` is deliberately not in `all()` (it duplicates
    // pred-protocol decisions); it stays selectable by name as the
    // pre-index perf baseline.
    if name == PolicyKind::PredScan.label() {
        return Ok(PolicyKind::PredScan);
    }
    PolicyKind::all()
        .into_iter()
        .find(|k| k.label() == name)
        .ok_or_else(|| format!("unknown policy: {name}"))
}

fn parse_certifier(name: &str) -> Result<CertifierKind, String> {
    CertifierKind::all()
        .into_iter()
        .find(|k| k.label() == name)
        .ok_or_else(|| format!("unknown certifier: {name} (expected batch|incremental)"))
}

fn parse_runtime(raw: &str) -> Result<RuntimeKind, String> {
    RuntimeKind::parse(raw)
        .ok_or_else(|| format!("invalid --runtime value: {raw} (want events|threads)"))
}

fn parse_shards(raw: &str) -> Result<ShardMode, String> {
    ShardMode::parse(raw)
        .ok_or_else(|| format!("invalid --shards value: {raw} (want auto|single|N)"))
}

fn parse_workers(args: &Args) -> Result<Option<usize>, String> {
    match args.values.get("workers") {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid --workers value: {raw}")),
    }
}

fn workload_from(args: &Args) -> Result<txproc_sim::workload::Workload, String> {
    try_generate(&WorkloadConfig {
        seed: args.get("seed", 42u64)?,
        processes: args.get("processes", 8usize)?,
        conflict_density: args.get("density", 0.3f64)?,
        failure_probability: args.get("failures", 0.1f64)?,
        ..WorkloadConfig::default()
    })
    .map_err(|e| e.to_string())
}

/// `simulate --runtime events|threads`: the wall-clock concurrent driver
/// instead of the virtual-time engine. Config errors (e.g. a workload past
/// the thread runtime's cap) surface as CLI errors naming the knob to turn.
/// Parses the shared WAL options: `--wal PATH` turns journaling on,
/// `--durability` picks the fsync policy (default `fsync-epoch`),
/// `--snapshot-every N` the engine snapshot cadence (default 64).
fn parse_wal(args: &Args) -> Result<Option<(std::path::PathBuf, DurabilityPolicy, usize)>, String> {
    let Some(path) = args.values.get("wal") else {
        return Ok(None);
    };
    let raw = args.get("durability", "fsync-epoch".to_string())?;
    let policy = DurabilityPolicy::parse(&raw).ok_or_else(|| {
        format!("unknown durability policy `{raw}` (none|buffered|fsync-N|fsync-epoch)")
    })?;
    Ok(Some((
        path.into(),
        policy,
        args.get("snapshot-every", 64usize)?,
    )))
}

fn open_wal(
    path: &std::path::Path,
    policy: DurabilityPolicy,
    seed: u64,
) -> Result<WalWriter, String> {
    let file = FileWal::create(path).map_err(|e| format!("create WAL {}: {e}", path.display()))?;
    Ok(WalWriter::new(Box::new(file), policy, seed))
}

fn simulate_concurrent(
    args: &Args,
    w: &txproc_sim::workload::Workload,
    policy: PolicyKind,
    certifier: CertifierKind,
    runtime: RuntimeKind,
) -> Result<(), String> {
    let shards = match args.values.get("shards") {
        Some(raw) => parse_shards(raw)?,
        None => ShardMode::Auto,
    };
    let seed = args.get("seed", 42u64)?;
    let wal = parse_wal(args)?;
    let mut builder = RunBuilder::new(w).concurrent(ConcurrentConfig {
        policy,
        seed,
        certifier,
        shards,
        runtime,
        workers: parse_workers(args)?,
        epoch: args.get("epoch", 0usize)?,
        ..ConcurrentConfig::default()
    });
    if let Some((path, dpolicy, snapshot_every)) = &wal {
        builder = builder.durability(open_wal(path, *dpolicy, seed)?, *snapshot_every);
    }
    let r = builder.try_run()?.into_concurrent();
    println!("policy:            {}", policy.label());
    println!("runtime:           {}", runtime.label());
    println!("shards:            {}", r.metrics.shards.len());
    if r.metrics.epoch_batches > 0 {
        println!(
            "epoch batches:     {} ({} events)",
            r.metrics.epoch_batches, r.metrics.epoch_events
        );
    }
    println!(
        "committed/aborted: {}/{}",
        r.metrics.committed, r.metrics.aborted
    );
    println!("activities:        {}", r.metrics.activities);
    println!("compensations:     {}", r.metrics.compensations);
    println!(
        "latency p50/p95:   {:?}/{:?} µs",
        r.metrics.latency_percentile(0.5),
        r.metrics.latency_percentile(0.95)
    );
    if let Some(rt) = &r.metrics.runtime {
        println!("workers:           {}", rt.workers);
        println!("steps/repolls:     {}/{}", rt.steps, rt.repolls);
        println!("run-queue peak:    {}", rt.run_queue_peak);
        println!("in-flight peak:    {}", rt.in_flight_peak);
        println!(
            "sched delay p50/p95: {:?}/{:?} ns",
            rt.delay_percentile_ns(0.5),
            rt.delay_percentile_ns(0.95)
        );
        println!("worker utilization: {:.1}%", rt.utilization() * 100.0);
    }
    if args.flag("check") {
        let ok = txproc_core::pred::is_pred(&w.spec, &r.history).map_err(|e| e.to_string())?;
        println!("history PRED:      {ok}");
        if !ok {
            return Err("concurrent history is not PRED".to_string());
        }
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let w = workload_from(args)?;
    let policy = parse_policy(&args.get("policy", "pred".to_string())?)?;
    let certifier = parse_certifier(&args.get("certifier", "incremental".to_string())?)?;
    if let Some(raw) = args.values.get("runtime") {
        return simulate_concurrent(args, &w, policy, certifier, parse_runtime(raw)?);
    }
    let seed = args.get("seed", 42u64)?;
    let cfg = RunConfig {
        policy,
        seed,
        arrival_gap: args.get("arrival-gap", 0u64)?,
        check_pred: args.flag("check"),
        certifier,
        epoch: args.get("epoch", 0usize)?,
        ..RunConfig::default()
    };
    let wal = parse_wal(args)?;
    let mut builder = RunBuilder::new(&w).config(cfg);
    if let Some((path, dpolicy, snapshot_every)) = &wal {
        builder = builder.durability(open_wal(path, *dpolicy, seed)?, *snapshot_every);
    }
    let r = builder.try_run()?.into_engine();
    println!("policy:            {}", policy.label());
    if policy.certified() {
        println!("certifier:         {}", certifier.label());
    }
    println!("makespan:          {}", r.metrics.makespan);
    println!(
        "committed/aborted: {}/{}",
        r.metrics.committed, r.metrics.aborted
    );
    println!("activities:        {}", r.metrics.activities);
    println!("compensations:     {}", r.metrics.compensations);
    println!("retries:           {}", r.metrics.retries);
    println!("deferred commits:  {}", r.metrics.deferred_commits);
    if r.metrics.epoch_batches > 0 {
        println!(
            "epoch batches:     {} ({} events)",
            r.metrics.epoch_batches, r.metrics.epoch_events
        );
    }
    println!(
        "waits/rejections:  {}/{}",
        r.metrics.waits, r.metrics.rejections
    );
    println!(
        "latency p50/p95:   {:?}/{:?}",
        r.metrics.latency_percentile(0.5),
        r.metrics.latency_percentile(0.95)
    );
    if let Some(ok) = r.pred_ok {
        println!("history PRED:      {ok}");
    }
    if let Some((path, dpolicy, _)) = &wal {
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!(
            "wal:               {} ({}, {bytes} bytes)",
            path.display(),
            dpolicy.label()
        );
    }
    if !r.stalled.is_empty() {
        return Err(format!("stalled processes: {:?}", r.stalled));
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let w = workload_from(args)?;
    println!("processes: {}", w.spec.process_count());
    for p in w.spec.processes() {
        let analysis = txproc_core::flex::FlexAnalysis::analyze(p, &w.spec.catalog);
        println!(
            "  {} ({} activities, guaranteed termination: {})",
            p.name,
            p.len(),
            analysis.has_guaranteed_termination()
        );
    }
    println!("services: {}", w.spec.catalog.len());
    println!(
        "declared conflicting pairs: {}",
        w.spec.conflicts.declared_pairs()
    );
    println!("subsystems: {}", w.deployment.subsystems().len());
    if let Some(path) = args.values.get("json") {
        let json = serde_json::to_string_pretty(&w.spec).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote spec to {path}");
    }
    Ok(())
}

/// On-disk scenario: a spec plus a history to check.
#[derive(Deserialize)]
struct Scenario {
    spec: Spec,
    history: Schedule,
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let path = args
        .values
        .get("scenario")
        .ok_or("check needs --scenario PATH")?;
    let raw = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let scenario: Scenario = serde_json::from_str(&raw).map_err(|e| e.to_string())?;
    print_pred_report(&scenario.spec, &scenario.history)
}

fn cmd_demo(args: &Args) -> Result<(), String> {
    let which = args
        .positional
        .first()
        .ok_or("demo needs a schedule name")?;
    let fx = paper_world();
    let s = match which.as_str() {
        "fig4a" => scenarios::figure4a_st2(&fx),
        "fig4b" => scenarios::figure4b_st2(&fx),
        "fig7" => scenarios::figure7(&fx),
        "fig9" => scenarios::figure9(&fx),
        other => return Err(format!("unknown demo schedule: {other}")),
    };
    print_pred_report(&fx.spec, &s)
}

fn print_pred_report(spec: &Spec, s: &Schedule) -> Result<(), String> {
    println!("history: {}", render(s));
    let serializable =
        txproc_core::serializability::is_serializable(spec, s).map_err(|e| e.to_string())?;
    println!("serializable: {serializable}");
    let report = check_pred(spec, s).map_err(|e| e.to_string())?;
    println!("reducible (RED): {}", report.reducible());
    println!("prefix-reducible (PRED): {}", report.pred);
    if let Some(k) = report.first_violation {
        println!("first violating prefix: {k} events");
    }
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let which = args.positional.first().ok_or("dot needs a process name")?;
    let out = match which.as_str() {
        "p1" | "p2" | "p3" => {
            let fx = paper_world();
            let p = match which.as_str() {
                "p1" => &fx.p1,
                "p2" => &fx.p2,
                _ => &fx.p3,
            };
            process_to_dot(p, &fx.spec)
        }
        "cim-construction" | "cim-production" => {
            let fx = cim_world();
            let p = if which == "cim-construction" {
                &fx.construction
            } else {
                &fx.production
            };
            process_to_dot(p, &fx.spec)
        }
        other => return Err(format!("unknown process: {other}")),
    };
    print!("{out}");
    Ok(())
}

fn parse_csv<T: std::str::FromStr>(raw: &str, what: &str) -> Result<Vec<T>, String> {
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("invalid {what} value: {s}"))
        })
        .collect()
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    use txproc_bench::perf::{run_scheduler_bench, SchedulerBenchConfig};
    let mut cfg = if args.flag("smoke") {
        SchedulerBenchConfig::smoke()
    } else {
        SchedulerBenchConfig::full()
    };
    cfg.seed = args.get("seed", cfg.seed)?;
    cfg.arrival_gap = args.get("arrival-gap", cfg.arrival_gap)?;
    if let Some(raw) = args.values.get("processes") {
        cfg.processes = parse_csv(raw, "--processes")?;
    }
    if let Some(raw) = args.values.get("density") {
        cfg.densities = parse_csv(raw, "--density")?;
    }
    if let Some(raw) = args.values.get("policy") {
        cfg.policies = raw
            .split(',')
            .map(|s| parse_policy(s.trim()))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(raw) = args.values.get("certifier") {
        cfg.certifier = parse_certifier(raw)?;
    }
    if let Some(raw) = args.values.get("shards") {
        cfg.shards = parse_shards(raw)?;
    }
    if let Some(raw) = args.values.get("runtime") {
        cfg.runtime = parse_runtime(raw)?;
    }
    cfg.workers = parse_workers(args)?.or(cfg.workers);
    if let Some(raw) = args.values.get("open-processes") {
        cfg.open_processes = parse_csv(raw, "--open-processes")?;
    }
    cfg.open_mean_gap_us = args.get("open-gap", cfg.open_mean_gap_us)?;
    cfg.sharding_clusters = args.get("clusters", cfg.sharding_clusters)?;
    cfg.epoch = args.get("epoch", cfg.epoch)?;
    cfg.durability_processes = args.get("durability-processes", cfg.durability_processes)?;
    let report = run_scheduler_bench(&cfg);
    for e in &report.runs {
        let shard = match &e.shard_mode {
            Some(m) => format!(
                " shards={m}/{} runtime={}",
                e.shards,
                e.runtime.as_deref().unwrap_or("?")
            ),
            None => String::new(),
        };
        println!(
            "{:<10} {:<14} n={:<4} d={:<4} {:>10.2} ms  {:>12.0} events/s  ({} committed, {} aborted){shard}",
            e.mode, e.policy, e.processes, e.density, e.wall_ms, e.events_per_sec,
            e.committed, e.aborted
        );
    }
    for p in &report.runtime_ratio {
        println!(
            "ratio      n={:<5} d={:<4} events {:>12.0} ev/s  threads {:>12.0} ev/s  {:>5.2}x",
            p.processes, p.density, p.events_per_sec_events, p.events_per_sec_threads, p.ratio
        );
    }
    for o in &report.open_runs {
        println!(
            "open       n={:<6} gap={}µs shards={} workers={} {:>10.2} ms  {:>12.0} events/s  \
             in-flight-peak={} pred-violations={} proc-rec-violations={} (verify {:.0} ms)",
            o.processes,
            o.mean_gap_us,
            o.shards,
            o.workers,
            o.wall_ms,
            o.events_per_sec,
            o.in_flight_peak,
            o.pred_violations,
            o.proc_rec_violations,
            o.verify_ms,
        );
    }
    for d in &report.decision {
        println!(
            "decision   live_ops={:<6} edges={:<5} indexed {:>9.0} ns/request  scan {:>9.0} ns/request",
            d.live_ops, d.edges, d.ns_per_request_indexed, d.ns_per_request_scan
        );
    }
    for t in &report.trace_overhead {
        println!(
            "trace      {:<14} n={:<4} d={:<4} {:>10.2} ms  ({:+.1}% vs untraced)",
            t.sink, t.processes, t.density, t.wall_ms, t.overhead_pct
        );
    }
    for n in &report.notes {
        println!("note: {n}");
    }
    let out = args
        .values
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_scheduler.json".to_string());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

/// Re-runs a seeded workload with the trace journal attached and renders
/// the scheduler's decisions: pretty-printed (filterable), as a JSONL
/// journal, as a Chrome-trace timeline, as per-step conflict-graph dot
/// snapshots, or as an `--explain` decision chain for one process.
fn cmd_trace(args: &Args) -> Result<(), String> {
    use txproc_core::trace::{
        chrome_trace, explain_process, to_jsonl, Journal, SampleSink, TraceSink,
    };
    let w = workload_from(args)?;
    let policy = parse_policy(&args.get("policy", "pred".to_string())?)?;
    let certifier = parse_certifier(&args.get("certifier", "incremental".to_string())?)?;
    let cfg = RunConfig {
        policy,
        seed: args.get("seed", 42u64)?,
        arrival_gap: args.get("arrival-gap", 0u64)?,
        certifier,
        ..RunConfig::default()
    };
    let sample_n: u32 = args.get("trace-sample", 1u32)?;
    if sample_n == 0 {
        return Err("--trace-sample must be ≥ 1".to_string());
    }
    let journal = Journal::new();
    let sink: Box<dyn TraceSink> = if sample_n > 1 {
        Box::new(SampleSink::new(journal.clone(), sample_n))
    } else {
        Box::new(journal.clone())
    };
    let r = txproc_engine::RunBuilder::new(&w)
        .config(cfg)
        .sink(sink)
        .run()
        .into_engine();
    let records = journal.snapshot();
    if sample_n > 1 {
        println!(
            "sampling 1-in-{sample_n} process chains: kept {} records",
            records.len()
        );
    }

    if let Some(path) = args.values.get("json") {
        std::fs::write(path, to_jsonl(&records)).map_err(|e| e.to_string())?;
        println!("wrote {} trace records to {path}", records.len());
    }
    if let Some(path) = args.values.get("chrome") {
        std::fs::write(path, chrome_trace(&records)).map_err(|e| e.to_string())?;
        println!("wrote chrome trace to {path} (load in chrome://tracing or Perfetto)");
    }
    if let Some(dir) = args.values.get("dot-dir") {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let mut prefix = Schedule::new();
        for (i, e) in r.history.events().iter().enumerate() {
            prefix.push(e.clone());
            let dot = txproc_core::dot::conflict_graph_to_dot(&w.spec, &prefix)
                .map_err(|e| e.to_string())?;
            let path = std::path::Path::new(dir).join(format!("step_{:03}.dot", i + 1));
            std::fs::write(&path, dot).map_err(|e| e.to_string())?;
        }
        println!(
            "wrote {} conflict-graph snapshots to {dir}",
            r.history.len()
        );
    }
    if let Some(raw) = args.values.get("explain") {
        let pid = ProcessId(
            raw.parse()
                .map_err(|_| format!("invalid --explain pid: {raw}"))?,
        );
        print!("{}", explain_process(&records, pid));
        return Ok(());
    }
    let pid_filter: Option<ProcessId> = match args.values.get("pid") {
        Some(raw) => Some(ProcessId(
            raw.parse().map_err(|_| format!("invalid --pid: {raw}"))?,
        )),
        None => None,
    };
    let kind_filter = args.values.get("kind");
    let mut shown = 0usize;
    for rec in &records {
        if let Some(p) = pid_filter {
            if !rec.event.mentions(p) {
                continue;
            }
        }
        if let Some(k) = kind_filter {
            if !rec.event.kind().contains(k.as_str()) {
                continue;
            }
        }
        println!("{rec}");
        shown += 1;
    }
    println!(
        "-- {shown} of {} records (history: {} events, {} committed, {} aborted)",
        records.len(),
        r.history.len(),
        r.metrics.committed,
        r.metrics.aborted
    );
    Ok(())
}

/// `txproc stats`: run one workload with the telemetry registry enabled and
/// export the result two ways — Prometheus text (stdout, or `--prom PATH`)
/// and the sampled time-series ring as a `txproc-timeseries/v1` JSON
/// document (`--timeseries PATH`). Engine runs sample on virtual time every
/// `--sample-events`; concurrent runs (`--runtime events|threads`) attach a
/// wall-clock sampler thread ticking every `--sample-ms`.
fn cmd_stats(args: &Args) -> Result<(), String> {
    use txproc_core::telemetry::{prometheus_text, Telemetry};
    use txproc_sim::timeseries::{Sampler, TimeSeries};

    let w = workload_from(args)?;
    let policy = parse_policy(&args.get("policy", "pred".to_string())?)?;
    let certifier = parse_certifier(&args.get("certifier", "incremental".to_string())?)?;
    let tele = Telemetry::on();
    let series = TimeSeries::new(args.get("samples", 1024usize)?.max(1));
    let (committed, aborted) = if let Some(raw) = args.values.get("runtime") {
        let cfg = ConcurrentConfig {
            policy,
            seed: args.get("seed", 42u64)?,
            certifier,
            shards: match args.values.get("shards") {
                Some(raw) => parse_shards(raw)?,
                None => ShardMode::Auto,
            },
            runtime: parse_runtime(raw)?,
            workers: parse_workers(args)?,
            ..ConcurrentConfig::default()
        };
        cfg.validate(w.spec.processes().count())?;
        let every = std::time::Duration::from_millis(args.get("sample-ms", 1u64)?.max(1));
        let sampler = Sampler::spawn(tele.clone(), every, series.clone());
        let r = txproc_engine::RunBuilder::new(&w)
            .concurrent(cfg)
            .telemetry(tele.clone())
            .run()
            .into_concurrent();
        sampler.stop();
        (r.metrics.committed, r.metrics.aborted)
    } else {
        let cfg = RunConfig {
            policy,
            seed: args.get("seed", 42u64)?,
            arrival_gap: args.get("arrival-gap", 0u64)?,
            certifier,
            ..RunConfig::default()
        };
        let r = txproc_engine::RunBuilder::new(&w)
            .config(cfg)
            .telemetry(tele.clone())
            .sampling(args.get("sample-events", 64u64)?, series.clone())
            .run()
            .into_engine();
        (r.metrics.committed, r.metrics.aborted)
    };
    let snap = tele
        .snapshot()
        .ok_or("telemetry registry produced no snapshot")?;
    match args.values.get("prom") {
        Some(path) => {
            std::fs::write(path, prometheus_text(&snap)).map_err(|e| e.to_string())?;
            println!("wrote Prometheus metrics to {path}");
        }
        None => print!("{}", prometheus_text(&snap)),
    }
    if let Some(path) = args.values.get("timeseries") {
        std::fs::write(path, series.to_json()).map_err(|e| e.to_string())?;
        println!(
            "wrote {} time-series sample(s) to {path} ({} evicted by the ring)",
            series.len(),
            series.dropped()
        );
    }
    eprintln!("run: {committed} committed, {aborted} aborted");
    Ok(())
}

/// One frame of the `txproc top` display: phase totals plus the per-shard
/// and per-worker instrument tables, derived purely from a registry
/// snapshot so it can be unit-tested without a terminal.
fn render_top(snap: &txproc_core::telemetry::Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "txproc top — registry age {:.1} ms",
        snap.wall_ns as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>10}",
        "phase", "count", "total µs", "p95 ns"
    );
    for p in snap.phases.iter().filter(|p| p.count > 0) {
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12.1} {:>10}",
            p.phase,
            p.count,
            p.total_ns as f64 / 1e3,
            p.p95_ns
        );
    }
    // Pivot the flat instrument list into one row per shard / per worker.
    let mut shards: std::collections::BTreeMap<u64, [u64; 4]> = Default::default();
    let mut workers: std::collections::BTreeMap<u64, u64> = Default::default();
    for ins in &snap.instruments {
        let lane = |key: &str| {
            ins.labels
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.parse::<u64>().ok())
        };
        if let Some(s) = lane("shard") {
            let row = shards.entry(s).or_default();
            match ins.name.as_str() {
                "events_total" => row[0] = ins.value,
                "committed_total" => row[1] = ins.value,
                "run_queue_depth" => row[2] = ins.value,
                "lock_wait_ns_total" => row[3] = ins.value,
                _ => {}
            }
        } else if let (Some(widx), "worker_steps_total") = (lane("worker"), ins.name.as_str()) {
            workers.insert(widx, ins.value);
        }
    }
    if !shards.is_empty() {
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>10} {:>7} {:>14}",
            "shard", "events", "committed", "queue", "lock-wait µs"
        );
        for (s, [events, committed, depth, wait_ns]) in &shards {
            let _ = writeln!(
                out,
                "{:<6} {:>8} {:>10} {:>7} {:>14.1}",
                s,
                events,
                committed,
                depth,
                *wait_ns as f64 / 1e3
            );
        }
    }
    if !workers.is_empty() {
        let steps: Vec<String> = workers
            .iter()
            .map(|(widx, steps)| format!("w{widx}:{steps}"))
            .collect();
        let _ = writeln!(out, "worker steps: {}", steps.join(" "));
    }
    out
}

/// `txproc top`: run the concurrent driver with telemetry on and repaint a
/// per-shard/per-worker metrics table every `--refresh-ms` until the run
/// finishes. Uses ANSI clear-screen when stdout is a terminal, plain
/// appended frames otherwise (pipes, CI logs).
fn cmd_top(args: &Args) -> Result<(), String> {
    use std::io::IsTerminal;
    use std::sync::atomic::{AtomicBool, Ordering};
    use txproc_core::telemetry::Telemetry;

    let w = workload_from(args)?;
    let cfg = ConcurrentConfig {
        policy: parse_policy(&args.get("policy", "pred".to_string())?)?,
        seed: args.get("seed", 42u64)?,
        certifier: parse_certifier(&args.get("certifier", "incremental".to_string())?)?,
        shards: match args.values.get("shards") {
            Some(raw) => parse_shards(raw)?,
            None => ShardMode::Auto,
        },
        runtime: match args.values.get("runtime") {
            Some(raw) => parse_runtime(raw)?,
            None => RuntimeKind::Events,
        },
        workers: parse_workers(args)?,
        ..ConcurrentConfig::default()
    };
    cfg.validate(w.spec.processes().count())?;
    let refresh = std::time::Duration::from_millis(args.get("refresh-ms", 200u64)?.max(10));
    let ansi = std::io::stdout().is_terminal();
    let tele = Telemetry::on();
    let done = AtomicBool::new(false);
    let result = std::sync::Mutex::new(None);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let r = txproc_engine::RunBuilder::new(&w)
                .concurrent(cfg)
                .telemetry(tele.clone())
                .run()
                .into_concurrent();
            *result.lock().expect("result mutex") = Some(r);
            done.store(true, Ordering::Release);
        });
        while !done.load(Ordering::Acquire) {
            if let Some(snap) = tele.snapshot() {
                if ansi {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render_top(&snap));
            }
            std::thread::sleep(refresh);
        }
    });
    let r = result
        .into_inner()
        .expect("result mutex")
        .expect("run thread stores its result before setting done");
    if let Some(snap) = tele.snapshot() {
        if ansi {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(&snap));
    }
    println!(
        "done: {} committed, {} aborted, {} activities, {} compensations",
        r.metrics.committed, r.metrics.aborted, r.metrics.activities, r.metrics.compensations
    );
    Ok(())
}

/// `txproc regression`: the perf-regression gate. Reads the committed
/// baseline (`--baseline`, default `BENCH_baseline.json`) and a freshly
/// produced report (`--current`, default `BENCH_scheduler.json`), prints
/// the per-point diff, and exits non-zero when any matched sweep point
/// regresses past the gate (throughput −20% / p95 +30%, both relative to
/// the run-wide median ratio so a uniformly slower host cancels out).
fn cmd_regression(args: &Args) -> Result<(), String> {
    use txproc_bench::regression::compare;
    let baseline_path = args
        .values
        .get("baseline")
        .cloned()
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let current_path = args
        .values
        .get("current")
        .cloned()
        .unwrap_or_else(|| "BENCH_scheduler.json".to_string());
    let baseline = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let current = std::fs::read_to_string(&current_path)
        .map_err(|e| format!("cannot read current report {current_path}: {e}"))?;
    let report = compare(&baseline, &current).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    if report.passed() {
        println!("regression gate: pass ({baseline_path} vs {current_path})");
        Ok(())
    } else {
        Err(format!(
            "perf regression gate failed ({baseline_path} vs {current_path}); \
             see the violating points above — refresh the baseline only for \
             intentional perf changes (see CONTRIBUTING.md)"
        ))
    }
}

/// Runs the scenario gauntlet: every named scenario (or one, with
/// `--scenario`) over `--seeds` seeds through engine and sharded-concurrent
/// runs, each history checked for PRED and Proc-REC, the aggregate checked
/// against the scenario's acceptance envelope. Errors (exit 1) when any
/// scenario fails.
fn cmd_gauntlet(args: &Args) -> Result<(), String> {
    use txproc_bench::scenarios::{run_scenario, GauntletConfig};
    let mut cfg = GauntletConfig::smoke();
    cfg.seeds = args.get("seeds", cfg.seeds)?;
    cfg.seed_base = args.get("seed-base", cfg.seed_base)?;
    cfg.policy = parse_policy(&args.get("policy", cfg.policy.label().to_string())?)?;
    cfg.certifier = parse_certifier(&args.get("certifier", cfg.certifier.label().to_string())?)?;
    if let Some(raw) = args.values.get("shards") {
        cfg.shards = parse_shards(raw)?;
    }
    if let Some(raw) = args.values.get("runtime") {
        cfg.runtime = parse_runtime(raw)?;
    }
    cfg.workers = parse_workers(args)?.or(cfg.workers);
    cfg.epoch = args.get("epoch", cfg.epoch)?;
    let scenarios =
        match args.values.get("scenario") {
            Some(name) => vec![txproc_sim::scenario::find(name)
                .ok_or_else(|| format!("unknown scenario: {name}"))?],
            None => txproc_sim::scenario::registry(),
        };
    let mut failed = Vec::new();
    let mut reports = Vec::new();
    for s in &scenarios {
        let report = run_scenario(s, &cfg);
        for m in &report.modes {
            let mode_label = match &m.runtime {
                Some(rt) => format!("{}/{rt}", m.mode),
                None => m.mode.to_string(),
            };
            println!(
                "{:<15} {:<16} seeds={:<4} commit-rate={:.3} p50={:?} p95={:?} pred-violations={} proc-rec-violations={} [{}] ({:.0} ms)",
                report.name,
                mode_label,
                m.runs,
                m.commit_rate,
                m.latency_p50,
                m.latency_p95,
                m.pred_violations,
                m.proc_rec_violations,
                if m.envelope_breaches.is_empty() {
                    "envelope ok".to_string()
                } else {
                    m.envelope_breaches.join("; ")
                },
                m.wall_ms,
            );
        }
        if !report.pass {
            failed.push(report.name.clone());
        }
        reports.push(report);
    }
    if let Some(path) = args.values.get("json") {
        let json = serde_json::to_string_pretty(&reports).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if failed.is_empty() {
        println!(
            "gauntlet: all {} scenario(s) passed over {} seed(s)",
            reports.len(),
            cfg.seeds
        );
        Ok(())
    } else {
        Err(format!("gauntlet failures: {}", failed.join(", ")))
    }
}

fn cmd_crash(args: &Args) -> Result<(), String> {
    let w = workload_from(args)?;
    let at = args.get("at", 8usize)?;
    let wal = parse_wal(args)?;
    let seed = args.get("seed", 42u64)?;
    let run_cfg = RunConfig {
        seed,
        epoch: args.get("epoch", 0usize)?,
        ..RunConfig::default()
    };
    let mut engine = Engine::new(&w, run_cfg);
    if let Some((path, dpolicy, snapshot_every)) = &wal {
        engine = engine.with_wal(open_wal(path, *dpolicy, seed)?, *snapshot_every);
    }
    engine.run_until_history(at);
    println!("history at crash: {}", render(engine.history()));
    let report = match &wal {
        // The honest crash path: discard the in-memory image and rebuild
        // everything from the durable log alone.
        Some((path, _, _)) => {
            drop(engine.crash());
            println!("replaying WAL:    {}", path.display());
            Recovery::from(RecoverySource::Wal(path.clone()))
                .run(&w)
                .map_err(|e| e.to_string())?
        }
        None => recover(&w, engine.crash()).map_err(|e| e.to_string())?,
    };
    println!(
        "recovered: {} aborted, {} compensations, {} forward steps, {} 2PC groups resolved",
        report.aborted.len(),
        report.compensations,
        report.forward,
        report.resolved_groups
    );
    let red = txproc_core::reduction::is_reducible(&w.spec, &report.history)
        .map_err(|e| e.to_string())?;
    println!("recovered history RED: {red}");
    Ok(())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!(
            "usage: txproc <simulate|generate|check|demo|dot|crash|bench|trace|stats|top|regression|gauntlet> [options]"
        );
        std::process::exit(2);
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "generate" => cmd_generate(&args),
        "check" => cmd_check(&args),
        "demo" => cmd_demo(&args),
        "dot" => cmd_dot(&args),
        "crash" => cmd_crash(&args),
        "bench" => cmd_bench(&args),
        "trace" => cmd_trace(&args),
        "stats" => cmd_stats(&args),
        "top" => cmd_top(&args),
        "regression" => cmd_regression(&args),
        "gauntlet" => cmd_gauntlet(&args),
        other => Err(format!("unknown command: {other}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Args {
        Args::parse(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["--seed", "7", "--density", "0.4", "fig7", "--check"]);
        assert_eq!(a.get("seed", 0u64).unwrap(), 7);
        assert!((a.get("density", 0.0f64).unwrap() - 0.4).abs() < 1e-9);
        assert_eq!(a.positional, vec!["fig7"]);
        assert!(a.flag("check"));
        assert!(!a.flag("json"));
        assert_eq!(a.get("processes", 8usize).unwrap(), 8);
    }

    #[test]
    fn invalid_value_reported() {
        let a = args(&["--seed", "x"]);
        assert!(a.get("seed", 0u64).is_err());
    }

    #[test]
    fn missing_value_reported() {
        let raw = vec!["--seed".to_string()];
        assert!(Args::parse(&raw).is_err());
    }

    #[test]
    fn crash_recovers_from_a_wal_file() {
        let path =
            std::env::temp_dir().join(format!("txproc-cli-crash-{}.wal", std::process::id()));
        let a = args(&[
            "--seed",
            "5",
            "--processes",
            "6",
            "--at",
            "6",
            "--epoch",
            "4",
            "--wal",
            path.to_str().unwrap(),
        ]);
        cmd_crash(&a).unwrap();
        assert!(path.exists(), "crash left no WAL behind");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_journals_through_the_wal_flag() {
        let path =
            std::env::temp_dir().join(format!("txproc-cli-simulate-{}.wal", std::process::id()));
        let a = args(&[
            "--seed",
            "3",
            "--processes",
            "6",
            "--epoch",
            "4",
            "--durability",
            "buffered",
            "--wal",
            path.to_str().unwrap(),
        ]);
        cmd_simulate(&a).unwrap();
        let (records, clean) = txproc_core::wal::read_records(&std::fs::read(&path).unwrap());
        assert!(!records.is_empty());
        assert_eq!(clean, std::fs::metadata(&path).unwrap().len() as usize);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(parse_policy("pred").unwrap(), PolicyKind::Pred);
        assert_eq!(parse_policy("unsafe-cc").unwrap(), PolicyKind::UnsafeCc);
        assert_eq!(parse_policy("pred-scan").unwrap(), PolicyKind::PredScan);
        assert!(parse_policy("bogus").is_err());
    }

    #[test]
    fn bench_smoke_writes_report() {
        let out = std::env::temp_dir().join("txproc_bench_smoke_test.json");
        let a = args(&[
            "--smoke",
            "--processes",
            "5",
            "--policy",
            "pred-protocol,pred-scan",
            "--out",
            out.to_str().unwrap(),
        ]);
        cmd_bench(&a).unwrap();
        let raw = std::fs::read_to_string(&out).unwrap();
        assert!(raw.contains("txproc-bench-scheduler/v8"));
        assert!(raw.contains("pred-scan"));
        assert!(raw.contains("zipf-hotspot"));
        assert!(raw.contains("runtime_ratio"));
        assert!(raw.contains("open_runs"));
        assert!(raw.contains("\"phases\""));
        assert!(raw.contains("telemetry_overhead"));
        assert!(raw.contains("epoch_decision"));
        assert!(raw.contains("\"epoch\": 16"));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn stats_exports_prometheus_and_timeseries() {
        let dir = std::env::temp_dir().join("txproc_stats_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prom = dir.join("metrics.prom");
        let series = dir.join("series.json");

        // Engine run: virtual-time sampling.
        let a = args(&[
            "--seed",
            "4",
            "--processes",
            "6",
            "--density",
            "0.4",
            "--sample-events",
            "8",
            "--prom",
            prom.to_str().unwrap(),
            "--timeseries",
            series.to_str().unwrap(),
        ]);
        cmd_stats(&a).unwrap();
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(
            text.contains("txproc_phase_duration_ns_count{phase=\"certify\"}"),
            "{text}"
        );
        assert!(text.contains("# TYPE"), "{text}");
        let doc =
            txproc_sim::timeseries::from_json(&std::fs::read_to_string(&series).unwrap()).unwrap();
        assert!(!doc.samples.is_empty());

        // Concurrent run: wall-clock sampler.
        let b = args(&[
            "--seed",
            "4",
            "--processes",
            "6",
            "--runtime",
            "events",
            "--prom",
            prom.to_str().unwrap(),
            "--timeseries",
            series.to_str().unwrap(),
        ]);
        cmd_stats(&b).unwrap();
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("txproc_events_total"), "{text}");
        let doc =
            txproc_sim::timeseries::from_json(&std::fs::read_to_string(&series).unwrap()).unwrap();
        assert!(!doc.samples.is_empty(), "final sample on sampler stop");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_runs_and_renders() {
        let a = args(&["--seed", "4", "--processes", "6", "--refresh-ms", "10"]);
        cmd_top(&a).unwrap();

        // The frame renderer pivots instruments into per-shard rows.
        use txproc_core::telemetry::{InstrumentSnapshot, Snapshot};
        let snap = Snapshot {
            wall_ns: 2_000_000,
            phases: Vec::new(),
            instruments: vec![
                InstrumentSnapshot {
                    name: "events_total".into(),
                    labels: vec![("shard".into(), "0".into())],
                    kind: "counter".into(),
                    value: 17,
                },
                InstrumentSnapshot {
                    name: "worker_steps_total".into(),
                    labels: vec![("worker".into(), "1".into())],
                    kind: "counter".into(),
                    value: 9,
                },
            ],
        };
        let frame = render_top(&snap);
        assert!(frame.contains("shard"), "{frame}");
        assert!(frame.contains("17"), "{frame}");
        assert!(frame.contains("w1:9"), "{frame}");
    }

    #[test]
    fn trace_sampling_drops_chains() {
        let dir = std::env::temp_dir().join("txproc_trace_sample_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.jsonl");
        let sampled = dir.join("sampled.jsonl");
        let base = ["--seed", "4", "--processes", "8", "--density", "0.5"];
        let mut a = base.to_vec();
        a.extend(["--json", full.to_str().unwrap()]);
        cmd_trace(&args(&a)).unwrap();
        let mut b = base.to_vec();
        b.extend(["--json", sampled.to_str().unwrap(), "--trace-sample", "4"]);
        cmd_trace(&args(&b)).unwrap();
        let full_lines = std::fs::read_to_string(&full).unwrap().lines().count();
        let sampled_lines = std::fs::read_to_string(&sampled).unwrap().lines().count();
        assert!(
            sampled_lines > 0 && sampled_lines < full_lines,
            "sampling kept {sampled_lines} of {full_lines}"
        );
        assert!(cmd_trace(&args(&["--trace-sample", "0"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn regression_gate_passes_self_and_fails_doctored() {
        let dir = std::env::temp_dir().join("txproc_regression_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let a = args(&[
            "--smoke",
            "--processes",
            "5",
            "--out",
            baseline.to_str().unwrap(),
        ]);
        cmd_bench(&a).unwrap();

        let self_check = args(&[
            "--baseline",
            baseline.to_str().unwrap(),
            "--current",
            baseline.to_str().unwrap(),
        ]);
        cmd_regression(&self_check).unwrap();

        // Halve one point's throughput: it now sits far below the median
        // ratio and must trip the gate.
        let raw = std::fs::read_to_string(&baseline).unwrap();
        let mut doc: serde::Value = serde_json::from_str(&raw).unwrap();
        let mut halved = false;
        if let serde::Value::Map(fields) = &mut doc {
            if let Some((_, serde::Value::Seq(runs))) = fields.iter_mut().find(|(k, _)| k == "runs")
            {
                if let Some(serde::Value::Map(run)) = runs.first_mut() {
                    if let Some((_, v)) = run.iter_mut().find(|(k, _)| k == "events_per_sec") {
                        match v {
                            serde::Value::F64(e) => *e /= 2.0,
                            serde::Value::U64(e) => *e /= 2,
                            serde::Value::I64(e) => *e /= 2,
                            other => panic!("unexpected events_per_sec shape: {other:?}"),
                        }
                        halved = true;
                    }
                }
            }
        }
        assert!(halved, "baseline report carries runs[0].events_per_sec");
        let doctored = dir.join("doctored.json");
        std::fs::write(&doctored, serde_json::to_string(&doc).unwrap()).unwrap();
        let fail_check = args(&[
            "--baseline",
            baseline.to_str().unwrap(),
            "--current",
            doctored.to_str().unwrap(),
        ]);
        let err = cmd_regression(&fail_check).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_concurrent_runtimes() {
        let events = args(&[
            "--seed",
            "3",
            "--processes",
            "6",
            "--runtime",
            "events",
            "--epoch",
            "8",
            "--check",
        ]);
        cmd_simulate(&events).unwrap();
        let threads = args(&[
            "--seed",
            "3",
            "--processes",
            "6",
            "--runtime",
            "threads",
            "--workers",
            "2",
        ]);
        cmd_simulate(&threads).unwrap();
        let bad = args(&["--runtime", "fibers"]);
        assert!(cmd_simulate(&bad).is_err());
        // The thread runtime's process cap surfaces as a CLI error naming
        // the knob that lifts it.
        let capped = args(&["--processes", "600", "--runtime", "threads"]);
        let err = cmd_simulate(&capped).unwrap_err();
        assert!(err.contains("--runtime events"), "{err}");
    }

    #[test]
    fn gauntlet_runs_one_scenario() {
        let out = std::env::temp_dir().join("txproc_gauntlet_cli_test.json");
        let a = args(&[
            "--scenario",
            "zipf-hotspot",
            "--seeds",
            "2",
            "--epoch",
            "16",
            "--json",
            out.to_str().unwrap(),
        ]);
        cmd_gauntlet(&a).unwrap();
        let raw = std::fs::read_to_string(&out).unwrap();
        assert!(raw.contains("zipf-hotspot"));
        assert!(raw.contains("pred_violations"));
        std::fs::remove_file(&out).ok();

        let bad = args(&["--scenario", "no-such"]);
        assert!(cmd_gauntlet(&bad).is_err());
    }

    #[test]
    fn invalid_workload_config_is_a_cli_error() {
        let a = args(&["--processes", "0"]);
        let err = cmd_simulate(&a).unwrap_err();
        assert!(err.contains("processes"), "{err}");
    }

    #[test]
    fn demo_schedules_check_cleanly() {
        for which in ["fig4a", "fig4b", "fig7", "fig9"] {
            let a = Args {
                values: Default::default(),
                positional: vec![which.to_string()],
            };
            cmd_demo(&a).unwrap();
        }
    }

    #[test]
    fn dot_export_runs() {
        for which in ["p1", "p2", "p3", "cim-construction", "cim-production"] {
            let a = Args {
                values: Default::default(),
                positional: vec![which.to_string()],
            };
            cmd_dot(&a).unwrap();
        }
    }

    #[test]
    fn trace_exports_and_explains() {
        let dir = std::env::temp_dir().join("txproc_trace_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("trace.jsonl");
        let chrome = dir.join("trace.json");
        let dots = dir.join("dots");
        let base = [
            "--seed",
            "4",
            "--processes",
            "6",
            "--density",
            "0.5",
            "--failures",
            "0.2",
        ];
        let mut export = base.to_vec();
        export.extend([
            "--json",
            json.to_str().unwrap(),
            "--chrome",
            chrome.to_str().unwrap(),
            "--dot-dir",
            dots.to_str().unwrap(),
        ]);
        cmd_trace(&args(&export)).unwrap();
        let jsonl = std::fs::read_to_string(&json).unwrap();
        assert!(jsonl.lines().count() > 0);
        assert!(std::fs::read_to_string(&chrome)
            .unwrap()
            .contains("traceEvents"));
        assert!(std::fs::read_dir(&dots).unwrap().count() > 0);
        let mut explain = base.to_vec();
        explain.extend(["--explain", "0"]);
        cmd_trace(&args(&explain)).unwrap();
        let mut filtered = base.to_vec();
        filtered.extend(["--pid", "1", "--kind", "request"]);
        cmd_trace(&args(&filtered)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_and_crash_run() {
        let a = args(&["--seed", "3", "--processes", "4", "--check"]);
        cmd_simulate(&a).unwrap();
        let epoch = args(&["--seed", "3", "--processes", "4", "--check", "--epoch", "4"]);
        cmd_simulate(&epoch).unwrap();
        cmd_crash(&a).unwrap();
        cmd_generate(&a).unwrap();
    }
}
