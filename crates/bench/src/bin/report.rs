//! Experiment report generator.
//!
//! ```text
//! report                # run all experiments
//! report --exp e6       # run one experiment
//! report --json out.json
//! ```

use txproc_bench::{all_ids, render_experiment, run_experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids = all_ids();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                let id = args.get(i).expect("--exp needs an id").to_lowercase();
                ids = vec![id];
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json needs a path").clone());
            }
            "--help" | "-h" => {
                println!("usage: report [--exp eN] [--json path]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut results = Vec::new();
    let mut failed = 0;
    for id in &ids {
        match run_experiment(id) {
            Some(result) => {
                println!("{}", render_experiment(&result));
                if !result.pass {
                    failed += 1;
                }
                results.push(result);
            }
            None => {
                eprintln!("unknown experiment: {id}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "{} experiment(s), {} passed, {} failed",
        results.len(),
        results.len() - failed,
        failed
    );
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&results).expect("serializable");
        std::fs::write(&path, json).expect("writable path");
        println!("wrote {path}");
    }
    if failed > 0 {
        std::process::exit(1);
    }
}
