//! Scheduler perf trajectory: scalability scenarios over the virtual-time
//! engine and the concurrent driver, plus a protocol decision-cost
//! microbenchmark, written to `BENCH_scheduler.json` so later PRs can
//! detect regressions (E19).
//!
//! Two complementary measurements:
//!
//! * **End-to-end** — wall-clock per full run at 8→256 processes and
//!   several conflict densities, per policy. `pred-scan` (the retained
//!   scan-based oracle as a live policy) is the pre-index baseline;
//!   `pred-protocol` is the same decision logic answered from the
//!   maintained indexes — the ratio is the tentpole's end-to-end speedup.
//! * **Per-decision** — nanoseconds per `request` (indexed vs scan) as the
//!   number of live operations grows, driving the
//!   [`Protocol`](txproc_core::protocol::Protocol) directly. This isolates
//!   the O(degree)-vs-O(total ops) claim from engine overhead.

use crate::scenarios::{run_gauntlet, GauntletConfig, ScenarioReport};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;
use txproc_core::domains::DomainPartition;
use txproc_core::ids::{GlobalActivityId, ProcessId};
use txproc_core::pred_incremental::{check_pred_incremental, IncrementalPred};
use txproc_core::protocol::{DeferPolicy, Protocol};
use txproc_core::recoverability::proc_rec_violations;
use txproc_core::schedule::{Event, Schedule};
use txproc_core::spec::Spec;
use txproc_core::telemetry::Telemetry;
use txproc_core::trace::{JsonlSink, NoopSink, RingSink, TraceSink};
use txproc_core::wal::{read_wal_file, DurabilityPolicy, FileWal, WalRecord, WalWriter};
use txproc_engine::concurrent::{run_concurrent, ConcurrentConfig, RuntimeKind, ShardMode};
use txproc_engine::durability::rebuild_image;
use txproc_engine::engine::{run, Engine, RunConfig};
use txproc_engine::policy::{CertifierKind, PolicyKind};
use txproc_engine::recovery::recover;
use txproc_engine::RunBuilder;
use txproc_sim::metrics::AbortReasons;
use txproc_sim::workload::{generate, ArrivalModel, Workload, WorkloadConfig};

/// Configuration of a scheduler bench run.
#[derive(Debug, Clone, Serialize)]
pub struct SchedulerBenchConfig {
    /// Smoke mode: minimal sizes, CI-friendly wall time.
    pub smoke: bool,
    /// Workload seed.
    pub seed: u64,
    /// Process counts to sweep.
    pub processes: Vec<usize>,
    /// Conflict densities to sweep.
    pub densities: Vec<f64>,
    /// Policies to compare.
    pub policies: Vec<PolicyKind>,
    /// Certifier used by certified policies.
    pub certifier: CertifierKind,
    /// Virtual time between arrivals (engine runs).
    pub arrival_gap: u64,
    /// Failure-injection probability.
    pub failure_probability: f64,
    /// Runtime of the concurrent closed-sweep entries (`events` by
    /// default). The thread-per-process baseline is additionally driven at
    /// every closed point for the events-vs-threads ratio pairs.
    pub runtime: RuntimeKind,
    /// Worker-pool override for the events runtime (`None` = auto:
    /// `min(cores, shards)`).
    pub workers: Option<usize>,
    /// Largest process count driven through the **thread-per-process
    /// baseline** (a time-box: each process is one 2 MB-stack OS thread);
    /// the events runtime runs every sweep point. Recorded in the report so
    /// the cap is never silent.
    pub concurrent_max_processes: usize,
    /// In-flight process counts of the open-arrival sweep (events runtime,
    /// Poisson arrivals; empty disables it). These exceed the thread
    /// runtime's hard cap by design — the open sweep is the workload shape
    /// thread-per-process cannot run.
    pub open_processes: Vec<usize>,
    /// Mean Poisson inter-arrival gap of the open sweep, in microseconds.
    pub open_mean_gap_us: u64,
    /// Shard topology for concurrent sweep entries.
    pub shards: ShardMode,
    /// Cluster count (disjoint tenants) of the dedicated sharding
    /// comparison workload; 0 disables the comparison sweep.
    pub sharding_clusters: usize,
    /// Process count of the sharding comparison workload (larger than the
    /// general concurrent cap: the single-vs-auto contrast is the point of
    /// that pair, and it grows with scale).
    pub sharding_processes: usize,
    /// Seeds per named scenario in the gauntlet section (0 skips it).
    pub gauntlet_seeds: u64,
    /// Epoch size of the dedicated epoch sweep (group certification and
    /// batch commit): the highest density is re-driven with this epoch under
    /// the Pred policy on both drivers, next to per-event baselines. 0
    /// disables the sweep.
    pub epoch: usize,
    /// Process count of the durability sweep (E26): the highest-density
    /// engine point re-driven with a file-backed WAL under each fsync
    /// policy, plus the recovery-time-vs-log-length rows. 0 disables it.
    pub durability_processes: usize,
}

impl SchedulerBenchConfig {
    /// The full trajectory: 8→256 processes, two densities, indexed vs
    /// scan vs certified vs serial.
    pub fn full() -> Self {
        Self {
            smoke: false,
            seed: 3,
            processes: vec![8, 16, 32, 64, 128, 256],
            densities: vec![0.3, 0.6],
            policies: vec![
                PolicyKind::PredProtocol,
                PolicyKind::PredScan,
                PolicyKind::Pred,
                PolicyKind::Serial,
            ],
            certifier: CertifierKind::Incremental,
            arrival_gap: 0,
            failure_probability: 0.1,
            runtime: RuntimeKind::Events,
            workers: None,
            concurrent_max_processes: 256,
            open_processes: vec![1_000, 10_000, 100_000],
            open_mean_gap_us: 20,
            shards: ShardMode::Auto,
            sharding_clusters: 8,
            sharding_processes: 128,
            gauntlet_seeds: 128,
            epoch: 16,
            durability_processes: 256,
        }
    }

    /// CI smoke mode: the same pipeline at token sizes. Keeps one 1k-process
    /// open-arrival point: that size is beyond the thread runtime's cap, so
    /// it is the cheapest regression guard for the events runtime's whole
    /// reason to exist.
    pub fn smoke() -> Self {
        Self {
            smoke: true,
            processes: vec![8, 32],
            densities: vec![0.3],
            policies: vec![PolicyKind::PredProtocol, PolicyKind::PredScan],
            concurrent_max_processes: 32,
            open_processes: vec![1_000],
            open_mean_gap_us: 50,
            sharding_clusters: 4,
            sharding_processes: 16,
            gauntlet_seeds: 4,
            durability_processes: 16,
            ..Self::full()
        }
    }
}

/// One end-to-end run measurement.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEntry {
    /// `engine` (virtual time) or `concurrent` (thread per process).
    pub mode: &'static str,
    /// Policy label.
    pub policy: String,
    /// Certifier label (certified policies only).
    pub certifier: Option<String>,
    /// Processes in the workload.
    pub processes: usize,
    /// Conflict density of the workload.
    pub density: f64,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Emitted history events.
    pub events: usize,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Committed processes.
    pub committed: u64,
    /// Aborted processes.
    pub aborted: u64,
    /// Makespan: virtual ticks for engine runs, wall-clock microseconds
    /// for concurrent runs.
    pub makespan: u64,
    /// Latency p50: virtual ticks (engine) or wall-clock µs (concurrent).
    pub latency_p50: Option<u64>,
    /// Latency p95: virtual ticks (engine) or wall-clock µs (concurrent).
    pub latency_p95: Option<u64>,
    /// Shard topology label (concurrent runs only).
    pub shard_mode: Option<String>,
    /// Scheduler shards the run used (0 for engine runs).
    pub shards: u64,
    /// Disjoint tenant clusters in the workload (1 = classic single pool).
    pub clusters: usize,
    /// Total time threads spent blocked acquiring shard locks, in
    /// milliseconds (concurrent runs only).
    pub lock_wait_ms: f64,
    /// Total time threads spent holding shard locks (condvar waits
    /// excluded), in milliseconds (concurrent runs only).
    pub lock_hold_ms: f64,
    /// Condvar wakeups across shards (concurrent runs only).
    pub wakeups: u64,
    /// Wakeups that observed no shard-state change (concurrent runs only;
    /// with targeted notification these are fallback-timeout polls).
    pub spurious_wakeups: u64,
    /// Execution runtime of concurrent entries (`events` or `threads`);
    /// `None` for engine entries.
    pub runtime: Option<String>,
    /// Worker threads the runtime used (thread runtime: one per process;
    /// 0 for engine entries).
    pub workers: u64,
    /// Peak single-shard run-queue depth (events runtime; 0 elsewhere).
    pub run_queue_peak: u64,
    /// Peak concurrently in-flight processes (concurrent runs; 0 for
    /// engine entries).
    pub in_flight_peak: u64,
    /// Scheduling-delay p50 upper bucket edge, ns (events runtime).
    pub sched_delay_p50_ns: Option<u64>,
    /// Scheduling-delay p95 upper bucket edge, ns (events runtime).
    pub sched_delay_p95_ns: Option<u64>,
    /// Total virtual time processes spent blocked (engine runs; the
    /// concurrent driver has no virtual clock and reports 0).
    pub blocked_time_total: u64,
    /// Certification attempts answered "not PRED".
    pub cert_failures: u64,
    /// Abort initiations broken down by first cause.
    pub abort_reasons: AbortReasons,
    /// Epoch size the run used (0 = per-event path).
    pub epoch: usize,
    /// Durability-policy label of WAL-journaled runs (schema v8); `None`
    /// when the run wrote no WAL, which keeps pre-v8 regression keys
    /// unchanged.
    pub durability: Option<String>,
}

/// One events-vs-threads throughput pair at a closed sweep point (Pred
/// policy, best of 3 repetitions per runtime). The acceptance floor is
/// `ratio >= 0.9` at every point: the worker-pool runtime must not regress
/// the closed workloads thread-per-process handles comfortably.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeRatioEntry {
    /// Processes in the workload.
    pub processes: usize,
    /// Conflict density of the workload.
    pub density: f64,
    /// Events/second of the events (worker-pool) runtime.
    pub events_per_sec_events: f64,
    /// Events/second of the thread-per-process baseline.
    pub events_per_sec_threads: f64,
    /// `events_per_sec_events / events_per_sec_threads`.
    pub ratio: f64,
}

/// One open-arrival (Poisson) sweep point: the events runtime carrying an
/// in-flight population the thread runtime's cap forbids, with the merged
/// history verified domain by domain (E23).
#[derive(Debug, Clone, Serialize)]
pub struct OpenRunEntry {
    /// Runtime label (always `events`; recorded for self-description).
    pub runtime: String,
    /// Processes in the workload.
    pub processes: usize,
    /// Disjoint tenant clusters of the workload.
    pub clusters: usize,
    /// Mean Poisson inter-arrival gap, µs.
    pub mean_gap_us: u64,
    /// Conflict density of the workload.
    pub density: f64,
    /// Scheduler shards the run used.
    pub shards: u64,
    /// Worker threads of the pool.
    pub workers: u64,
    /// Wall-clock milliseconds for the run (excludes verification).
    pub wall_ms: f64,
    /// Emitted history events.
    pub events: usize,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Committed processes.
    pub committed: u64,
    /// Aborted processes.
    pub aborted: u64,
    /// Peak concurrently in-flight (arrived, not terminated) processes.
    pub in_flight_peak: u64,
    /// Peak single-shard run-queue depth.
    pub run_queue_peak: u64,
    /// Scheduling-delay p50 upper bucket edge, ns.
    pub sched_delay_p50_ns: Option<u64>,
    /// Scheduling-delay p95 upper bucket edge, ns.
    pub sched_delay_p95_ns: Option<u64>,
    /// Fraction of worker wall-time spent stepping state machines.
    pub worker_utilization: f64,
    /// Conflict domains the history was verified over.
    pub domains_verified: usize,
    /// Domains whose projected history failed the PRED check (must be 0).
    pub pred_violations: u64,
    /// Domains whose projected history had Proc-REC violations (must be 0).
    pub proc_rec_violations: u64,
    /// Wall-clock milliseconds spent on the per-domain verification.
    pub verify_ms: f64,
}

/// One tracing-overhead measurement (E20): the same engine run driven with
/// different trace sinks attached.
#[derive(Debug, Clone, Serialize)]
pub struct TraceOverheadEntry {
    /// `none` (untraced baseline), `noop`, `ring-4096` or `jsonl-devnull`.
    pub sink: &'static str,
    /// Processes in the workload.
    pub processes: usize,
    /// Conflict density of the workload.
    pub density: f64,
    /// Median wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Overhead relative to the untraced baseline, in percent.
    pub overhead_pct: f64,
}

/// One per-phase wall-time row of an instrumented run (schema v6): where a
/// driver's wall clock goes, split into the telemetry phases (certify, lock
/// wait/hold, queue delay, 2PC prepare→decide, compensation, policy).
#[derive(Debug, Clone, Serialize)]
pub struct PhaseBreakdownEntry {
    /// `engine` (virtual time) or `concurrent` (events runtime).
    pub mode: &'static str,
    /// Processes in the workload.
    pub processes: usize,
    /// Conflict density of the workload.
    pub density: f64,
    /// Phase name (snake_case, matches the Prometheus metric names).
    pub phase: String,
    /// Recorded intervals.
    pub count: u64,
    /// Total wall milliseconds across all intervals.
    pub total_ms: f64,
    /// p50 upper bucket edge, ns (log₂ resolution; 0 when empty).
    pub p50_ns: u64,
    /// p95 upper bucket edge, ns.
    pub p95_ns: u64,
    /// Max upper bucket edge, ns.
    pub max_ns: u64,
}

/// One telemetry-overhead measurement (E24): the same run driven with the
/// registry disabled vs enabled, min-of-N wall clock (same estimator as the
/// E20 trace-overhead rows). Acceptance: `overhead_pct <= 3.0` on the
/// closed sweep.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryOverheadEntry {
    /// `engine` or `concurrent`.
    pub mode: &'static str,
    /// Processes in the workload.
    pub processes: usize,
    /// Conflict density of the workload.
    pub density: f64,
    /// Min-of-N wall milliseconds with telemetry disabled.
    pub wall_ms_off: f64,
    /// Min-of-N wall milliseconds with telemetry enabled.
    pub wall_ms_on: f64,
    /// `(on - off) / off`, percent.
    pub overhead_pct: f64,
}

/// One epoch-certification amortization point (E25, schema v7): amortized
/// per-event cost of [`certify_epoch`](txproc_core::pred_incremental::IncrementalPred::certify_epoch)
/// over a batch of N consecutive history events, against a certifier warmed
/// with a long high-conflict committed prefix. One scratch clone of the
/// certifier serves the whole batch, so the clone — whose cost grows with
/// accumulated state — amortizes over N while the per-event plan work does
/// not.
#[derive(Debug, Clone, Serialize)]
pub struct EpochDecisionEntry {
    /// Processes of the recorded workload.
    pub processes: usize,
    /// Conflict density of the recorded workload.
    pub density: f64,
    /// Events already recorded into the certifier when probed.
    pub prefix_events: usize,
    /// Batch size N.
    pub epoch: usize,
    /// Nanoseconds for one `certify_epoch` call over the batch.
    pub ns_per_batch: f64,
    /// Amortized nanoseconds per event (`ns_per_batch / epoch`).
    pub ns_per_event: f64,
    /// `ns_per_event(N = 1) / ns_per_event(N)`.
    pub speedup_vs_single: f64,
}

/// One fsync-policy throughput point (E26, schema v8): the highest-density
/// engine sweep point re-driven with a file-backed WAL under one
/// [`DurabilityPolicy`], against the unlogged run as the baseline. The
/// write-ahead appends sit on the run's critical path, so the ratio is the
/// real price of each durability level.
#[derive(Debug, Clone, Serialize)]
pub struct DurabilityBenchEntry {
    /// Durability-policy label (`buffered`, `fsync-1`, `fsync-epoch`, …).
    pub policy: String,
    /// Processes of the workload.
    pub processes: usize,
    /// Conflict density of the workload.
    pub density: f64,
    /// Epoch size of the run (fsync-epoch groups its syncs on this).
    pub epoch: usize,
    /// Emitted history events.
    pub events: usize,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Records the run appended to the WAL.
    pub wal_records: usize,
    /// Bytes the WAL occupies on disk after the run.
    pub wal_bytes: u64,
    /// `events_per_sec / unlogged events_per_sec` — the durability tax.
    pub throughput_vs_unlogged: f64,
    /// Milliseconds to stream the run's full record sequence through a
    /// fresh file-backed writer under this policy — the durability layer
    /// in isolation, with the engine's compute out of the denominator.
    pub wal_only_ms: f64,
    /// Records per second through the isolated writer.
    pub wal_only_records_per_sec: f64,
    /// Fsyncs the isolated writer issued (policy-determined).
    pub wal_only_syncs: u64,
}

/// One recovery-time point (E26, schema v8): a crash image rebuilt from a
/// WAL prefix of the given length, then recovered (group abort +
/// completion replay). Snapshot rows show the log-tail shortcut: replay
/// starts at the newest snapshot instead of the log head.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryBenchEntry {
    /// Records in the replayed log prefix.
    pub log_records: usize,
    /// Bytes in the replayed log prefix.
    pub log_bytes: usize,
    /// Snapshot cadence the writing run used (0 = no snapshots).
    pub snapshot_every: usize,
    /// History events in the rebuilt image.
    pub history_events: usize,
    /// Milliseconds to rebuild the crash image from the log.
    pub rebuild_ms: f64,
    /// Milliseconds for PRED recovery (group abort + completions) on it.
    pub recover_ms: f64,
}

/// One per-decision measurement point.
#[derive(Debug, Clone, Serialize)]
pub struct DecisionBenchEntry {
    /// Live operations recorded in the protocol when probed.
    pub live_ops: usize,
    /// Dependency edges present when probed.
    pub edges: usize,
    /// Nanoseconds per indexed `request`.
    pub ns_per_request_indexed: f64,
    /// Nanoseconds per scan-oracle `request`.
    pub ns_per_request_scan: f64,
}

/// The full report written to `BENCH_scheduler.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Format tag.
    pub schema: &'static str,
    /// Unix timestamp of the run.
    pub created_unix: u64,
    /// The configuration that produced it.
    pub config: SchedulerBenchConfig,
    /// End-to-end entries (engine + concurrent driver).
    pub runs: Vec<BenchEntry>,
    /// Events-vs-threads throughput pairs at the closed sweep points.
    pub runtime_ratio: Vec<RuntimeRatioEntry>,
    /// Open-arrival sweep (events runtime; sizes beyond the thread cap).
    pub open_runs: Vec<OpenRunEntry>,
    /// Per-decision protocol cost.
    pub decision: Vec<DecisionBenchEntry>,
    /// Epoch-certification amortization sweep (E25; schema v7).
    pub epoch_decision: Vec<EpochDecisionEntry>,
    /// Named-scenario gauntlet results: every scenario over
    /// `config.gauntlet_seeds` seeds, engine + sharded concurrent, with
    /// PRED/Proc-REC verdicts and envelope checks.
    pub scenarios: Vec<ScenarioReport>,
    /// Tracing overhead per sink (E20).
    pub trace_overhead: Vec<TraceOverheadEntry>,
    /// Per-phase wall-time breakdown of an instrumented run per driver
    /// (schema v6).
    pub phases: Vec<PhaseBreakdownEntry>,
    /// Telemetry on-vs-off overhead per driver (E24; schema v6).
    pub telemetry_overhead: Vec<TelemetryOverheadEntry>,
    /// Fsync-policy throughput sweep (E26; schema v8).
    pub durability: Vec<DurabilityBenchEntry>,
    /// Recovery-time-vs-log-length rows (E26; schema v8).
    pub recovery: Vec<RecoveryBenchEntry>,
    /// Coverage notes (anything capped or skipped, never silent).
    pub notes: Vec<String>,
}

/// Bench workloads use longer processes than the defaults so protocol
/// decisions (not fixed engine overhead) dominate; both the indexed and the
/// scan policy run the exact same workloads.
fn bench_workload(seed: u64, processes: usize, density: f64, failures: f64) -> Workload {
    generate(&WorkloadConfig {
        seed,
        processes,
        conflict_density: density,
        failure_probability: failures,
        prefix_len: (2, 5),
        tail_len: (1, 3),
        alternative_probability: 0.5,
        ..WorkloadConfig::default()
    })
}

fn engine_entry(
    cfg: &SchedulerBenchConfig,
    w: &Workload,
    policy: PolicyKind,
    epoch: usize,
) -> BenchEntry {
    engine_entry_wal(cfg, w, policy, epoch, None)
}

/// Engine entry, optionally journaled through a file-backed WAL
/// (`(policy, snapshot cadence, path)`). The WAL variant drives the run
/// through [`RunBuilder`], so the bench measures the same path users take.
fn engine_entry_wal(
    cfg: &SchedulerBenchConfig,
    w: &Workload,
    policy: PolicyKind,
    epoch: usize,
    wal: Option<(DurabilityPolicy, usize, &std::path::Path)>,
) -> BenchEntry {
    let run_cfg = RunConfig {
        policy,
        seed: cfg.seed,
        arrival_gap: cfg.arrival_gap,
        certifier: cfg.certifier,
        epoch,
        ..RunConfig::default()
    };
    let t = Instant::now();
    let r = match &wal {
        None => run(w, run_cfg),
        Some((dpolicy, snapshot_every, path)) => {
            let file = FileWal::create(path).expect("create bench WAL file");
            let writer = WalWriter::new(Box::new(file), *dpolicy, cfg.seed);
            RunBuilder::new(w)
                .config(run_cfg)
                .durability(writer, *snapshot_every)
                .run()
                .into_engine()
        }
    };
    let wall = t.elapsed();
    let events = r.history.events().len();
    BenchEntry {
        mode: "engine",
        policy: policy.label().to_string(),
        certifier: policy
            .certified()
            .then(|| cfg.certifier.label().to_string()),
        processes: w.spec.process_count(),
        density: w.config.conflict_density,
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        committed: r.metrics.committed,
        aborted: r.metrics.aborted,
        makespan: r.metrics.makespan,
        latency_p50: r.metrics.latency_percentile(0.5),
        latency_p95: r.metrics.latency_percentile(0.95),
        shard_mode: None,
        shards: 0,
        clusters: w.config.clusters.max(1),
        lock_wait_ms: 0.0,
        lock_hold_ms: 0.0,
        wakeups: 0,
        spurious_wakeups: 0,
        blocked_time_total: r.metrics.blocked_total(),
        cert_failures: r.metrics.cert_failures,
        abort_reasons: r.metrics.abort_reasons,
        runtime: None,
        workers: 0,
        run_queue_peak: 0,
        in_flight_peak: 0,
        sched_delay_p50_ns: None,
        sched_delay_p95_ns: None,
        epoch,
        durability: wal.map(|(dpolicy, _, _)| dpolicy.label()),
    }
}

pub(crate) fn concurrent_entry(
    cfg: &SchedulerBenchConfig,
    w: &Workload,
    policy: PolicyKind,
    shards: ShardMode,
    runtime: RuntimeKind,
    epoch: usize,
) -> BenchEntry {
    let t = Instant::now();
    let r = run_concurrent(
        w,
        ConcurrentConfig {
            policy,
            seed: cfg.seed,
            certifier: cfg.certifier,
            shards,
            runtime,
            workers: cfg.workers,
            epoch,
            ..ConcurrentConfig::default()
        },
    );
    let wall = t.elapsed();
    let events = r.history.events().len();
    let rt = r.metrics.runtime.as_ref();
    BenchEntry {
        mode: "concurrent",
        policy: policy.label().to_string(),
        certifier: policy
            .certified()
            .then(|| cfg.certifier.label().to_string()),
        processes: w.spec.process_count(),
        density: w.config.conflict_density,
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        committed: r.metrics.committed,
        aborted: r.metrics.aborted,
        makespan: r.metrics.makespan,
        latency_p50: r.metrics.latency_percentile(0.5),
        latency_p95: r.metrics.latency_percentile(0.95),
        shard_mode: Some(shards.label()),
        shards: r.metrics.shards.len() as u64,
        clusters: w.config.clusters.max(1),
        lock_wait_ms: r.metrics.lock_wait_total_ns() as f64 / 1e6,
        lock_hold_ms: r.metrics.lock_hold_total_ns() as f64 / 1e6,
        wakeups: r.metrics.wakeups_total(),
        spurious_wakeups: r.metrics.spurious_wakeups_total(),
        blocked_time_total: r.metrics.blocked_total(),
        cert_failures: r.metrics.cert_failures,
        abort_reasons: r.metrics.abort_reasons,
        runtime: Some(runtime.label().to_string()),
        workers: rt.map_or(0, |m| m.workers),
        run_queue_peak: rt.map_or(0, |m| m.run_queue_peak),
        in_flight_peak: rt.map_or(0, |m| m.in_flight_peak),
        sched_delay_p50_ns: rt.and_then(|m| m.delay_percentile_ns(0.5)),
        sched_delay_p95_ns: rt.and_then(|m| m.delay_percentile_ns(0.95)),
        epoch,
        durability: None,
    }
}

/// Verifies a concurrent history **domain by domain**: events are projected
/// onto the conflict domain of their process and each projection is checked
/// for PRED and Proc-REC separately. Sound and complete for these
/// workloads: the domain partition guarantees operations of different
/// domains never conflict, so cross-domain events commute freely — the full
/// history is PRED iff every domain projection is, and Proc-REC obligations
/// only ever relate conflicting (hence same-domain) pairs. The projection
/// turns the batch checkers' superlinear cost in history length into a sum
/// of small per-domain checks, which is what makes verifying a
/// 100k-process history feasible at all.
fn verify_by_domain(spec: &Spec, history: &Schedule) -> (u64, u64, usize) {
    let partition = DomainPartition::partition(spec);
    let mut per: BTreeMap<u32, Schedule> = BTreeMap::new();
    for e in history.events() {
        match e {
            Event::Execute(g) | Event::Fail(g) | Event::Compensate(g) => {
                if let Some(d) = partition.domain_of(g.process) {
                    per.entry(d).or_default().push(e.clone());
                }
            }
            Event::Commit(p) | Event::Abort(p) => {
                if let Some(d) = partition.domain_of(*p) {
                    per.entry(d).or_default().push(e.clone());
                }
            }
            // Group aborts are always domain-local (cascades follow
            // conflict edges), but split defensively all the same.
            Event::GroupAbort(ps) => {
                let mut by_domain: BTreeMap<u32, Vec<ProcessId>> = BTreeMap::new();
                for p in ps {
                    if let Some(d) = partition.domain_of(*p) {
                        by_domain.entry(d).or_default().push(*p);
                    }
                }
                for (d, members) in by_domain {
                    per.entry(d).or_default().group_abort(members);
                }
            }
        }
    }
    let mut pred_bad = 0u64;
    let mut proc_rec_bad = 0u64;
    let domains = per.len();
    for s in per.values() {
        pred_bad += match check_pred_incremental(spec, s) {
            Ok(report) => u64::from(!report.pred),
            Err(_) => 1,
        };
        proc_rec_bad += match proc_rec_violations(spec, s) {
            Ok(v) => u64::from(!v.is_empty()),
            Err(_) => 1,
        };
    }
    (pred_bad, proc_rec_bad, domains)
}

/// One open-arrival sweep point: Poisson arrivals at `cfg.open_mean_gap_us`
/// mean gap, clusters scaled as ≈ n/96 so the catalog (and the dense
/// conflict bitmap behind it) grows linearly while each conflict domain
/// stays small enough for per-domain verification.
pub(crate) fn open_run_entry(cfg: &SchedulerBenchConfig, n: usize) -> OpenRunEntry {
    let clusters = (n / 96).max(1);
    let density = cfg.densities.first().copied().unwrap_or(0.3);
    let w = generate(&WorkloadConfig {
        seed: cfg.seed,
        processes: n,
        clusters,
        services_per_kind: 4,
        subsystems: 2,
        conflict_density: density,
        failure_probability: cfg.failure_probability,
        arrivals: ArrivalModel::Poisson {
            mean_gap: cfg.open_mean_gap_us.max(1),
        },
        ..WorkloadConfig::default()
    });
    let t = Instant::now();
    let r = run_concurrent(
        &w,
        ConcurrentConfig {
            policy: PolicyKind::Pred,
            seed: cfg.seed,
            certifier: cfg.certifier,
            shards: cfg.shards,
            runtime: RuntimeKind::Events,
            workers: cfg.workers,
            ..ConcurrentConfig::default()
        },
    );
    let wall = t.elapsed();
    let events = r.history.events().len();
    let tv = Instant::now();
    let (pred_bad, proc_rec_bad, domains) = verify_by_domain(&w.spec, &r.history);
    let verify_ms = tv.elapsed().as_secs_f64() * 1e3;
    let rt = r.metrics.runtime.as_ref();
    OpenRunEntry {
        runtime: RuntimeKind::Events.label().to_string(),
        processes: n,
        clusters,
        mean_gap_us: cfg.open_mean_gap_us.max(1),
        density,
        shards: r.metrics.shards.len() as u64,
        workers: rt.map_or(0, |m| m.workers),
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        committed: r.metrics.committed,
        aborted: r.metrics.aborted,
        in_flight_peak: rt.map_or(0, |m| m.in_flight_peak),
        run_queue_peak: rt.map_or(0, |m| m.run_queue_peak),
        sched_delay_p50_ns: rt.and_then(|m| m.delay_percentile_ns(0.5)),
        sched_delay_p95_ns: rt.and_then(|m| m.delay_percentile_ns(0.95)),
        worker_utilization: rt.map_or(0.0, |m| m.utilization()),
        domains_verified: domains,
        pred_violations: pred_bad,
        proc_rec_violations: proc_rec_bad,
        verify_ms,
    }
}

/// E20: the same engine run with different trace sinks. Minimum of several
/// repetitions: for a CPU-bound deterministic run the minimum is the noise
/// floor — every source of interference (scheduler hiccups, cache eviction
/// by neighbours) only ever adds time, so min-of-N is the robust estimator
/// of the true cost and a median at this scale can fake a few percent
/// either way.
pub fn trace_overhead_bench(cfg: &SchedulerBenchConfig) -> Vec<TraceOverheadEntry> {
    let density = cfg.densities.first().copied().unwrap_or(0.3);
    let n = cfg.processes.iter().copied().max().unwrap_or(8);
    let w = bench_workload(cfg.seed, n, density, cfg.failure_probability);
    let run_cfg = RunConfig {
        policy: PolicyKind::Pred,
        seed: cfg.seed,
        arrival_gap: cfg.arrival_gap,
        certifier: cfg.certifier,
        ..RunConfig::default()
    };
    let reps = if cfg.smoke { 7 } else { 9 };
    let min_ms = |mk: &dyn Fn() -> Box<dyn TraceSink>| -> f64 {
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let _ = std::hint::black_box(
                    txproc_engine::RunBuilder::new(&w)
                        .config(run_cfg.clone())
                        .sink(mk())
                        .run(),
                );
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    // The untraced baseline is the public constructor (which installs the
    // no-op sink itself); `noop` measures the explicit sink path.
    let baseline = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let _ = std::hint::black_box(run(&w, run_cfg.clone()));
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);
    let mut out = vec![TraceOverheadEntry {
        sink: "none",
        processes: n,
        density,
        wall_ms: baseline,
        overhead_pct: 0.0,
    }];
    type MkSink<'a> = &'a dyn Fn() -> Box<dyn TraceSink>;
    let sinks: [(&'static str, MkSink<'_>); 3] = [
        ("noop", &|| Box::new(NoopSink)),
        ("ring-4096", &|| Box::new(RingSink::new(4096))),
        ("jsonl-devnull", &|| {
            Box::new(JsonlSink::new(std::io::sink()))
        }),
    ];
    for (name, mk) in sinks {
        let ms = min_ms(mk);
        out.push(TraceOverheadEntry {
            sink: name,
            processes: n,
            density,
            wall_ms: ms,
            overhead_pct: (ms - baseline) / baseline.max(1e-9) * 100.0,
        });
    }
    out
}

/// The per-phase breakdown of one instrumented run per driver, at the
/// largest closed sweep point: engine (virtual-time) and concurrent (events
/// runtime), Pred policy. The phase clocks are wall time in both drivers.
pub fn phase_breakdown_bench(cfg: &SchedulerBenchConfig) -> Vec<PhaseBreakdownEntry> {
    let density = cfg.densities.first().copied().unwrap_or(0.3);
    let n = cfg.processes.iter().copied().max().unwrap_or(8);
    let w = bench_workload(cfg.seed, n, density, cfg.failure_probability);
    let mut out = Vec::new();
    let mut push = |mode: &'static str, tele: &Telemetry| {
        let Some(snap) = tele.snapshot() else { return };
        for p in &snap.phases {
            out.push(PhaseBreakdownEntry {
                mode,
                processes: n,
                density,
                phase: p.phase.clone(),
                count: p.count,
                total_ms: p.total_ns as f64 / 1e6,
                p50_ns: p.p50_ns,
                p95_ns: p.p95_ns,
                max_ns: p.max_ns,
            });
        }
    };
    let tele = Telemetry::on();
    let _ = txproc_engine::RunBuilder::new(&w)
        .config(RunConfig {
            policy: PolicyKind::Pred,
            seed: cfg.seed,
            arrival_gap: cfg.arrival_gap,
            certifier: cfg.certifier,
            ..RunConfig::default()
        })
        .telemetry(tele.clone())
        .run();
    push("engine", &tele);
    let tele = Telemetry::on();
    let _ = txproc_engine::RunBuilder::new(&w)
        .concurrent(ConcurrentConfig {
            policy: PolicyKind::Pred,
            seed: cfg.seed,
            certifier: cfg.certifier,
            shards: cfg.shards,
            runtime: RuntimeKind::Events,
            workers: cfg.workers,
            ..ConcurrentConfig::default()
        })
        .telemetry(tele.clone())
        .run();
    push("concurrent", &tele);
    out
}

/// E24: telemetry on-vs-off wall clock per driver at the largest closed
/// sweep point, min-of-N (the minimum is the noise floor for a CPU-bound
/// run — see [`trace_overhead_bench`]).
pub fn telemetry_overhead_bench(cfg: &SchedulerBenchConfig) -> Vec<TelemetryOverheadEntry> {
    let density = cfg.densities.first().copied().unwrap_or(0.3);
    let n = cfg.processes.iter().copied().max().unwrap_or(8);
    let w = bench_workload(cfg.seed, n, density, cfg.failure_probability);
    let reps = if cfg.smoke { 7 } else { 9 };
    let run_cfg = RunConfig {
        policy: PolicyKind::Pred,
        seed: cfg.seed,
        arrival_gap: cfg.arrival_gap,
        certifier: cfg.certifier,
        ..RunConfig::default()
    };
    let conc_cfg = ConcurrentConfig {
        policy: PolicyKind::Pred,
        seed: cfg.seed,
        certifier: cfg.certifier,
        shards: cfg.shards,
        runtime: RuntimeKind::Events,
        workers: cfg.workers,
        ..ConcurrentConfig::default()
    };
    let min_ms = |f: &dyn Fn()| -> f64 {
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let mut out = Vec::new();
    for (mode, off, on) in [
        (
            "engine",
            &(|| {
                let _ = std::hint::black_box(run(&w, run_cfg.clone()));
            }) as &dyn Fn(),
            &(|| {
                let _ = std::hint::black_box(
                    txproc_engine::RunBuilder::new(&w)
                        .config(run_cfg.clone())
                        .telemetry(Telemetry::on())
                        .run(),
                );
            }) as &dyn Fn(),
        ),
        (
            "concurrent",
            &(|| {
                let _ = std::hint::black_box(run_concurrent(&w, conc_cfg.clone()));
            }) as &dyn Fn(),
            &(|| {
                let _ = std::hint::black_box(
                    txproc_engine::RunBuilder::new(&w)
                        .concurrent(conc_cfg.clone())
                        .telemetry(Telemetry::on())
                        .run(),
                );
            }) as &dyn Fn(),
        ),
    ] {
        let wall_off = min_ms(off);
        let wall_on = min_ms(on);
        out.push(TelemetryOverheadEntry {
            mode,
            processes: n,
            density,
            wall_ms_off: wall_off,
            wall_ms_on: wall_on,
            overhead_pct: (wall_on - wall_off) / wall_off.max(1e-9) * 100.0,
        });
    }
    out
}

/// Times `f` adaptively: batches until one batch exceeds ~2ms, then takes
/// the median of a few batch samples. Returns nanoseconds per call.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t.elapsed().as_micros() >= 2_000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Per-decision microbenchmark: grow a protocol state by recording live
/// (uncommitted) operations process by process, probing `request` cost at
/// checkpoints.
fn decision_bench(cfg: &SchedulerBenchConfig) -> Vec<DecisionBenchEntry> {
    let checkpoints: &[usize] = if cfg.smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let max_ops = *checkpoints.last().expect("non-empty");
    // Enough processes that recording every activity passes the last
    // checkpoint (avg ≈ 7 ops per process at these length ranges).
    let w = bench_workload(cfg.seed, max_ops / 4 + 32, 0.3, 0.0);
    let mut prot = Protocol::new(&w.spec, DeferPolicy::PrepareAndDefer);
    let mut out = Vec::new();
    let mut recorded = 0usize;
    let mut next_checkpoint = 0usize;
    let processes: Vec<_> = w.spec.processes().collect();
    // The probe is a registered process with no operations: its request
    // cost is pure lookup work, not amortized maintenance.
    let probe = ProcessId(u32::MAX);
    prot.register(probe);
    let probe_svcs: Vec<_> = processes[0]
        .iter()
        .map(|(id, _)| processes[0].service(id))
        .collect();
    'record: for p in &processes {
        prot.register(p.id);
        for (a, _) in p.iter() {
            prot.record_executed(GlobalActivityId::new(p.id, a), false);
            recorded += 1;
            if next_checkpoint < checkpoints.len() && recorded >= checkpoints[next_checkpoint] {
                let edges = prot.edges().count();
                let indexed = time_ns(|| {
                    for &svc in &probe_svcs {
                        std::hint::black_box(prot.request(probe, svc));
                    }
                }) / probe_svcs.len() as f64;
                let scan = time_ns(|| {
                    for &svc in &probe_svcs {
                        std::hint::black_box(prot.scan_request(probe, svc));
                    }
                }) / probe_svcs.len() as f64;
                out.push(DecisionBenchEntry {
                    live_ops: recorded,
                    edges,
                    ns_per_request_indexed: indexed,
                    ns_per_request_scan: scan,
                });
                next_checkpoint += 1;
                if next_checkpoint == checkpoints.len() {
                    break 'record;
                }
            }
        }
    }
    out
}

/// E25 microbench: amortized group-certification cost. Records a
/// failure-free high-conflict (d = 0.6) history into an [`IncrementalPred`]
/// up to a cut near the end — committed-heavy, so the certifier's
/// accumulated state (conflict rows, pair counts, commit bookkeeping) is
/// large — then times `certify_epoch` on the next N consecutive history
/// events for N ∈ {1, 4, 16, 64}. One scratch clone of the certifier serves
/// the whole batch, so the clone cost amortizes over N while the per-event
/// plan work does not; the amortized ns/event ratio between N = 1 and
/// larger N is the group-certification win in isolation. The window is
/// all-accepted by construction: the engine kept the failure-free history
/// PRED, so every prefix is reducible and no batch is cut short.
pub fn epoch_decision_bench(cfg: &SchedulerBenchConfig) -> Vec<EpochDecisionEntry> {
    const BATCHES: [usize; 4] = [1, 4, 16, 64];
    let max_batch = *BATCHES.last().expect("non-empty");
    let processes = if cfg.smoke { 64 } else { 256 };
    let density = 0.6;
    let w = bench_workload(cfg.seed, processes, density, 0.0);
    let r = run(
        &w,
        RunConfig {
            policy: PolicyKind::Pred,
            seed: cfg.seed,
            certifier: cfg.certifier,
            ..RunConfig::default()
        },
    );
    let events = r.history.events();
    assert!(
        events.len() >= 2 * max_batch,
        "epoch microbench history too short ({} events)",
        events.len()
    );
    // A 7/8 cut: most processes committed (large accumulated state), with
    // the largest batch still inside the history.
    let cut = (events.len() - events.len() / 8).min(events.len() - max_batch);
    let mut cert = IncrementalPred::new(&w.spec);
    for e in &events[..cut] {
        cert.record(e).expect("engine history prefix is legal");
    }
    assert!(
        cert.certify_epoch(&events[cut..cut + max_batch])
            .accepted_all(),
        "failure-free PRED history window must be fully accepted"
    );
    let mut out = Vec::new();
    let mut single_ns = f64::NAN;
    for &n in &BATCHES {
        let batch = &events[cut..cut + n];
        let ns_per_batch = time_ns(|| {
            std::hint::black_box(cert.certify_epoch(std::hint::black_box(batch)));
        });
        let ns_per_event = ns_per_batch / n as f64;
        if n == 1 {
            single_ns = ns_per_event;
        }
        out.push(EpochDecisionEntry {
            processes,
            density,
            prefix_events: cut,
            epoch: n,
            ns_per_batch,
            ns_per_event,
            speedup_vs_single: single_ns / ns_per_event.max(1e-9),
        });
    }
    out
}

/// Streams an already-recorded WAL sequence through a fresh file-backed
/// writer under `policy`, returning (wall ms, fsyncs issued). Epoch seals
/// go through [`WalWriter::seal_epoch`] so `FsyncPerEpoch` groups its
/// syncs exactly as it did during the original run.
fn replay_records_through(
    dir: &std::path::Path,
    policy: DurabilityPolicy,
    seed: u64,
    records: &[WalRecord],
) -> (f64, u64) {
    let path = dir.join(format!("isolated-{}.wal", policy.label()));
    let Ok(file) = FileWal::create(&path) else {
        return (f64::NAN, 0);
    };
    let t = Instant::now();
    let mut writer = WalWriter::new(Box::new(file), policy, seed);
    for record in records {
        match record {
            // `new` already appended the header.
            WalRecord::Begin { .. } => {}
            // `seal_epoch` appends the seal record itself.
            WalRecord::EpochSeal { epoch } => writer.seal_epoch(*epoch),
            other => writer.append(other),
        }
    }
    writer.finish();
    let syncs = writer.syncs();
    (t.elapsed().as_secs_f64() * 1e3, syncs)
}

/// E26: fsync-policy throughput sweep plus recovery-time-vs-log-length
/// rows, at the highest-density point with `cfg.durability_processes`
/// processes. WAL files live in (and are removed from) a per-process temp
/// directory; the journaled [`BenchEntry`] rows are appended to `runs` so
/// the regression gate tracks them under `/wal:`-suffixed keys.
pub fn durability_bench(
    cfg: &SchedulerBenchConfig,
    runs: &mut Vec<BenchEntry>,
    notes: &mut Vec<String>,
) -> (Vec<DurabilityBenchEntry>, Vec<RecoveryBenchEntry>) {
    let n = cfg.durability_processes;
    if n == 0 {
        notes.push("durability sweep skipped (durability_processes = 0)".to_string());
        return (Vec::new(), Vec::new());
    }
    let density = cfg.densities.iter().copied().fold(0.3, f64::max);
    let epoch = cfg.epoch.max(1);
    let w = bench_workload(cfg.seed, n, density, cfg.failure_probability);
    let dir = std::env::temp_dir().join(format!("txproc-bench-wal-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        notes.push(format!("durability sweep skipped: temp dir failed ({e})"));
        return (Vec::new(), Vec::new());
    }

    // Unlogged baseline: same workload, policy, and epoch, no WAL.
    let unlogged = engine_entry(cfg, &w, PolicyKind::Pred, epoch);
    let baseline_eps = unlogged.events_per_sec.max(1e-9);

    let policies = [
        DurabilityPolicy::Buffered,
        DurabilityPolicy::FsyncPerEpoch,
        DurabilityPolicy::FsyncEveryN(8),
        DurabilityPolicy::FsyncEveryN(1),
    ];
    // End-to-end pass: the engine run re-driven with the WAL on its
    // critical path. The record *content* is policy-independent (same
    // deterministic run), so the buffered file doubles as the replay
    // stream for the isolated pass below.
    let mut measured = Vec::new();
    for dpolicy in policies {
        let path = dir.join(format!("throughput-{}.wal", dpolicy.label()));
        let entry = engine_entry_wal(cfg, &w, PolicyKind::Pred, epoch, Some((dpolicy, 64, &path)));
        let wal_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let wal_records = read_wal_file(&path).map(|(r, _)| r.len()).unwrap_or(0);
        measured.push((dpolicy, entry, wal_records, wal_bytes));
    }
    let stream = read_wal_file(&dir.join("throughput-buffered.wal"))
        .map(|(r, _)| r)
        .unwrap_or_default();

    // Isolated pass: stream the same records through a fresh writer per
    // policy. End-to-end numbers dilute the fsync cost with engine compute;
    // this is the durability layer alone, where the policy *is* the cost.
    let mut durability = Vec::new();
    for (dpolicy, entry, wal_records, wal_bytes) in measured {
        let (wal_only_ms, wal_only_syncs) =
            replay_records_through(&dir, dpolicy, cfg.seed, &stream);
        durability.push(DurabilityBenchEntry {
            policy: dpolicy.label(),
            processes: n,
            density,
            epoch,
            events: entry.events,
            wall_ms: entry.wall_ms,
            events_per_sec: entry.events_per_sec,
            wal_records,
            wal_bytes,
            throughput_vs_unlogged: entry.events_per_sec / baseline_eps,
            wal_only_ms,
            wal_only_records_per_sec: stream.len() as f64 / (wal_only_ms / 1e3).max(1e-9),
            wal_only_syncs,
        });
        runs.push(entry);
    }
    let entry_of = |label: &str| durability.iter().find(|e| e.policy == label);
    if let (Some(group), Some(per_record)) = (entry_of("fsync-epoch"), entry_of("fsync-1")) {
        notes.push(format!(
            "durability (E26): WAL-only, fsync-epoch appends at {:.1}x the rate of fsync-1 \
             ({} vs {} fsyncs over {} records, n={n} d={density} epoch {epoch}; acceptance \
             floor 2x); end-to-end engine throughput ratio {:.2}x; buffered runs at {:.2}x \
             unlogged",
            group.wal_only_records_per_sec / per_record.wal_only_records_per_sec.max(1e-9),
            group.wal_only_syncs,
            per_record.wal_only_syncs,
            stream.len(),
            group.events_per_sec / per_record.events_per_sec.max(1e-9),
            entry_of("buffered").map_or(0.0, |e| e.events_per_sec) / baseline_eps,
        ));
    }

    // Recovery rows: one journaled run per snapshot cadence, crashed at the
    // durable end of its log, rebuilt from growing prefixes. Cutting the
    // record list (not raw bytes) keeps every prefix frame-aligned; the
    // crash-sweep tests own the torn-byte cases.
    let mut recovery = Vec::new();
    for snapshot_every in [0usize, 64] {
        let path = dir.join(format!("recovery-snap{snapshot_every}.wal"));
        let file = match FileWal::create(&path) {
            Ok(f) => f,
            Err(e) => {
                notes.push(format!("recovery rows skipped: WAL create failed ({e})"));
                continue;
            }
        };
        let writer = WalWriter::new(Box::new(file), DurabilityPolicy::Buffered, cfg.seed);
        let engine = Engine::new(
            &w,
            RunConfig {
                policy: PolicyKind::Pred,
                seed: cfg.seed,
                arrival_gap: cfg.arrival_gap,
                certifier: cfg.certifier,
                epoch,
                ..RunConfig::default()
            },
        )
        .with_wal(writer, snapshot_every);
        let _ = engine.run();
        let Ok((records, _)) = read_wal_file(&path) else {
            continue;
        };
        let total_bytes = std::fs::metadata(&path)
            .map(|m| m.len() as usize)
            .unwrap_or(0);
        for cut in [records.len() / 4, records.len() / 2, records.len()] {
            if cut == 0 {
                continue;
            }
            let prefix = &records[..cut];
            let t = Instant::now();
            let Ok(image) = rebuild_image(&w, prefix) else {
                continue;
            };
            let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
            let history_events = image.history.len();
            let t = Instant::now();
            let Ok(_report) = recover(&w, image) else {
                continue;
            };
            recovery.push(RecoveryBenchEntry {
                log_records: cut,
                log_bytes: total_bytes * cut / records.len().max(1),
                snapshot_every,
                history_events,
                rebuild_ms,
                recover_ms: t.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    if let Some(full) = recovery
        .iter()
        .filter(|r| r.snapshot_every == 0)
        .max_by_key(|r| r.log_records)
    {
        notes.push(format!(
            "recovery (E26): full-log rebuild+recover {:.2} ms over {} records; \
             snapshots every 64 events: {:.2} ms",
            full.rebuild_ms + full.recover_ms,
            full.log_records,
            recovery
                .iter()
                .filter(|r| r.snapshot_every == 64)
                .max_by_key(|r| r.log_records)
                .map(|r| r.rebuild_ms + r.recover_ms)
                .unwrap_or(f64::NAN),
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    (durability, recovery)
}

/// Runs the full scheduler bench and assembles the report.
pub fn run_scheduler_bench(cfg: &SchedulerBenchConfig) -> BenchReport {
    let mut runs = Vec::new();
    let mut runtime_ratio = Vec::new();
    let mut notes = Vec::new();
    for &density in &cfg.densities {
        for &n in &cfg.processes {
            let w = bench_workload(cfg.seed, n, density, cfg.failure_probability);
            for &policy in &cfg.policies {
                runs.push(engine_entry(cfg, &w, policy, 0));
                runs.push(concurrent_entry(
                    cfg,
                    &w,
                    policy,
                    cfg.shards,
                    cfg.runtime,
                    0,
                ));
            }
            // Events-vs-threads ratio pair (Pred policy). Best of 3 per
            // runtime: one-shot wall clocks at these sizes are dominated by
            // spawn noise, and the minimum is the robust estimator for a
            // CPU-bound run.
            if n <= cfg.concurrent_max_processes {
                let best = |rt: RuntimeKind| {
                    (0..3)
                        .map(|_| concurrent_entry(cfg, &w, PolicyKind::Pred, cfg.shards, rt, 0))
                        .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec))
                        .expect("three repetitions")
                };
                let ev = best(RuntimeKind::Events);
                let th = best(RuntimeKind::Threads);
                runtime_ratio.push(RuntimeRatioEntry {
                    processes: n,
                    density,
                    events_per_sec_events: ev.events_per_sec,
                    events_per_sec_threads: th.events_per_sec,
                    ratio: ev.events_per_sec / th.events_per_sec.max(1e-9),
                });
                runs.push(th);
            }
        }
    }
    if cfg
        .processes
        .iter()
        .any(|&n| n > cfg.concurrent_max_processes)
    {
        notes.push(format!(
            "thread-per-process baseline time-boxed at {} processes; larger closed points run the events runtime only",
            cfg.concurrent_max_processes
        ));
    }
    if let Some(worst) = runtime_ratio
        .iter()
        .min_by(|a, b| a.ratio.total_cmp(&b.ratio))
    {
        notes.push(format!(
            "events-vs-threads closed-sweep throughput ratio: worst {:.2}x at n={} d={} (acceptance floor 0.9x)",
            worst.ratio, worst.processes, worst.density
        ));
    }
    // Sharding comparison (E21 headline): the same multi-tenant workload —
    // disjoint clusters give the partitioner real domains to find — driven
    // once single-lock and once auto-sharded. The classic single-pool
    // workloads above birthday-collide into one giant conflict domain, so
    // they exercise the `shards` plumbing but cannot show parallel
    // admission; that coverage gap is what the clustered pair closes.
    if cfg.sharding_clusters > 1 {
        let n = cfg.sharding_processes;
        let density = cfg.densities.first().copied().unwrap_or(0.3);
        let w = generate(&WorkloadConfig {
            seed: cfg.seed,
            processes: n,
            clusters: cfg.sharding_clusters,
            conflict_density: density,
            failure_probability: cfg.failure_probability,
            prefix_len: (2, 5),
            tail_len: (1, 3),
            alternative_probability: 0.5,
            ..WorkloadConfig::default()
        });
        let single = concurrent_entry(cfg, &w, PolicyKind::Pred, ShardMode::Single, cfg.runtime, 0);
        let auto = concurrent_entry(cfg, &w, PolicyKind::Pred, ShardMode::Auto, cfg.runtime, 0);
        notes.push(format!(
            "sharding: {} processes, density {density}, {} clusters -> {} shards; auto vs single-lock speedup {:.2}x events/sec",
            n,
            cfg.sharding_clusters,
            auto.shards,
            auto.events_per_sec / single.events_per_sec.max(1e-9),
        ));
        runs.push(single);
        runs.push(auto);
    }
    // Epoch group-certification sweep (E25 headline): the highest-density
    // points re-driven with `cfg.epoch`-sized epochs under the Pred policy
    // on both drivers. When the main sweep's policy list did not already
    // produce per-event Pred baselines at those points (smoke mode), they
    // are driven here so the comparison is always in the report.
    if cfg.epoch > 0 {
        let density = cfg.densities.iter().copied().fold(0.0, f64::max);
        let is_pred_point = |e: &BenchEntry, mode: &str, n: usize, epoch: usize| {
            e.mode == mode
                && e.policy == PolicyKind::Pred.label()
                && e.processes == n
                && e.density == density
                && e.epoch == epoch
                && (mode != "concurrent" || e.runtime.as_deref() == Some(cfg.runtime.label()))
        };
        for &n in &cfg.processes {
            let w = bench_workload(cfg.seed, n, density, cfg.failure_probability);
            if !runs.iter().any(|e| is_pred_point(e, "engine", n, 0)) {
                runs.push(engine_entry(cfg, &w, PolicyKind::Pred, 0));
            }
            if !runs.iter().any(|e| is_pred_point(e, "concurrent", n, 0)) {
                runs.push(concurrent_entry(
                    cfg,
                    &w,
                    PolicyKind::Pred,
                    cfg.shards,
                    cfg.runtime,
                    0,
                ));
            }
            runs.push(engine_entry(cfg, &w, PolicyKind::Pred, cfg.epoch));
            runs.push(concurrent_entry(
                cfg,
                &w,
                PolicyKind::Pred,
                cfg.shards,
                cfg.runtime,
                cfg.epoch,
            ));
        }
        for &n in &cfg.processes {
            let eps = |mode: &str, epoch: usize| {
                runs.iter()
                    .filter(|e| is_pred_point(e, mode, n, epoch))
                    .map(|e| e.events_per_sec)
                    .fold(f64::NAN, f64::max)
            };
            let eng = eps("engine", cfg.epoch) / eps("engine", 0);
            let conc = eps("concurrent", cfg.epoch) / eps("concurrent", 0);
            if eng.is_finite() && conc.is_finite() {
                notes.push(format!(
                    "epoch {}: d={density} n={n} pred events/sec vs per-event — \
                     engine {eng:.2}x, concurrent {conc:.2}x",
                    cfg.epoch
                ));
            }
        }
    }
    let open_runs: Vec<OpenRunEntry> = cfg
        .open_processes
        .iter()
        .map(|&n| open_run_entry(cfg, n))
        .collect();
    if !cfg.open_processes.is_empty() {
        let thread_cap = RuntimeKind::Threads
            .max_processes()
            .expect("thread runtime is capped");
        notes.push(format!(
            "open-arrival sweep runs the events runtime only: the thread-per-process \
             runtime is hard-capped at {thread_cap} processes"
        ));
    }
    let decision = decision_bench(cfg);
    let epoch_decision = epoch_decision_bench(cfg);
    if let Some(e16) = epoch_decision.iter().find(|e| e.epoch == 16) {
        notes.push(format!(
            "epoch certification (E25): amortized {:.0} ns/event at N=16 vs {:.0} at N=1 — \
             {:.2}x cheaper ({} processes, d={})",
            e16.ns_per_event,
            e16.ns_per_event * e16.speedup_vs_single,
            e16.speedup_vs_single,
            e16.processes,
            e16.density
        ));
    }
    let trace_overhead = trace_overhead_bench(cfg);
    let phases = phase_breakdown_bench(cfg);
    let telemetry_overhead = telemetry_overhead_bench(cfg);
    if let Some(worst) = telemetry_overhead
        .iter()
        .max_by(|a, b| a.overhead_pct.total_cmp(&b.overhead_pct))
    {
        notes.push(format!(
            "telemetry overhead (E24): worst {:+.2}% ({}) at n={} d={} (budget 3%)",
            worst.overhead_pct, worst.mode, worst.processes, worst.density
        ));
    }
    let (durability, recovery) = durability_bench(cfg, &mut runs, &mut notes);
    let scenarios = if cfg.gauntlet_seeds > 0 {
        run_gauntlet(&GauntletConfig {
            seeds: cfg.gauntlet_seeds,
            runtime: cfg.runtime,
            workers: cfg.workers,
            ..GauntletConfig::full()
        })
    } else {
        notes.push("scenario gauntlet skipped (gauntlet_seeds = 0)".to_string());
        Vec::new()
    };
    BenchReport {
        // v8 (additive over v7): the per-run `durability` field (null on
        // unlogged runs, so pre-v8 regression keys are unchanged), the
        // `durability` fsync-policy sweep, and the `recovery`
        // time-vs-log-length rows (E26). (v7 added the per-run `epoch`
        // field, the epoch group-certification sweep entries at the highest
        // density, and the `epoch_decision` amortization microbench (E25);
        // v6 added the `phases` per-phase wall-time breakdown per driver
        // and the `telemetry_overhead` on-vs-off rows; v5 added per-entry
        // runtime/worker/run-queue/scheduling-delay fields, the
        // `runtime_ratio` events-vs-threads pairs and the `open_runs`
        // Poisson sweep; v4 added the `scenarios` gauntlet array; v3 added
        // shard_mode/shards/clusters, lock contention and wakeup counters
        // over v2.)
        schema: "txproc-bench-scheduler/v8",
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        config: cfg.clone(),
        runs,
        runtime_ratio,
        open_runs,
        decision,
        epoch_decision,
        scenarios,
        trace_overhead,
        phases,
        telemetry_overhead,
        durability,
        recovery,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_entries() {
        let mut cfg = SchedulerBenchConfig::smoke();
        cfg.processes = vec![6];
        cfg.concurrent_max_processes = 6;
        cfg.gauntlet_seeds = 2;
        cfg.open_processes = vec![40];
        cfg.durability_processes = 6;
        let report = run_scheduler_bench(&cfg);
        // Per (density, n) point: engine + events-concurrent per policy,
        // plus the threads ratio baseline; then the single/auto sharding
        // pair; then the epoch sweep (per-event Pred baseline pair — smoke
        // policies don't include Pred — plus the epoch-16 pair); then the
        // four WAL-journaled durability runs (v8).
        assert_eq!(report.runs.len(), 15);
        assert!(report.runs.iter().all(|e| e.events > 0));
        // v7: the epoch sweep drove both drivers at epoch 16 under Pred,
        // next to per-event baselines at the same point. (The durability
        // sweep adds four more epoch-16 engine runs.)
        let epoch_runs: Vec<_> = report
            .runs
            .iter()
            .filter(|e| e.epoch > 0 && e.durability.is_none())
            .collect();
        assert_eq!(epoch_runs.len(), 2);
        let epoch_modes: Vec<_> = epoch_runs.iter().map(|e| e.mode).collect();
        assert_eq!(epoch_modes, vec!["engine", "concurrent"]);
        assert!(epoch_runs
            .iter()
            .all(|e| e.epoch == 16 && e.policy == "pred"));
        assert!(report
            .runs
            .iter()
            .any(|e| e.mode == "engine" && e.policy == "pred" && e.epoch == 0));
        assert!(report.notes.iter().any(|n| n.starts_with("epoch 16:")));
        // Concurrent entries now carry wall-clock latency/makespan,
        // shard/lock observability and the runtime lane; engine entries
        // stay virtual-time.
        for e in &report.runs {
            if e.mode == "concurrent" {
                assert!(e.shard_mode.is_some());
                assert!(e.shards >= 1);
                assert!(e.makespan > 0, "wall-clock makespan missing");
                assert!(e.latency_p50.is_some() && e.latency_p95.is_some());
                assert!(e.wakeups >= e.spurious_wakeups);
                assert!(e.runtime.is_some());
                assert!(e.workers >= 1);
                assert!(e.in_flight_peak >= 1);
            } else {
                assert!(e.shard_mode.is_none());
                assert_eq!(e.shards, 0);
                assert!(e.runtime.is_none());
            }
        }
        // The ratio pair measured both runtimes at the one closed point.
        assert_eq!(report.runtime_ratio.len(), 1);
        let pair = &report.runtime_ratio[0];
        assert_eq!(pair.processes, 6);
        assert!(pair.events_per_sec_events > 0.0 && pair.events_per_sec_threads > 0.0);
        assert!(report
            .runs
            .iter()
            .any(|e| e.runtime.as_deref() == Some("threads")));
        // Open-arrival point: events runtime, Poisson arrivals, verified
        // per conflict domain with zero violations.
        assert_eq!(report.open_runs.len(), 1);
        let open = &report.open_runs[0];
        assert_eq!(open.runtime, "events");
        assert_eq!(open.processes, 40);
        assert_eq!(open.committed + open.aborted, 40);
        assert!(open.domains_verified >= 1);
        assert_eq!(open.pred_violations, 0);
        assert_eq!(open.proc_rec_violations, 0);
        assert!(open.in_flight_peak >= 1);
        let pair: Vec<_> = report.runs.iter().filter(|e| e.clusters > 1).collect();
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].shard_mode.as_deref(), Some("single"));
        assert_eq!(pair[1].shard_mode.as_deref(), Some("auto"));
        assert_eq!(pair[0].shards, 1);
        assert!(pair[1].shards > 1, "clustered workload found no domains");
        assert!(report.notes.iter().any(|n| n.starts_with("sharding:")));
        assert_eq!(report.decision.len(), 2);
        assert!(report
            .decision
            .iter()
            .all(|d| d.ns_per_request_indexed > 0.0 && d.ns_per_request_scan > 0.0));
        // E25: the amortization microbench probes N ∈ {1, 4, 16, 64} and
        // normalizes speedups against its own N = 1 point.
        let ns: Vec<_> = report.epoch_decision.iter().map(|e| e.epoch).collect();
        assert_eq!(ns, vec![1, 4, 16, 64]);
        assert!(report
            .epoch_decision
            .iter()
            .all(|e| e.ns_per_event > 0.0 && e.ns_per_batch > 0.0 && e.prefix_events > 0));
        assert!((report.epoch_decision[0].speedup_vs_single - 1.0).abs() < 1e-9);
        // E20 sinks: untraced baseline plus the three sink variants.
        let sinks: Vec<_> = report.trace_overhead.iter().map(|t| t.sink).collect();
        assert_eq!(sinks, vec!["none", "noop", "ring-4096", "jsonl-devnull"]);
        assert!(report.trace_overhead.iter().all(|t| t.wall_ms > 0.0));
        // v4: the scenario gauntlet section covers every registered
        // scenario in both modes with zero correctness violations.
        assert_eq!(report.scenarios.len(), 6);
        for s in &report.scenarios {
            assert_eq!(s.seeds, 2);
            let modes: Vec<_> = s.modes.iter().map(|m| m.mode).collect();
            assert_eq!(modes, vec!["engine", "concurrent"], "{}", s.name);
            for m in &s.modes {
                assert_eq!(m.pred_violations, 0, "{}/{}", s.name, m.mode);
                assert_eq!(m.proc_rec_violations, 0, "{}/{}", s.name, m.mode);
            }
        }
        // v6: per-phase breakdown for both drivers and the E24 telemetry
        // on-vs-off rows.
        let modes: Vec<_> = report
            .phases
            .iter()
            .map(|p| p.mode)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        assert_eq!(modes, vec!["concurrent", "engine"]);
        assert!(report
            .phases
            .iter()
            .any(|p| p.mode == "engine" && p.phase == "certify" && p.count > 0));
        for p in &report.phases {
            assert!(p.p50_ns <= p.p95_ns && p.p95_ns <= p.max_ns, "{:?}", p);
        }
        assert_eq!(report.telemetry_overhead.len(), 2);
        assert!(report
            .telemetry_overhead
            .iter()
            .all(|t| t.wall_ms_off > 0.0 && t.wall_ms_on > 0.0));
        // v8 (E26): one durability row per fsync policy, journaled runs in
        // `runs` carrying their policy label, and recovery rows covering
        // both snapshot cadences with growing log prefixes.
        let dur: Vec<_> = report
            .durability
            .iter()
            .map(|d| d.policy.as_str())
            .collect();
        assert_eq!(dur, vec!["buffered", "fsync-epoch", "fsync-8", "fsync-1"]);
        assert!(report
            .durability
            .iter()
            .all(|d| d.events > 0 && d.wal_records > 0 && d.wal_bytes > 0));
        // The isolated pass replayed the same stream under every policy;
        // fsync-1 syncs once per record, fsync-epoch once per seal (+finish).
        assert!(report
            .durability
            .iter()
            .all(|d| d.wal_only_ms > 0.0 && d.wal_only_records_per_sec > 0.0));
        let syncs_of = |label: &str| {
            report
                .durability
                .iter()
                .find(|d| d.policy == label)
                .map(|d| d.wal_only_syncs)
                .unwrap()
        };
        assert_eq!(syncs_of("buffered"), 0);
        assert!(syncs_of("fsync-1") > syncs_of("fsync-8"));
        assert!(syncs_of("fsync-8") > syncs_of("fsync-epoch"));
        assert_eq!(
            report
                .runs
                .iter()
                .filter(|e| e.durability.is_some())
                .count(),
            4
        );
        assert!(!report.recovery.is_empty());
        assert!(report
            .recovery
            .iter()
            .all(|r| r.log_records > 0 && r.rebuild_ms >= 0.0));
        assert!(report.recovery.iter().any(|r| r.snapshot_every == 64));
        assert!(report
            .notes
            .iter()
            .any(|n| n.starts_with("durability (E26):")));
        assert!(report
            .notes
            .iter()
            .any(|n| n.starts_with("recovery (E26):")));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("txproc-bench-scheduler/v8"));
        assert!(json.contains("throughput_vs_unlogged"));
        assert!(json.contains("wal_only_records_per_sec"));
        assert!(json.contains("snapshot_every"));
        assert!(json.contains("epoch_decision"));
        assert!(json.contains("speedup_vs_single"));
        assert!(json.contains("telemetry_overhead"));
        assert!(json.contains("\"phases\""));
        assert!(json.contains("abort_reasons"));
        assert!(json.contains("blocked_time_total"));
        assert!(json.contains("shard_mode"));
        assert!(json.contains("spurious_wakeups"));
        assert!(json.contains("zipf-hotspot"));
        assert!(json.contains("envelope_breaches"));
        assert!(json.contains("runtime_ratio"));
        assert!(json.contains("open_runs"));
        assert!(json.contains("sched_delay_p95_ns"));
    }
}
