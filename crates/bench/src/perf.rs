//! Scheduler perf trajectory: scalability scenarios over the virtual-time
//! engine and the concurrent driver, plus a protocol decision-cost
//! microbenchmark, written to `BENCH_scheduler.json` so later PRs can
//! detect regressions (E19).
//!
//! Two complementary measurements:
//!
//! * **End-to-end** — wall-clock per full run at 8→256 processes and
//!   several conflict densities, per policy. `pred-scan` (the retained
//!   scan-based oracle as a live policy) is the pre-index baseline;
//!   `pred-protocol` is the same decision logic answered from the
//!   maintained indexes — the ratio is the tentpole's end-to-end speedup.
//! * **Per-decision** — nanoseconds per `request` (indexed vs scan) as the
//!   number of live operations grows, driving the
//!   [`Protocol`](txproc_core::protocol::Protocol) directly. This isolates
//!   the O(degree)-vs-O(total ops) claim from engine overhead.

use crate::scenarios::{run_gauntlet, GauntletConfig, ScenarioReport};
use serde::Serialize;
use std::time::Instant;
use txproc_core::ids::{GlobalActivityId, ProcessId};
use txproc_core::protocol::{DeferPolicy, Protocol};
use txproc_core::trace::{JsonlSink, NoopSink, RingSink, TraceSink};
use txproc_engine::concurrent::{run_concurrent, ConcurrentConfig, ShardMode};
use txproc_engine::engine::{run, Engine, RunConfig};
use txproc_engine::policy::{CertifierKind, PolicyKind};
use txproc_sim::metrics::AbortReasons;
use txproc_sim::workload::{generate, Workload, WorkloadConfig};

/// Configuration of a scheduler bench run.
#[derive(Debug, Clone, Serialize)]
pub struct SchedulerBenchConfig {
    /// Smoke mode: minimal sizes, CI-friendly wall time.
    pub smoke: bool,
    /// Workload seed.
    pub seed: u64,
    /// Process counts to sweep.
    pub processes: Vec<usize>,
    /// Conflict densities to sweep.
    pub densities: Vec<f64>,
    /// Policies to compare.
    pub policies: Vec<PolicyKind>,
    /// Certifier used by certified policies.
    pub certifier: CertifierKind,
    /// Virtual time between arrivals (engine runs).
    pub arrival_gap: u64,
    /// Failure-injection probability.
    pub failure_probability: f64,
    /// Largest process count driven through the concurrent (thread-per-
    /// process) driver; larger sweep points run the engine only. Recorded
    /// in the report so the cap is never silent.
    pub concurrent_max_processes: usize,
    /// Shard topology for concurrent sweep entries.
    pub shards: ShardMode,
    /// Cluster count (disjoint tenants) of the dedicated sharding
    /// comparison workload; 0 disables the comparison sweep.
    pub sharding_clusters: usize,
    /// Process count of the sharding comparison workload (larger than the
    /// general concurrent cap: the single-vs-auto contrast is the point of
    /// that pair, and it grows with scale).
    pub sharding_processes: usize,
    /// Seeds per named scenario in the gauntlet section (0 skips it).
    pub gauntlet_seeds: u64,
}

impl SchedulerBenchConfig {
    /// The full trajectory: 8→256 processes, two densities, indexed vs
    /// scan vs certified vs serial.
    pub fn full() -> Self {
        Self {
            smoke: false,
            seed: 3,
            processes: vec![8, 16, 32, 64, 128, 256],
            densities: vec![0.3, 0.6],
            policies: vec![
                PolicyKind::PredProtocol,
                PolicyKind::PredScan,
                PolicyKind::Pred,
                PolicyKind::Serial,
            ],
            certifier: CertifierKind::Incremental,
            arrival_gap: 0,
            failure_probability: 0.1,
            concurrent_max_processes: 64,
            shards: ShardMode::Auto,
            sharding_clusters: 8,
            sharding_processes: 128,
            gauntlet_seeds: 128,
        }
    }

    /// CI smoke mode: the same pipeline at token sizes.
    pub fn smoke() -> Self {
        Self {
            smoke: true,
            processes: vec![8, 32],
            densities: vec![0.3],
            policies: vec![PolicyKind::PredProtocol, PolicyKind::PredScan],
            concurrent_max_processes: 16,
            sharding_clusters: 4,
            sharding_processes: 16,
            gauntlet_seeds: 4,
            ..Self::full()
        }
    }
}

/// One end-to-end run measurement.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEntry {
    /// `engine` (virtual time) or `concurrent` (thread per process).
    pub mode: &'static str,
    /// Policy label.
    pub policy: String,
    /// Certifier label (certified policies only).
    pub certifier: Option<String>,
    /// Processes in the workload.
    pub processes: usize,
    /// Conflict density of the workload.
    pub density: f64,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Emitted history events.
    pub events: usize,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Committed processes.
    pub committed: u64,
    /// Aborted processes.
    pub aborted: u64,
    /// Makespan: virtual ticks for engine runs, wall-clock microseconds
    /// for concurrent runs.
    pub makespan: u64,
    /// Latency p50: virtual ticks (engine) or wall-clock µs (concurrent).
    pub latency_p50: Option<u64>,
    /// Latency p95: virtual ticks (engine) or wall-clock µs (concurrent).
    pub latency_p95: Option<u64>,
    /// Shard topology label (concurrent runs only).
    pub shard_mode: Option<String>,
    /// Scheduler shards the run used (0 for engine runs).
    pub shards: u64,
    /// Disjoint tenant clusters in the workload (1 = classic single pool).
    pub clusters: usize,
    /// Total time threads spent blocked acquiring shard locks, in
    /// milliseconds (concurrent runs only).
    pub lock_wait_ms: f64,
    /// Total time threads spent holding shard locks (condvar waits
    /// excluded), in milliseconds (concurrent runs only).
    pub lock_hold_ms: f64,
    /// Condvar wakeups across shards (concurrent runs only).
    pub wakeups: u64,
    /// Wakeups that observed no shard-state change (concurrent runs only;
    /// with targeted notification these are fallback-timeout polls).
    pub spurious_wakeups: u64,
    /// Total virtual time processes spent blocked (engine runs; the
    /// concurrent driver has no virtual clock and reports 0).
    pub blocked_time_total: u64,
    /// Certification attempts answered "not PRED".
    pub cert_failures: u64,
    /// Abort initiations broken down by first cause.
    pub abort_reasons: AbortReasons,
}

/// One tracing-overhead measurement (E20): the same engine run driven with
/// different trace sinks attached.
#[derive(Debug, Clone, Serialize)]
pub struct TraceOverheadEntry {
    /// `none` (untraced baseline), `noop`, `ring-4096` or `jsonl-devnull`.
    pub sink: &'static str,
    /// Processes in the workload.
    pub processes: usize,
    /// Conflict density of the workload.
    pub density: f64,
    /// Median wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Overhead relative to the untraced baseline, in percent.
    pub overhead_pct: f64,
}

/// One per-decision measurement point.
#[derive(Debug, Clone, Serialize)]
pub struct DecisionBenchEntry {
    /// Live operations recorded in the protocol when probed.
    pub live_ops: usize,
    /// Dependency edges present when probed.
    pub edges: usize,
    /// Nanoseconds per indexed `request`.
    pub ns_per_request_indexed: f64,
    /// Nanoseconds per scan-oracle `request`.
    pub ns_per_request_scan: f64,
}

/// The full report written to `BENCH_scheduler.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Format tag.
    pub schema: &'static str,
    /// Unix timestamp of the run.
    pub created_unix: u64,
    /// The configuration that produced it.
    pub config: SchedulerBenchConfig,
    /// End-to-end entries (engine + concurrent driver).
    pub runs: Vec<BenchEntry>,
    /// Per-decision protocol cost.
    pub decision: Vec<DecisionBenchEntry>,
    /// Named-scenario gauntlet results: every scenario over
    /// `config.gauntlet_seeds` seeds, engine + sharded concurrent, with
    /// PRED/Proc-REC verdicts and envelope checks.
    pub scenarios: Vec<ScenarioReport>,
    /// Tracing overhead per sink (E20).
    pub trace_overhead: Vec<TraceOverheadEntry>,
    /// Coverage notes (anything capped or skipped, never silent).
    pub notes: Vec<String>,
}

/// Bench workloads use longer processes than the defaults so protocol
/// decisions (not fixed engine overhead) dominate; both the indexed and the
/// scan policy run the exact same workloads.
fn bench_workload(seed: u64, processes: usize, density: f64, failures: f64) -> Workload {
    generate(&WorkloadConfig {
        seed,
        processes,
        conflict_density: density,
        failure_probability: failures,
        prefix_len: (2, 5),
        tail_len: (1, 3),
        alternative_probability: 0.5,
        ..WorkloadConfig::default()
    })
}

fn engine_entry(cfg: &SchedulerBenchConfig, w: &Workload, policy: PolicyKind) -> BenchEntry {
    let t = Instant::now();
    let r = run(
        w,
        RunConfig {
            policy,
            seed: cfg.seed,
            arrival_gap: cfg.arrival_gap,
            certifier: cfg.certifier,
            ..RunConfig::default()
        },
    );
    let wall = t.elapsed();
    let events = r.history.events().len();
    BenchEntry {
        mode: "engine",
        policy: policy.label().to_string(),
        certifier: policy
            .certified()
            .then(|| cfg.certifier.label().to_string()),
        processes: w.spec.process_count(),
        density: w.config.conflict_density,
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        committed: r.metrics.committed,
        aborted: r.metrics.aborted,
        makespan: r.metrics.makespan,
        latency_p50: r.metrics.latency_percentile(0.5),
        latency_p95: r.metrics.latency_percentile(0.95),
        shard_mode: None,
        shards: 0,
        clusters: w.config.clusters.max(1),
        lock_wait_ms: 0.0,
        lock_hold_ms: 0.0,
        wakeups: 0,
        spurious_wakeups: 0,
        blocked_time_total: r.metrics.blocked_total(),
        cert_failures: r.metrics.cert_failures,
        abort_reasons: r.metrics.abort_reasons,
    }
}

fn concurrent_entry(
    cfg: &SchedulerBenchConfig,
    w: &Workload,
    policy: PolicyKind,
    shards: ShardMode,
) -> BenchEntry {
    let t = Instant::now();
    let r = run_concurrent(
        w,
        ConcurrentConfig {
            policy,
            seed: cfg.seed,
            certifier: cfg.certifier,
            shards,
            ..ConcurrentConfig::default()
        },
    );
    let wall = t.elapsed();
    let events = r.history.events().len();
    BenchEntry {
        mode: "concurrent",
        policy: policy.label().to_string(),
        certifier: policy
            .certified()
            .then(|| cfg.certifier.label().to_string()),
        processes: w.spec.process_count(),
        density: w.config.conflict_density,
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        committed: r.metrics.committed,
        aborted: r.metrics.aborted,
        makespan: r.metrics.makespan,
        latency_p50: r.metrics.latency_percentile(0.5),
        latency_p95: r.metrics.latency_percentile(0.95),
        shard_mode: Some(shards.label()),
        shards: r.metrics.shards.len() as u64,
        clusters: w.config.clusters.max(1),
        lock_wait_ms: r.metrics.lock_wait_total_ns() as f64 / 1e6,
        lock_hold_ms: r.metrics.lock_hold_total_ns() as f64 / 1e6,
        wakeups: r.metrics.wakeups_total(),
        spurious_wakeups: r.metrics.spurious_wakeups_total(),
        blocked_time_total: r.metrics.blocked_total(),
        cert_failures: r.metrics.cert_failures,
        abort_reasons: r.metrics.abort_reasons,
    }
}

/// E20: the same engine run with different trace sinks. Minimum of several
/// repetitions: for a CPU-bound deterministic run the minimum is the noise
/// floor — every source of interference (scheduler hiccups, cache eviction
/// by neighbours) only ever adds time, so min-of-N is the robust estimator
/// of the true cost and a median at this scale can fake a few percent
/// either way.
pub fn trace_overhead_bench(cfg: &SchedulerBenchConfig) -> Vec<TraceOverheadEntry> {
    let density = cfg.densities.first().copied().unwrap_or(0.3);
    let n = cfg.processes.iter().copied().max().unwrap_or(8);
    let w = bench_workload(cfg.seed, n, density, cfg.failure_probability);
    let run_cfg = RunConfig {
        policy: PolicyKind::Pred,
        seed: cfg.seed,
        arrival_gap: cfg.arrival_gap,
        certifier: cfg.certifier,
        ..RunConfig::default()
    };
    let reps = if cfg.smoke { 7 } else { 9 };
    let min_ms = |mk: &dyn Fn() -> Box<dyn TraceSink>| -> f64 {
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let _ = std::hint::black_box(Engine::with_sink(&w, run_cfg.clone(), mk()).run());
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    // The untraced baseline is the public constructor (which installs the
    // no-op sink itself); `noop` measures the explicit sink path.
    let baseline = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let _ = std::hint::black_box(run(&w, run_cfg.clone()));
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);
    let mut out = vec![TraceOverheadEntry {
        sink: "none",
        processes: n,
        density,
        wall_ms: baseline,
        overhead_pct: 0.0,
    }];
    type MkSink<'a> = &'a dyn Fn() -> Box<dyn TraceSink>;
    let sinks: [(&'static str, MkSink<'_>); 3] = [
        ("noop", &|| Box::new(NoopSink)),
        ("ring-4096", &|| Box::new(RingSink::new(4096))),
        ("jsonl-devnull", &|| {
            Box::new(JsonlSink::new(std::io::sink()))
        }),
    ];
    for (name, mk) in sinks {
        let ms = min_ms(mk);
        out.push(TraceOverheadEntry {
            sink: name,
            processes: n,
            density,
            wall_ms: ms,
            overhead_pct: (ms - baseline) / baseline.max(1e-9) * 100.0,
        });
    }
    out
}

/// Times `f` adaptively: batches until one batch exceeds ~2ms, then takes
/// the median of a few batch samples. Returns nanoseconds per call.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t.elapsed().as_micros() >= 2_000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Per-decision microbenchmark: grow a protocol state by recording live
/// (uncommitted) operations process by process, probing `request` cost at
/// checkpoints.
fn decision_bench(cfg: &SchedulerBenchConfig) -> Vec<DecisionBenchEntry> {
    let checkpoints: &[usize] = if cfg.smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let max_ops = *checkpoints.last().expect("non-empty");
    // Enough processes that recording every activity passes the last
    // checkpoint (avg ≈ 7 ops per process at these length ranges).
    let w = bench_workload(cfg.seed, max_ops / 4 + 32, 0.3, 0.0);
    let mut prot = Protocol::new(&w.spec, DeferPolicy::PrepareAndDefer);
    let mut out = Vec::new();
    let mut recorded = 0usize;
    let mut next_checkpoint = 0usize;
    let processes: Vec<_> = w.spec.processes().collect();
    // The probe is a registered process with no operations: its request
    // cost is pure lookup work, not amortized maintenance.
    let probe = ProcessId(u32::MAX);
    prot.register(probe);
    let probe_svcs: Vec<_> = processes[0]
        .iter()
        .map(|(id, _)| processes[0].service(id))
        .collect();
    'record: for p in &processes {
        prot.register(p.id);
        for (a, _) in p.iter() {
            prot.record_executed(GlobalActivityId::new(p.id, a), false);
            recorded += 1;
            if next_checkpoint < checkpoints.len() && recorded >= checkpoints[next_checkpoint] {
                let edges = prot.edges().count();
                let indexed = time_ns(|| {
                    for &svc in &probe_svcs {
                        std::hint::black_box(prot.request(probe, svc));
                    }
                }) / probe_svcs.len() as f64;
                let scan = time_ns(|| {
                    for &svc in &probe_svcs {
                        std::hint::black_box(prot.scan_request(probe, svc));
                    }
                }) / probe_svcs.len() as f64;
                out.push(DecisionBenchEntry {
                    live_ops: recorded,
                    edges,
                    ns_per_request_indexed: indexed,
                    ns_per_request_scan: scan,
                });
                next_checkpoint += 1;
                if next_checkpoint == checkpoints.len() {
                    break 'record;
                }
            }
        }
    }
    out
}

/// Runs the full scheduler bench and assembles the report.
pub fn run_scheduler_bench(cfg: &SchedulerBenchConfig) -> BenchReport {
    let mut runs = Vec::new();
    let mut notes = Vec::new();
    for &density in &cfg.densities {
        for &n in &cfg.processes {
            let w = bench_workload(cfg.seed, n, density, cfg.failure_probability);
            for &policy in &cfg.policies {
                runs.push(engine_entry(cfg, &w, policy));
                if n <= cfg.concurrent_max_processes {
                    runs.push(concurrent_entry(cfg, &w, policy, cfg.shards));
                }
            }
        }
    }
    if cfg
        .processes
        .iter()
        .any(|&n| n > cfg.concurrent_max_processes)
    {
        notes.push(format!(
            "concurrent driver capped at {} processes (thread-per-process); larger sweep points are engine-only",
            cfg.concurrent_max_processes
        ));
    }
    // Sharding comparison (E21 headline): the same multi-tenant workload —
    // disjoint clusters give the partitioner real domains to find — driven
    // once single-lock and once auto-sharded. The classic single-pool
    // workloads above birthday-collide into one giant conflict domain, so
    // they exercise the `shards` plumbing but cannot show parallel
    // admission; that coverage gap is what the clustered pair closes.
    if cfg.sharding_clusters > 1 {
        let n = cfg.sharding_processes;
        let density = cfg.densities.first().copied().unwrap_or(0.3);
        let w = generate(&WorkloadConfig {
            seed: cfg.seed,
            processes: n,
            clusters: cfg.sharding_clusters,
            conflict_density: density,
            failure_probability: cfg.failure_probability,
            prefix_len: (2, 5),
            tail_len: (1, 3),
            alternative_probability: 0.5,
            ..WorkloadConfig::default()
        });
        let single = concurrent_entry(cfg, &w, PolicyKind::Pred, ShardMode::Single);
        let auto = concurrent_entry(cfg, &w, PolicyKind::Pred, ShardMode::Auto);
        notes.push(format!(
            "sharding: {} processes, density {density}, {} clusters -> {} shards; auto vs single-lock speedup {:.2}x events/sec",
            n,
            cfg.sharding_clusters,
            auto.shards,
            auto.events_per_sec / single.events_per_sec.max(1e-9),
        ));
        runs.push(single);
        runs.push(auto);
    }
    let decision = decision_bench(cfg);
    let trace_overhead = trace_overhead_bench(cfg);
    let scenarios = if cfg.gauntlet_seeds > 0 {
        run_gauntlet(&GauntletConfig {
            seeds: cfg.gauntlet_seeds,
            ..GauntletConfig::full()
        })
    } else {
        notes.push("scenario gauntlet skipped (gauntlet_seeds = 0)".to_string());
        Vec::new()
    };
    BenchReport {
        // v4 (additive over v3): a `scenarios` array with the named-scenario
        // gauntlet — per scenario, aggregate engine and sharded-concurrent
        // results over `gauntlet_seeds` seeds, the PRED/Proc-REC verdict
        // counts and the acceptance-envelope breaches. v3 readers that pick
        // fields by name still work. (v3 added shard_mode/shards/clusters,
        // lock contention and wakeup counters over v2.)
        schema: "txproc-bench-scheduler/v4",
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        config: cfg.clone(),
        runs,
        decision,
        scenarios,
        trace_overhead,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_entries() {
        let mut cfg = SchedulerBenchConfig::smoke();
        cfg.processes = vec![6];
        cfg.concurrent_max_processes = 6;
        cfg.gauntlet_seeds = 2;
        let report = run_scheduler_bench(&cfg);
        // engine + concurrent per policy, plus the single/auto sharding pair.
        assert_eq!(report.runs.len(), 6);
        assert!(report.runs.iter().all(|e| e.events > 0));
        // Concurrent entries now carry wall-clock latency/makespan and
        // shard/lock observability; engine entries stay virtual-time.
        for e in &report.runs {
            if e.mode == "concurrent" {
                assert!(e.shard_mode.is_some());
                assert!(e.shards >= 1);
                assert!(e.makespan > 0, "wall-clock makespan missing");
                assert!(e.latency_p50.is_some() && e.latency_p95.is_some());
                assert!(e.wakeups >= e.spurious_wakeups);
            } else {
                assert!(e.shard_mode.is_none());
                assert_eq!(e.shards, 0);
            }
        }
        let pair: Vec<_> = report.runs.iter().filter(|e| e.clusters > 1).collect();
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].shard_mode.as_deref(), Some("single"));
        assert_eq!(pair[1].shard_mode.as_deref(), Some("auto"));
        assert_eq!(pair[0].shards, 1);
        assert!(pair[1].shards > 1, "clustered workload found no domains");
        assert!(report.notes.iter().any(|n| n.starts_with("sharding:")));
        assert_eq!(report.decision.len(), 2);
        assert!(report
            .decision
            .iter()
            .all(|d| d.ns_per_request_indexed > 0.0 && d.ns_per_request_scan > 0.0));
        // E20 sinks: untraced baseline plus the three sink variants.
        let sinks: Vec<_> = report.trace_overhead.iter().map(|t| t.sink).collect();
        assert_eq!(sinks, vec!["none", "noop", "ring-4096", "jsonl-devnull"]);
        assert!(report.trace_overhead.iter().all(|t| t.wall_ms > 0.0));
        // v4: the scenario gauntlet section covers every registered
        // scenario in both modes with zero correctness violations.
        assert_eq!(report.scenarios.len(), 6);
        for s in &report.scenarios {
            assert_eq!(s.seeds, 2);
            let modes: Vec<_> = s.modes.iter().map(|m| m.mode).collect();
            assert_eq!(modes, vec!["engine", "concurrent"], "{}", s.name);
            for m in &s.modes {
                assert_eq!(m.pred_violations, 0, "{}/{}", s.name, m.mode);
                assert_eq!(m.proc_rec_violations, 0, "{}/{}", s.name, m.mode);
            }
        }
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("txproc-bench-scheduler/v4"));
        assert!(json.contains("abort_reasons"));
        assert!(json.contains("blocked_time_total"));
        assert!(json.contains("shard_mode"));
        assert!(json.contains("spurious_wakeups"));
        assert!(json.contains("zipf-hotspot"));
        assert!(json.contains("envelope_breaches"));
    }
}
