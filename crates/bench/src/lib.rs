//! # txproc-bench
//!
//! Benchmark harness and experiment report generator for the PODS'99
//! transactional-process-management reproduction.
//!
//! * [`scenarios`] — the paper's schedules (Figures 4, 7, 9) as histories
//!   and the CIM scenario (Figure 1) deployed as an executable workload,
//! * [`experiments`] — experiments E1–E17 (see `EXPERIMENTS.md`): each
//!   regenerates one figure/result of the paper or one extrapolated
//!   measurement, and self-assesses against the paper's claim,
//! * [`tables`] — text-table rendering for the `report` binary,
//! * [`perf`] — the scheduler perf trajectory (`txproc bench`): scalability
//!   runs plus per-decision protocol cost, written to
//!   `BENCH_scheduler.json` (E19),
//! * [`regression`] — the perf-regression gate (`txproc regression`): diffs
//!   a fresh bench report against the committed `BENCH_baseline.json`,
//!   failing on per-point throughput/latency deviations beyond the gate.
//!
//! Run `cargo run -p txproc-bench --bin report` for the full report, or
//! `cargo bench` for the Criterion microbenchmarks (one per figure plus the
//! performance studies).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod perf;
pub mod regression;
pub mod scenarios;
pub mod tables;

pub use experiments::{all_ids, run_experiment};
pub use tables::{render_experiment, ExperimentResult, Table};
