//! Ready-made scenarios: the paper's schedules as histories, and the CIM
//! world of Figure 1 deployed over simulated subsystems so the engine can
//! execute it.

use txproc_core::fixtures::{cim_world, paper_world, CimWorld, PaperWorld};
use txproc_core::ids::ProcessId;
use txproc_core::schedule::Schedule;
use txproc_sim::workload::{Workload, WorkloadConfig};
use txproc_subsystem::deploy::Deployment;
use txproc_subsystem::kv::{Key, Program};
use txproc_subsystem::subsystem::SubsystemId;

/// Figure 4(a)'s schedule S at time t2 (Examples 4-6).
pub fn figure4a_st2(fx: &PaperWorld) -> Schedule {
    let mut s = Schedule::new();
    s.execute(fx.a(1, 1))
        .execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3))
        .execute(fx.a(1, 2))
        .execute(fx.a(2, 4))
        .execute(fx.a(1, 3));
    s
}

/// Figure 4(b)'s schedule S' at time t2 (Example 3, non-serializable).
pub fn figure4b_st2(fx: &PaperWorld) -> Schedule {
    let mut s = Schedule::new();
    s.execute(fx.a(1, 1))
        .execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3))
        .execute(fx.a(2, 4))
        .execute(fx.a(1, 2))
        .execute(fx.a(1, 3));
    s
}

/// Figure 7's schedule S'' (Examples 7 and 9, PRED).
pub fn figure7(fx: &PaperWorld) -> Schedule {
    let mut s = Schedule::new();
    s.execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3))
        .execute(fx.a(2, 4))
        .execute(fx.a(1, 1))
        .execute(fx.a(2, 5))
        .commit(ProcessId(2))
        .execute(fx.a(1, 2))
        .execute(fx.a(1, 3));
    s
}

/// Figure 9's quasi-commit interleaving (Example 10).
pub fn figure9(fx: &PaperWorld) -> Schedule {
    let mut s = Schedule::new();
    s.execute(fx.a(1, 1))
        .execute(fx.a(1, 2))
        .execute(fx.a(3, 1))
        .execute(fx.a(1, 3));
    s
}

/// The CIM scenario (Figure 1) as an executable workload: the construction
/// and production processes deployed over five subsystems (CAD, PDM, test
/// database, documentation, business application / production floor).
pub fn cim_workload(failure_probability: f64) -> (CimWorld, Workload) {
    let fx = cim_world();
    let mut deployment = Deployment::new();
    let cad = SubsystemId(0);
    let pdm = SubsystemId(1);
    let testdb = SubsystemId(2);
    let doc = SubsystemId(3);
    let floor = SubsystemId(4);
    let svc = |name: &str, proc_: &txproc_core::process::Process| {
        proc_.service(proc_.find(name).expect("activity"))
    };
    let bom = Key(100);
    deployment.place_with_duration(
        svc("design", &fx.construction),
        cad,
        Program::set(Key(1), 7),
        50,
    );
    deployment.place_with_duration(
        svc("pdm_entry", &fx.construction),
        pdm,
        Program::set(bom, 42),
        5,
    );
    deployment.place_with_duration(
        svc("test", &fx.construction),
        testdb,
        Program::set(Key(2), 1),
        20,
    );
    deployment.place_with_duration(
        svc("tech_doc", &fx.construction),
        doc,
        Program::set(Key(3), 1),
        10,
    );
    deployment.place_with_duration(
        svc("doc_cad", &fx.construction),
        doc,
        Program::set(Key(4), 1),
        10,
    );
    deployment.place_with_duration(svc("read_bom", &fx.production), pdm, Program::read(bom), 2);
    deployment.place_with_duration(
        svc("schedule", &fx.production),
        floor,
        Program::set(Key(5), 1),
        8,
    );
    deployment.place_with_duration(
        svc("production", &fx.production),
        floor,
        Program::set(Key(6), 1),
        30,
    );
    deployment.place_with_duration(
        svc("deliver", &fx.production),
        floor,
        Program::set(Key(7), 1),
        5,
    );

    let workload = Workload {
        spec: fx.spec.clone(),
        deployment,
        config: WorkloadConfig {
            failure_probability,
            ..WorkloadConfig::default()
        },
    };
    (fx, workload)
}

/// A paper-world workload (P₁, P₂, P₃ over three subsystems) executable by
/// the engine.
pub fn paper_workload(failure_probability: f64) -> (PaperWorld, Workload) {
    let fx = paper_world();
    let mut deployment = Deployment::new();
    // Conflicting service pairs share a key; everything else is private.
    // (a1_1, a2_1, a3_1) on key 10; (a1_2, a2_4) on key 20; (a1_5, a2_5) on
    // key 30.
    let s = |p: u32, k: u32| fx.spec.service_of(fx.a(p, k)).unwrap();
    let sub = SubsystemId(0);
    deployment.place(s(1, 1), sub, Program::set(Key(10), 1));
    deployment.place(s(2, 1), sub, Program::set(Key(10), 2));
    deployment.place(s(3, 1), sub, Program::set(Key(10), 3));
    deployment.place(s(1, 2), sub, Program::set(Key(20), 1));
    deployment.place(s(2, 4), sub, Program::set(Key(20), 2));
    deployment.place(s(1, 5), sub, Program::set(Key(30), 1));
    deployment.place(s(2, 5), sub, Program::set(Key(30), 2));
    deployment.place(s(1, 3), sub, Program::set(Key(40), 1));
    deployment.place(s(1, 4), sub, Program::set(Key(41), 1));
    deployment.place(s(1, 6), sub, Program::set(Key(42), 1));
    deployment.place(s(2, 2), sub, Program::set(Key(43), 1));
    deployment.place(s(2, 3), sub, Program::set(Key(44), 1));
    deployment.place(s(3, 2), sub, Program::set(Key(45), 1));
    let workload = Workload {
        spec: fx.spec.clone(),
        deployment,
        config: WorkloadConfig {
            failure_probability,
            ..WorkloadConfig::default()
        },
    };
    (fx, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use txproc_core::pred::is_pred;
    use txproc_core::serializability::is_serializable;

    #[test]
    fn paper_schedules_replay() {
        let fx = paper_world();
        for s in [
            figure4a_st2(&fx),
            figure4b_st2(&fx),
            figure7(&fx),
            figure9(&fx),
        ] {
            assert!(s.replay(&fx.spec).is_ok());
        }
    }

    #[test]
    fn figure_properties_hold() {
        let fx = paper_world();
        assert!(is_serializable(&fx.spec, &figure4a_st2(&fx)).unwrap());
        assert!(!is_serializable(&fx.spec, &figure4b_st2(&fx)).unwrap());
        assert!(is_pred(&fx.spec, &figure7(&fx)).unwrap());
        assert!(is_pred(&fx.spec, &figure9(&fx)).unwrap());
        assert!(!is_pred(&fx.spec, &figure4a_st2(&fx)).unwrap());
    }

    #[test]
    fn cim_workload_is_deployable() {
        let (fx, w) = cim_workload(0.0);
        for p in w.spec.processes() {
            for (id, _) in p.iter() {
                assert!(w.deployment.site(p.service(id)).is_some());
            }
        }
        let pdm = fx.construction_activity("pdm_entry");
        let read = fx.production_activity("read_bom");
        assert!(w.spec.activities_conflict(pdm, read).unwrap());
    }

    #[test]
    fn paper_workload_is_deployable() {
        let (_, w) = paper_workload(0.0);
        for p in w.spec.processes() {
            for (id, _) in p.iter() {
                assert!(w.deployment.site(p.service(id)).is_some());
            }
        }
    }
}
