//! Ready-made scenarios: the paper's schedules as histories, the CIM world
//! of Figure 1 deployed over simulated subsystems so the engine can execute
//! it, and the adversarial scenario gauntlet — every named scenario from
//! [`txproc_sim::scenario`] replayed over many seeds through the batch PRED
//! and Proc-REC checkers with its acceptance envelope enforced.

use serde::Serialize;
use std::time::Instant;
use txproc_core::fixtures::{cim_world, paper_world, CimWorld, PaperWorld};
use txproc_core::ids::ProcessId;
use txproc_core::pred_incremental::check_pred_incremental;
use txproc_core::recoverability::proc_rec_violations;
use txproc_core::schedule::Schedule;
use txproc_engine::concurrent::{run_concurrent, ConcurrentConfig, RuntimeKind, ShardMode};
use txproc_engine::engine::{run, RunConfig};
use txproc_engine::policy::{CertifierKind, PolicyKind};
use txproc_sim::metrics::Metrics;
use txproc_sim::scenario::{registry, Envelope, Scenario};
use txproc_sim::workload::{try_generate, Workload, WorkloadConfig};
use txproc_subsystem::deploy::Deployment;
use txproc_subsystem::kv::{Key, Program};
use txproc_subsystem::subsystem::SubsystemId;

/// Figure 4(a)'s schedule S at time t2 (Examples 4-6).
pub fn figure4a_st2(fx: &PaperWorld) -> Schedule {
    let mut s = Schedule::new();
    s.execute(fx.a(1, 1))
        .execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3))
        .execute(fx.a(1, 2))
        .execute(fx.a(2, 4))
        .execute(fx.a(1, 3));
    s
}

/// Figure 4(b)'s schedule S' at time t2 (Example 3, non-serializable).
pub fn figure4b_st2(fx: &PaperWorld) -> Schedule {
    let mut s = Schedule::new();
    s.execute(fx.a(1, 1))
        .execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3))
        .execute(fx.a(2, 4))
        .execute(fx.a(1, 2))
        .execute(fx.a(1, 3));
    s
}

/// Figure 7's schedule S'' (Examples 7 and 9, PRED).
pub fn figure7(fx: &PaperWorld) -> Schedule {
    let mut s = Schedule::new();
    s.execute(fx.a(2, 1))
        .execute(fx.a(2, 2))
        .execute(fx.a(2, 3))
        .execute(fx.a(2, 4))
        .execute(fx.a(1, 1))
        .execute(fx.a(2, 5))
        .commit(ProcessId(2))
        .execute(fx.a(1, 2))
        .execute(fx.a(1, 3));
    s
}

/// Figure 9's quasi-commit interleaving (Example 10).
pub fn figure9(fx: &PaperWorld) -> Schedule {
    let mut s = Schedule::new();
    s.execute(fx.a(1, 1))
        .execute(fx.a(1, 2))
        .execute(fx.a(3, 1))
        .execute(fx.a(1, 3));
    s
}

/// The CIM scenario (Figure 1) as an executable workload: the construction
/// and production processes deployed over five subsystems (CAD, PDM, test
/// database, documentation, business application / production floor).
pub fn cim_workload(failure_probability: f64) -> (CimWorld, Workload) {
    let fx = cim_world();
    let mut deployment = Deployment::new();
    let cad = SubsystemId(0);
    let pdm = SubsystemId(1);
    let testdb = SubsystemId(2);
    let doc = SubsystemId(3);
    let floor = SubsystemId(4);
    let svc = |name: &str, proc_: &txproc_core::process::Process| {
        proc_.service(proc_.find(name).expect("activity"))
    };
    let bom = Key(100);
    deployment.place_with_duration(
        svc("design", &fx.construction),
        cad,
        Program::set(Key(1), 7),
        50,
    );
    deployment.place_with_duration(
        svc("pdm_entry", &fx.construction),
        pdm,
        Program::set(bom, 42),
        5,
    );
    deployment.place_with_duration(
        svc("test", &fx.construction),
        testdb,
        Program::set(Key(2), 1),
        20,
    );
    deployment.place_with_duration(
        svc("tech_doc", &fx.construction),
        doc,
        Program::set(Key(3), 1),
        10,
    );
    deployment.place_with_duration(
        svc("doc_cad", &fx.construction),
        doc,
        Program::set(Key(4), 1),
        10,
    );
    deployment.place_with_duration(svc("read_bom", &fx.production), pdm, Program::read(bom), 2);
    deployment.place_with_duration(
        svc("schedule", &fx.production),
        floor,
        Program::set(Key(5), 1),
        8,
    );
    deployment.place_with_duration(
        svc("production", &fx.production),
        floor,
        Program::set(Key(6), 1),
        30,
    );
    deployment.place_with_duration(
        svc("deliver", &fx.production),
        floor,
        Program::set(Key(7), 1),
        5,
    );

    let workload = Workload {
        spec: fx.spec.clone(),
        deployment,
        config: WorkloadConfig {
            failure_probability,
            ..WorkloadConfig::default()
        },
    };
    (fx, workload)
}

/// A paper-world workload (P₁, P₂, P₃ over three subsystems) executable by
/// the engine.
pub fn paper_workload(failure_probability: f64) -> (PaperWorld, Workload) {
    let fx = paper_world();
    let mut deployment = Deployment::new();
    // Conflicting service pairs share a key; everything else is private.
    // (a1_1, a2_1, a3_1) on key 10; (a1_2, a2_4) on key 20; (a1_5, a2_5) on
    // key 30.
    let s = |p: u32, k: u32| fx.spec.service_of(fx.a(p, k)).unwrap();
    let sub = SubsystemId(0);
    deployment.place(s(1, 1), sub, Program::set(Key(10), 1));
    deployment.place(s(2, 1), sub, Program::set(Key(10), 2));
    deployment.place(s(3, 1), sub, Program::set(Key(10), 3));
    deployment.place(s(1, 2), sub, Program::set(Key(20), 1));
    deployment.place(s(2, 4), sub, Program::set(Key(20), 2));
    deployment.place(s(1, 5), sub, Program::set(Key(30), 1));
    deployment.place(s(2, 5), sub, Program::set(Key(30), 2));
    deployment.place(s(1, 3), sub, Program::set(Key(40), 1));
    deployment.place(s(1, 4), sub, Program::set(Key(41), 1));
    deployment.place(s(1, 6), sub, Program::set(Key(42), 1));
    deployment.place(s(2, 2), sub, Program::set(Key(43), 1));
    deployment.place(s(2, 3), sub, Program::set(Key(44), 1));
    deployment.place(s(3, 2), sub, Program::set(Key(45), 1));
    let workload = Workload {
        spec: fx.spec.clone(),
        deployment,
        config: WorkloadConfig {
            failure_probability,
            ..WorkloadConfig::default()
        },
    };
    (fx, workload)
}

// ---------------------------------------------------------------------------
// Scenario gauntlet
// ---------------------------------------------------------------------------

/// Configuration of a gauntlet sweep.
#[derive(Debug, Clone, Serialize)]
pub struct GauntletConfig {
    /// Seeds per scenario (`seed_base..seed_base + seeds`).
    pub seeds: u64,
    /// First seed.
    pub seed_base: u64,
    /// Scheduling policy driven through the gauntlet.
    pub policy: PolicyKind,
    /// Certifier used by the policy.
    pub certifier: CertifierKind,
    /// Whether to also drive the sharded concurrent driver (engine runs
    /// always happen).
    pub concurrent: bool,
    /// Shard topology for concurrent runs.
    pub shards: ShardMode,
    /// Execution runtime of the concurrent runs (`events` by default).
    pub runtime: RuntimeKind,
    /// Worker-pool override for the events runtime (`None` = auto).
    pub workers: Option<usize>,
    /// Epoch size for group certification and batch commit on both drivers
    /// (0 = per-event path).
    pub epoch: usize,
}

impl GauntletConfig {
    /// The acceptance-grade sweep: 128 seeds, engine + sharded concurrent.
    pub fn full() -> Self {
        Self {
            seeds: 128,
            seed_base: 0,
            policy: PolicyKind::Pred,
            certifier: CertifierKind::Incremental,
            concurrent: true,
            shards: ShardMode::Auto,
            runtime: RuntimeKind::Events,
            workers: None,
            epoch: 0,
        }
    }

    /// CI smoke mode: the same pipeline over a handful of seeds.
    pub fn smoke() -> Self {
        Self {
            seeds: 4,
            ..Self::full()
        }
    }
}

/// Aggregated result of one scenario in one execution mode.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioModeReport {
    /// `engine` (virtual time) or `concurrent` (sharded wall-clock driver).
    pub mode: &'static str,
    /// Execution runtime of concurrent modes (`events` or `threads`);
    /// `None` for engine modes, which have no runtime to pick.
    pub runtime: Option<String>,
    /// Runs aggregated (one per seed).
    pub runs: u64,
    /// Committed processes across all runs.
    pub committed: u64,
    /// Aborted processes across all runs.
    pub aborted: u64,
    /// Compensations executed across all runs.
    pub compensations: u64,
    /// `committed / (processes × runs)`.
    pub commit_rate: f64,
    /// Pooled latency p50 (virtual ticks for engine, wall-clock µs for
    /// concurrent).
    pub latency_p50: Option<u64>,
    /// Pooled latency p95.
    pub latency_p95: Option<u64>,
    /// Histories the batch PRED checker rejected (must be 0).
    pub pred_violations: u64,
    /// Histories with Proc-REC (Definition 11) violations (must be 0).
    pub proc_rec_violations: u64,
    /// Envelope breaches against the aggregate (empty = pass).
    pub envelope_breaches: Vec<String>,
    /// Wall-clock milliseconds spent on this mode's runs.
    pub wall_ms: f64,
}

/// Gauntlet outcome of one named scenario.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Registry name.
    pub name: String,
    /// One-line description.
    pub summary: String,
    /// Seeds swept.
    pub seeds: u64,
    /// The acceptance envelope that was enforced.
    pub envelope: Envelope,
    /// Whether every mode passed: zero PRED / Proc-REC violations and no
    /// envelope breach.
    pub pass: bool,
    /// Per-mode aggregates (engine first, then concurrent when enabled).
    pub modes: Vec<ScenarioModeReport>,
}

impl ScenarioModeReport {
    /// Whether this mode is clean: zero PRED / Proc-REC violations and no
    /// envelope breach.
    pub fn pass(&self) -> bool {
        self.pred_violations == 0
            && self.proc_rec_violations == 0
            && self.envelope_breaches.is_empty()
    }
}

fn check_history(spec: &txproc_core::spec::Spec, history: &Schedule) -> (u64, u64) {
    let pred = match check_pred_incremental(spec, history) {
        Ok(report) => u64::from(!report.pred),
        Err(_) => 1,
    };
    let proc_rec = match proc_rec_violations(spec, history) {
        Ok(v) => u64::from(!v.is_empty()),
        Err(_) => 1,
    };
    (pred, proc_rec)
}

fn mode_report(
    scenario: &Scenario,
    cfg: &GauntletConfig,
    mode: &'static str,
    runtime: Option<String>,
    mut one_run: impl FnMut(&Workload) -> (Schedule, Metrics),
) -> ScenarioModeReport {
    let t = Instant::now();
    let mut agg = Metrics::new();
    let mut pred_bad = 0u64;
    let mut proc_rec_bad = 0u64;
    for seed in cfg.seed_base..cfg.seed_base + cfg.seeds {
        let workload = try_generate(&scenario.config_for_seed(seed))
            .unwrap_or_else(|e| panic!("scenario {}: {e}", scenario.name));
        let (history, metrics) = one_run(&workload);
        let (p, r) = check_history(&workload.spec, &history);
        pred_bad += p;
        proc_rec_bad += r;
        agg.merge(&metrics);
    }
    let processes_total = scenario.config.processes * cfg.seeds as usize;
    let mut breaches = scenario
        .envelope
        .check(&agg, processes_total, mode == "engine");
    // `Envelope::check` folds per-run violation counters in; PRED/Proc-REC
    // history verdicts are reported separately below, so don't double-count.
    breaches.retain(|b| !b.ends_with("correctness violations"));
    ScenarioModeReport {
        mode,
        runtime,
        runs: cfg.seeds,
        committed: agg.committed,
        aborted: agg.aborted,
        compensations: agg.compensations,
        commit_rate: agg.committed as f64 / processes_total.max(1) as f64,
        latency_p50: agg.latency_percentile(0.5),
        latency_p95: agg.latency_percentile(0.95),
        pred_violations: pred_bad + agg.violations,
        proc_rec_violations: proc_rec_bad,
        envelope_breaches: breaches,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs one scenario through the gauntlet: engine runs over every seed,
/// plus sharded concurrent runs when `cfg.concurrent` is set, every history
/// checked by the batch PRED and Proc-REC checkers.
pub fn run_scenario(scenario: &Scenario, cfg: &GauntletConfig) -> ScenarioReport {
    let mut modes = vec![mode_report(scenario, cfg, "engine", None, |w| {
        let r = run(
            w,
            RunConfig {
                policy: cfg.policy,
                seed: w.config.seed,
                certifier: cfg.certifier,
                epoch: cfg.epoch,
                ..RunConfig::default()
            },
        );
        (r.history, r.metrics)
    })];
    if cfg.concurrent {
        let runtime = Some(cfg.runtime.label().to_string());
        modes.push(mode_report(scenario, cfg, "concurrent", runtime, |w| {
            let r = run_concurrent(
                w,
                ConcurrentConfig {
                    policy: cfg.policy,
                    seed: w.config.seed,
                    certifier: cfg.certifier,
                    shards: cfg.shards,
                    runtime: cfg.runtime,
                    workers: cfg.workers,
                    epoch: cfg.epoch,
                    ..ConcurrentConfig::default()
                },
            );
            (r.history, r.metrics)
        }));
    }
    ScenarioReport {
        name: scenario.name.to_string(),
        summary: scenario.summary.to_string(),
        seeds: cfg.seeds,
        envelope: scenario.envelope,
        pass: modes.iter().all(ScenarioModeReport::pass),
        modes,
    }
}

/// Runs every registered scenario through the gauntlet.
pub fn run_gauntlet(cfg: &GauntletConfig) -> Vec<ScenarioReport> {
    registry().iter().map(|s| run_scenario(s, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txproc_core::pred::is_pred;
    use txproc_core::serializability::is_serializable;

    #[test]
    fn paper_schedules_replay() {
        let fx = paper_world();
        for s in [
            figure4a_st2(&fx),
            figure4b_st2(&fx),
            figure7(&fx),
            figure9(&fx),
        ] {
            assert!(s.replay(&fx.spec).is_ok());
        }
    }

    #[test]
    fn figure_properties_hold() {
        let fx = paper_world();
        assert!(is_serializable(&fx.spec, &figure4a_st2(&fx)).unwrap());
        assert!(!is_serializable(&fx.spec, &figure4b_st2(&fx)).unwrap());
        assert!(is_pred(&fx.spec, &figure7(&fx)).unwrap());
        assert!(is_pred(&fx.spec, &figure9(&fx)).unwrap());
        assert!(!is_pred(&fx.spec, &figure4a_st2(&fx)).unwrap());
    }

    #[test]
    fn cim_workload_is_deployable() {
        let (fx, w) = cim_workload(0.0);
        for p in w.spec.processes() {
            for (id, _) in p.iter() {
                assert!(w.deployment.site(p.service(id)).is_some());
            }
        }
        let pdm = fx.construction_activity("pdm_entry");
        let read = fx.production_activity("read_bom");
        assert!(w.spec.activities_conflict(pdm, read).unwrap());
    }

    #[test]
    fn gauntlet_checks_histories_on_both_modes() {
        let cfg = GauntletConfig {
            seeds: 2,
            ..GauntletConfig::smoke()
        };
        let s = txproc_sim::scenario::find("zipf-hotspot").expect("registered");
        let report = run_scenario(&s, &cfg);
        assert_eq!(report.name, "zipf-hotspot");
        assert_eq!(report.seeds, 2);
        let modes: Vec<&str> = report.modes.iter().map(|m| m.mode).collect();
        assert_eq!(modes, vec!["engine", "concurrent"]);
        assert_eq!(report.modes[0].runtime, None);
        assert_eq!(report.modes[1].runtime.as_deref(), Some("events"));
        for m in &report.modes {
            assert_eq!(m.runs, 2);
            assert_eq!(m.pred_violations, 0, "{}: non-PRED history", m.mode);
            assert_eq!(m.proc_rec_violations, 0, "{}: Proc-REC violation", m.mode);
            assert!(m.committed + m.aborted > 0);
        }
    }

    #[test]
    fn gauntlet_epoch_runs_stay_clean() {
        let cfg = GauntletConfig {
            seeds: 2,
            epoch: 16,
            ..GauntletConfig::smoke()
        };
        let s = txproc_sim::scenario::find("zipf-hotspot").expect("registered");
        let report = run_scenario(&s, &cfg);
        for m in &report.modes {
            assert_eq!(m.pred_violations, 0, "{}: non-PRED epoch history", m.mode);
            assert_eq!(m.proc_rec_violations, 0, "{}: Proc-REC violation", m.mode);
            assert!(m.committed + m.aborted > 0);
        }
    }

    #[test]
    fn paper_workload_is_deployable() {
        let (_, w) = paper_workload(0.0);
        for p in w.spec.processes() {
            for (id, _) in p.iter() {
                assert!(w.deployment.site(p.service(id)).is_some());
            }
        }
    }
}
