//! Property tests for the partial-order utility: reachability agrees with
//! explicit DFS, topological orders respect every edge, and serde round
//! trips preserve schedules.

use proptest::prelude::*;
use txproc_core::order::PartialOrder;

/// Random DAG edges over `n` nodes: only forward edges (i < j) so the graph
/// is acyclic by construction.
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..80).prop_map(move |pairs| {
            pairs
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

fn dfs_reaches(n: usize, edges: &[(usize, usize)], from: usize, to: usize) -> bool {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if w == to {
                return true;
            }
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bitset reachability equals DFS reachability.
    #[test]
    fn reachability_matches_dfs((n, edges) in dag_strategy()) {
        let mut po = PartialOrder::new(n);
        for &(a, b) in &edges {
            po.add(a, b);
        }
        let r = po.reachability();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                prop_assert_eq!(
                    r.lt(a, b),
                    dfs_reaches(n, &edges, a, b),
                    "reachability mismatch for {} -> {}",
                    a,
                    b
                );
            }
        }
    }

    /// Topological order places every edge's source before its target.
    #[test]
    fn topological_order_respects_edges((n, edges) in dag_strategy()) {
        let mut po = PartialOrder::new(n);
        for &(a, b) in &edges {
            po.add(a, b);
        }
        let order = po.topological_order().expect("forward-edge DAG");
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        for &(a, b) in &edges {
            prop_assert!(pos[a] < pos[b]);
        }
    }

    /// `between` is consistent with `lt`.
    #[test]
    fn between_is_lt_conjunction((n, edges) in dag_strategy(), a in 0usize..40, m in 0usize..40, b in 0usize..40) {
        if a >= n || m >= n || b >= n || a == m || m == b || a == b {
            return Ok(());
        }
        let mut po = PartialOrder::new(n);
        for &(x, y) in &edges {
            po.add(x, y);
        }
        let r = po.reachability();
        prop_assert_eq!(r.between(a, m, b), r.lt(a, m) && r.lt(m, b));
    }
}

#[test]
fn schedule_serde_round_trip() {
    use txproc_core::fixtures::paper_world;
    use txproc_core::ids::ProcessId;
    use txproc_core::schedule::Schedule;
    let fx = paper_world();
    let mut s = Schedule::new();
    s.execute(fx.a(1, 1))
        .fail(fx.a(1, 2))
        .compensate(fx.a(1, 1))
        .commit(ProcessId(1))
        .abort(ProcessId(2))
        .group_abort(vec![ProcessId(2), ProcessId(3)]);
    let json = serde_json::to_string(&s).unwrap();
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
}

#[test]
fn spec_serde_round_trip_preserves_conflicts() {
    use txproc_core::fixtures::paper_world;
    use txproc_core::spec::Spec;
    let fx = paper_world();
    let json = serde_json::to_string(&fx.spec).unwrap();
    let back: Spec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.process_count(), fx.spec.process_count());
    assert!(back.activities_conflict(fx.a(1, 1), fx.a(2, 1)).unwrap());
    assert!(!back.activities_conflict(fx.a(1, 3), fx.a(2, 2)).unwrap());
}
