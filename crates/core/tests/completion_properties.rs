//! Property tests for the completion construction (Definition 8), checked
//! over random legal histories of the paper's processes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use txproc_core::completion::complete;
use txproc_core::fixtures::{paper_world, PaperWorld};
use txproc_core::ids::{GlobalActivityId, ProcessId};
use txproc_core::schedule::{Event, OpKind, Schedule};
use txproc_core::state::{FailureOutcome, ProcessState};

/// Random legal history over the paper world (same construction as the
/// root-level property suite, duplicated here because integration tests of
/// different crates cannot share helpers).
fn random_history(fx: &PaperWorld, seed: u64, max_events: usize) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schedule = Schedule::new();
    let processes: Vec<_> = fx.spec.processes().collect();
    let mut states: Vec<ProcessState<'_>> = processes
        .iter()
        .map(|p| ProcessState::new(p, &fx.spec.catalog).expect("tree process"))
        .collect();
    for _ in 0..max_events {
        let live: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_active())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            break;
        }
        let i = live[rng.gen_range(0..live.len())];
        let pid = processes[i].id;
        let st = &mut states[i];
        if let Some(c) = st.next_compensation() {
            st.apply_compensation(c).expect("queued");
            schedule.compensate(GlobalActivityId::new(pid, c));
        } else if let Some(a) = st.next_activity() {
            let gid = GlobalActivityId::new(pid, a);
            let t = fx.spec.catalog.termination(processes[i].service(a));
            if t.can_fail() && rng.gen_bool(0.25) {
                match st.apply_failure(a).expect("failable") {
                    FailureOutcome::Stuck => unreachable!(),
                    _ => {
                        schedule.fail(gid);
                    }
                }
            } else {
                st.apply_commit(a).expect("frontier");
                schedule.execute(gid);
            }
        } else if st.can_commit() && rng.gen_bool(0.5) {
            st.apply_process_commit().expect("finished");
            schedule.commit(pid);
        }
    }
    schedule
}

/// The completion's activity multiset per process.
fn completion_sets(
    fx: &PaperWorld,
    s: &Schedule,
) -> std::collections::BTreeMap<ProcessId, BTreeSet<(GlobalActivityId, OpKind)>> {
    let completed = complete(&fx.spec, s).unwrap();
    let mut out: std::collections::BTreeMap<_, BTreeSet<_>> = Default::default();
    for op in completed.completion_ops() {
        out.entry(op.gid.process)
            .or_default()
            .insert((op.gid, op.kind));
    }
    out
}

/// Next legal failure event, if any process's frontier can fail.
fn next_failure(fx: &PaperWorld, s: &Schedule) -> Option<Event> {
    let replay = s.replay(&fx.spec).unwrap();
    for (pid, st) in &replay.states {
        if !st.is_active() || st.next_compensation().is_some() {
            continue;
        }
        if let Some(a) = st.next_activity() {
            let process = fx.spec.process(*pid).unwrap();
            if fx.spec.catalog.termination(process.service(a)).can_fail() {
                return Some(Event::Fail(GlobalActivityId::new(*pid, a)));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A failure event never changes any process's completion set: the
    /// completion always consists of compensations back to the boundary plus
    /// the lowest-priority (fallback) branch, independent of which branch is
    /// currently being tried. (This justifies the engine certifying only
    /// effect events, not failures.)
    #[test]
    fn failure_events_preserve_completions(seed in 0u64..4000, cut in 0usize..30) {
        let fx = paper_world();
        let s = random_history(&fx, seed, 40).prefix(cut);
        let Some(fail) = next_failure(&fx, &s) else {
            return Ok(());
        };
        let before = completion_sets(&fx, &s);
        let mut extended = s.clone();
        extended.push(fail);
        let after = completion_sets(&fx, &extended);
        prop_assert_eq!(before, after);
    }

    /// Completion compensations are exactly the effective compensatable
    /// activities after each active process's recovery boundary, in reverse
    /// order, and forward activities are all retriable.
    #[test]
    fn completion_shape(seed in 0u64..4000, cut in 0usize..30) {
        let fx = paper_world();
        let s = random_history(&fx, seed, 40).prefix(cut);
        let completed = complete(&fx.spec, &s).unwrap();
        for op in completed.completion_ops() {
            let process = fx.spec.process(op.gid.process).unwrap();
            let t = fx.spec.catalog.termination(process.service(op.gid.activity));
            match op.kind {
                OpKind::Compensation => prop_assert!(t.is_compensatable()),
                OpKind::Forward => prop_assert_eq!(
                    t,
                    txproc_core::activity::Termination::Retriable
                ),
            }
        }
    }

    /// The completed order `≪̃` is always a strict partial order (acyclic),
    /// whatever the input history.
    #[test]
    fn completed_order_is_acyclic(seed in 0u64..4000, cut in 0usize..30) {
        let fx = paper_world();
        let s = random_history(&fx, seed, 40).prefix(cut);
        let completed = complete(&fx.spec, &s).unwrap();
        prop_assert!(completed.order.is_acyclic());
    }

    /// Committed processes contribute nothing to the completion.
    #[test]
    fn committed_processes_are_complete(seed in 0u64..4000) {
        let fx = paper_world();
        let s = random_history(&fx, seed, 60);
        let completed = complete(&fx.spec, &s).unwrap();
        for op in completed.completion_ops() {
            prop_assert!(
                !completed.committed_in_s.contains(&op.gid.process),
                "committed process {} got completion activity {}",
                op.gid.process,
                op.gid
            );
        }
    }
}
