//! Property tests pinning the epoch batch API (`certify_epoch` /
//! `record_epoch`) against the sequential `certify` / `record` pair on
//! random batches: the batch must accept exactly the prefix a per-event
//! driver would have admitted, reject where it would reject, and leave the
//! certifier in the identical state.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txproc_core::fixtures::{paper_world, PaperWorld};
use txproc_core::ids::GlobalActivityId;
use txproc_core::pred_incremental::{EpochStep, EpochVerdict, IncrementalPred};
use txproc_core::schedule::Schedule;
use txproc_core::state::{FailureOutcome, ProcessState};

/// Random legal history over the paper world (same construction as the
/// root-level property suite, duplicated here because integration tests of
/// different crates cannot share helpers).
fn random_history(fx: &PaperWorld, seed: u64, max_events: usize) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schedule = Schedule::new();
    let processes: Vec<_> = fx.spec.processes().collect();
    let mut states: Vec<ProcessState<'_>> = processes
        .iter()
        .map(|p| ProcessState::new(p, &fx.spec.catalog).expect("tree process"))
        .collect();
    for _ in 0..max_events {
        let live: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_active())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            break;
        }
        let i = live[rng.gen_range(0..live.len())];
        let pid = processes[i].id;
        let st = &mut states[i];
        if let Some(c) = st.next_compensation() {
            st.apply_compensation(c).expect("queued");
            schedule.compensate(GlobalActivityId::new(pid, c));
        } else if let Some(a) = st.next_activity() {
            let gid = GlobalActivityId::new(pid, a);
            let t = fx.spec.catalog.termination(processes[i].service(a));
            if t.can_fail() && rng.gen_bool(0.25) {
                match st.apply_failure(a).expect("failable") {
                    FailureOutcome::Stuck => unreachable!(),
                    _ => {
                        schedule.fail(gid);
                    }
                }
            } else {
                st.apply_commit(a).expect("frontier");
                schedule.execute(gid);
            }
        } else if st.can_commit() && rng.gen_bool(0.5) {
            st.apply_process_commit().expect("finished");
            schedule.commit(pid);
        }
    }
    schedule
}

/// Reference semantics: drive the per-event API the way a driver degrades —
/// certify each event, record it only while everything stays reducible, and
/// stop (skipping the rest) at the first rejection or illegal event.
fn sequential_reference(
    certifier: &mut IncrementalPred<'_>,
    events: &[txproc_core::schedule::Event],
) -> EpochVerdict {
    let mut steps = Vec::with_capacity(events.len());
    let mut accepted = 0usize;
    let mut poisoned = false;
    for event in events {
        if poisoned {
            steps.push(EpochStep::Skipped);
            continue;
        }
        match certifier.certify(event) {
            Err(_) => {
                poisoned = true;
                steps.push(EpochStep::Illegal);
            }
            Ok(verdict) if verdict.reducible => {
                let recorded = certifier.record(event).expect("certified event is legal");
                assert_eq!(recorded, verdict);
                accepted += 1;
                steps.push(EpochStep::Accepted(verdict));
            }
            Ok(verdict) => {
                poisoned = true;
                steps.push(EpochStep::Rejected(verdict));
            }
        }
    }
    EpochVerdict {
        steps,
        accepted,
        poisoned,
    }
}

fn check_batch(
    fx: &PaperWorld,
    prefix: &[txproc_core::schedule::Event],
    batch: &[txproc_core::schedule::Event],
) {
    let mut seq = IncrementalPred::new(&fx.spec);
    let mut epo = IncrementalPred::new(&fx.spec);
    for e in prefix {
        // Drivers sync emitted history unconditionally (aborts and friends
        // are recorded even when a prefix is not reducible).
        seq.record(e).expect("prefix event is legal");
        epo.record(e).expect("prefix event is legal");
    }
    let pure = epo.certify_epoch(batch);
    assert_eq!(epo.len(), prefix.len(), "certify_epoch must not mutate");
    let batched = epo.record_epoch(batch);
    let reference = sequential_reference(&mut seq, batch);
    assert_eq!(
        batched, reference,
        "record_epoch diverges from certify/record"
    );
    assert_eq!(
        pure, reference,
        "certify_epoch diverges from certify/record"
    );
    assert_eq!(epo.len(), seq.len());
    assert_eq!(epo.report(), seq.report());
    assert_eq!(epo.pred(), seq.pred());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// In-order continuation batches: every event is legal, so the epoch
    /// exercises Accepted/Rejected and the accepted-prefix cut.
    #[test]
    fn epoch_matches_sequential_on_history_batches(
        seed in 0u64..10_000,
        cut_frac in 0.0f64..1.0,
        batch_len in 1usize..24,
    ) {
        let fx = paper_world();
        let s = random_history(&fx, seed, 60);
        let events = s.events();
        let cut = ((events.len() as f64) * cut_frac) as usize;
        let end = (cut + batch_len).min(events.len());
        check_batch(&fx, &events[..cut], &events[cut..end]);
    }

    /// Shuffled continuation batches: out-of-order events hit the Illegal
    /// arm (state-machine violations) as well as rejections.
    #[test]
    fn epoch_matches_sequential_on_shuffled_batches(
        seed in 0u64..10_000,
        shuffle_seed in 0u64..1_000,
        cut_frac in 0.0f64..1.0,
        batch_len in 2usize..24,
    ) {
        let fx = paper_world();
        let s = random_history(&fx, seed, 60);
        let events = s.events();
        let cut = ((events.len() as f64) * cut_frac) as usize;
        let end = (cut + batch_len).min(events.len());
        let mut batch: Vec<_> = events[cut..end].to_vec();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..batch.len()).rev() {
            batch.swap(i, rng.gen_range(0..=i));
        }
        check_batch(&fx, &events[..cut], &batch);
    }
}
