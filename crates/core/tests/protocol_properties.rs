//! Property tests for the scheduling protocol core: whatever sequence of
//! admitted operations is recorded, the dependency structure stays acyclic
//! and the commit/deferment bookkeeping stays consistent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txproc_core::fixtures::paper_world;
use txproc_core::ids::{GlobalActivityId, ProcessId};
use txproc_core::protocol::{Admission, CompletionGate, DeferPolicy, Protocol};
use txproc_core::state::ProcessState;

/// Drives the protocol with a random but admission-respecting interleaving
/// of the paper processes. Returns the recorded admissions plus the final
/// dependency edges.
#[allow(clippy::type_complexity)]
fn drive(
    seed: u64,
    policy: DeferPolicy,
    steps: usize,
) -> (
    Vec<(GlobalActivityId, Admission)>,
    Vec<(ProcessId, ProcessId)>,
) {
    let fx = paper_world();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut protocol = Protocol::new(&fx.spec, policy);
    let processes: Vec<_> = fx.spec.processes().collect();
    let mut states: Vec<ProcessState<'_>> = processes
        .iter()
        .map(|p| ProcessState::new(p, &fx.spec.catalog).unwrap())
        .collect();
    let mut deferred_at: Vec<Option<GlobalActivityId>> = vec![None; processes.len()];
    let mut terminated = vec![false; processes.len()];
    for p in &processes {
        protocol.register(p.id);
    }
    let mut log = Vec::new();
    for _ in 0..steps {
        let live: Vec<usize> = (0..processes.len()).filter(|&i| !terminated[i]).collect();
        if live.is_empty() {
            break;
        }
        let i = live[rng.gen_range(0..live.len())];
        let pid = processes[i].id;
        // Deferred activity waiting for release? Nothing to do locally.
        if deferred_at[i].is_some() {
            continue;
        }
        let st = &mut states[i];
        if let Some(a) = st.next_activity() {
            let gid = GlobalActivityId::new(pid, a);
            let svc = processes[i].service(a);
            let admission = protocol.request(pid, svc);
            log.push((gid, admission.clone()));
            match admission {
                Admission::Allow => {
                    protocol.record_executed(gid, false);
                    st.apply_commit(a).unwrap();
                }
                Admission::AllowDeferred { .. } => {
                    protocol.record_executed(gid, true);
                    deferred_at[i] = Some(gid);
                }
                Admission::Wait { .. } | Admission::Reject { .. } => {}
            }
        } else if st.can_commit() && protocol.can_commit(pid).is_ok() {
            let released = protocol.record_process_commit(pid);
            terminated[i] = true;
            for (pj, gids) in released {
                let j = processes.iter().position(|p| p.id == pj).unwrap();
                for gid in gids {
                    protocol.record_deferred_released(gid);
                    states[j].apply_commit(gid.activity).unwrap();
                }
                deferred_at[j] = None;
            }
        }
    }
    let edges = protocol.edges().collect();
    (log, edges)
}

/// Drives the protocol through a randomized lifecycle — admissions,
/// deferred commits, releases, compensations and full process aborts — and
/// at every step compares each indexed decision API against its retained
/// scan oracle (`scan_*`). The comparisons here are explicit `assert_eq!`s,
/// so the differential check also runs in release builds where the
/// `debug_assert!`s inside the indexed paths compile out.
fn drive_differential(seed: u64, policy: DeferPolicy, steps: usize) {
    let fx = paper_world();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut protocol = Protocol::new(&fx.spec, policy);
    let processes: Vec<_> = fx.spec.processes().collect();
    let mut states: Vec<ProcessState<'_>> = processes
        .iter()
        .map(|p| ProcessState::new(p, &fx.spec.catalog).unwrap())
        .collect();
    let mut executed: Vec<Vec<GlobalActivityId>> = vec![Vec::new(); processes.len()];
    // Prefix of `executed[i]` that is stable (quasi-committed, §3.5) and can
    // no longer be compensated: a committed pivot or a released deferred
    // commit stabilizes everything before it.
    let mut stable_upto: Vec<usize> = vec![0; processes.len()];
    let mut deferred_at: Vec<Option<GlobalActivityId>> = vec![None; processes.len()];
    let mut terminated = vec![false; processes.len()];
    for p in &processes {
        protocol.register(p.id);
    }
    for step in 0..steps {
        let live: Vec<usize> = (0..processes.len()).filter(|&i| !terminated[i]).collect();
        if live.is_empty() {
            break;
        }
        let i = live[rng.gen_range(0..live.len())];
        let pid = processes[i].id;

        // Differential checks against the scan oracle, every step.
        for (j, p) in processes.iter().enumerate() {
            assert_eq!(
                protocol.can_commit(p.id),
                protocol.scan_can_commit(p.id),
                "can_commit divergence (seed {seed}, step {step})"
            );
            for gid in &executed[j] {
                assert_eq!(
                    protocol.compensation_gate(*gid),
                    protocol.scan_compensation_gate(*gid),
                    "compensation_gate divergence (seed {seed}, step {step})"
                );
            }
            let own: Vec<GlobalActivityId> = executed[j].clone();
            assert_eq!(
                protocol.plan_abort(p.id, &own, &[]),
                protocol.scan_plan_abort(p.id, &own, &[]),
                "plan_abort divergence (seed {seed}, step {step})"
            );
        }
        protocol.check_index_invariants();

        // Occasionally abort a process outright instead of progressing it.
        if !executed[i].is_empty() && rng.gen_range(0..10u32) == 0 {
            protocol.mark_aborting(pid);
            // Compensate only what the protocol still considers undoable:
            // nothing before the stable boundary, and not the prepared but
            // unreleased deferred activity (it aborts at prepare instead).
            let comps: Vec<GlobalActivityId> = executed[i][stable_upto[i]..]
                .iter()
                .rev()
                .copied()
                .filter(|g| Some(*g) != deferred_at[i])
                .collect();
            let _victims = protocol.plan_abort(pid, &comps, &[]);
            for gid in comps {
                if protocol.compensation_gate(gid) == CompletionGate::Ready {
                    protocol.record_compensated(gid);
                }
            }
            let released = protocol.record_process_abort(pid);
            terminated[i] = true;
            for (pj, gids) in released {
                let j = processes.iter().position(|p| p.id == pj).unwrap();
                for gid in gids {
                    protocol.record_deferred_released(gid);
                    states[j].apply_commit(gid.activity).unwrap();
                    if let Some(pos) = executed[j].iter().position(|g| *g == gid) {
                        stable_upto[j] = stable_upto[j].max(pos + 1);
                    }
                }
                deferred_at[j] = None;
            }
            continue;
        }
        if deferred_at[i].is_some() {
            continue;
        }
        let st = &mut states[i];
        if let Some(a) = st.next_activity() {
            let gid = GlobalActivityId::new(pid, a);
            let svc = processes[i].service(a);
            let admission = protocol.request(pid, svc);
            assert_eq!(
                admission,
                protocol.scan_request(pid, svc),
                "request divergence (seed {seed}, step {step})"
            );
            assert_eq!(
                protocol.forward_gate(pid, svc),
                protocol.scan_forward_gate(pid, svc),
                "forward_gate divergence (seed {seed}, step {step})"
            );
            match admission {
                Admission::Allow => {
                    protocol.record_executed(gid, false);
                    executed[i].push(gid);
                    let base = fx.spec.catalog.base(svc);
                    if !fx.spec.catalog.termination(base).is_compensatable() {
                        // Committed pivot: quasi-commit stabilizes the prefix.
                        stable_upto[i] = executed[i].len();
                    }
                    st.apply_commit(a).unwrap();
                }
                Admission::AllowDeferred { .. } => {
                    protocol.record_executed(gid, true);
                    executed[i].push(gid);
                    deferred_at[i] = Some(gid);
                }
                Admission::Wait { .. } | Admission::Reject { .. } => {}
            }
        } else if st.can_commit() && protocol.can_commit(pid).is_ok() {
            let released = protocol.record_process_commit(pid);
            terminated[i] = true;
            for (pj, gids) in released {
                let j = processes.iter().position(|p| p.id == pj).unwrap();
                for gid in gids {
                    protocol.record_deferred_released(gid);
                    states[j].apply_commit(gid.activity).unwrap();
                    if let Some(pos) = executed[j].iter().position(|g| *g == gid) {
                        stable_upto[j] = stable_upto[j].max(pos + 1);
                    }
                }
                deferred_at[j] = None;
            }
        }
    }
    protocol.check_index_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Admitted executions never close a dependency cycle: the protocol's
    /// edge relation stays acyclic throughout (checked at the end, which
    /// suffices since edges are only added).
    #[test]
    fn dependency_edges_stay_acyclic(seed in 0u64..10_000) {
        let (_, edges) = drive(seed, DeferPolicy::PrepareAndDefer, 40);
        let mut graph = txproc_core::serializability::ProcessGraph::new();
        for (a, b) in edges {
            graph.add_edge(a, b);
        }
        prop_assert!(graph.is_acyclic());
    }

    /// Non-compensatable activities are only admitted immediately when no
    /// active conflicting predecessor exists (Lemma 1).
    #[test]
    fn non_compensatables_never_bypass_deferment(seed in 0u64..10_000) {
        let fx = paper_world();
        let (log, _) = drive(seed, DeferPolicy::PrepareAndDefer, 40);
        // In the paper world, a2_3 (P2's pivot) conflicts transitively with
        // P1 through a2_1; whenever P2 executed a2_1 after P1's a1_1 and P1
        // is still running, the pivot must not get a plain Allow afterwards.
        let mut p1_started = false;
        let mut p2_read_after_p1 = false;
        for (gid, admission) in &log {
            if *gid == fx.a(1, 1) && matches!(admission, Admission::Allow) {
                p1_started = true;
            }
            if *gid == fx.a(2, 1) && p1_started && matches!(admission, Admission::Allow) {
                p2_read_after_p1 = true;
            }
            if *gid == fx.a(2, 3) && p2_read_after_p1 {
                // P1 has at most 4 forward activities; if P1 terminated the
                // admission may be Allow. Otherwise it must defer.
                if log.iter().filter(|(g, a)| g.process == ProcessId(1)
                    && matches!(a, Admission::Allow | Admission::AllowDeferred { .. })).count() < 4
                {
                    prop_assert!(
                        !matches!(admission, Admission::Allow),
                        "pivot admitted plainly despite active conflicting predecessor"
                    );
                }
            }
        }
    }

    /// Driving the protocol never panics and terminates cleanly for any
    /// interleaving, under both deferment policies.
    #[test]
    fn protocol_is_total(seed in 0u64..10_000, wait in any::<bool>()) {
        let policy = if wait {
            DeferPolicy::DeferExecution
        } else {
            DeferPolicy::PrepareAndDefer
        };
        let (log, _) = drive(seed, policy, 60);
        if wait {
            prop_assert!(
                log.iter().all(|(_, a)| !matches!(a, Admission::AllowDeferred { .. })),
                "DeferExecution must never prepare"
            );
        }
    }

    /// Every indexed decision API (`request`, `can_commit`,
    /// `compensation_gate`, `forward_gate`, `plan_abort`) returns results
    /// bit-identical to the retained scan oracle at every step of a
    /// randomized lifecycle including aborts, and the maintained indexes
    /// match a from-scratch rebuild throughout.
    #[test]
    fn indexed_decisions_match_scan_oracle(seed in 0u64..10_000, wait in any::<bool>()) {
        let policy = if wait {
            DeferPolicy::DeferExecution
        } else {
            DeferPolicy::PrepareAndDefer
        };
        drive_differential(seed, policy, 50);
    }
}
