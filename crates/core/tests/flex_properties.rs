//! Property tests for the flex-structure analysis: the syntactic
//! guaranteed-termination criterion is cross-validated against exhaustive
//! operational exploration of the execution state machine.

use proptest::prelude::*;
use txproc_core::activity::Catalog;
use txproc_core::flex::{valid_executions, FlexAnalysis};
use txproc_core::ids::{ActivityId, ProcessId};
use txproc_core::process::{Process, ProcessBuilder};
use txproc_core::state::{ExecStep, ProcessState};

/// Node of a randomly generated process tree.
#[derive(Debug, Clone)]
enum Node {
    /// A chain of activities with given terminations, then an optional
    /// continuation.
    Chain(Vec<Kind>, Option<Box<Node>>),
    /// A preference-ordered choice between two subtrees.
    Choice(Box<Node>, Box<Node>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Comp,
    Pivot,
    Retriable,
}

fn kind_strategy() -> impl Strategy<Value = Kind> {
    prop_oneof![
        3 => Just(Kind::Comp),
        1 => Just(Kind::Pivot),
        2 => Just(Kind::Retriable),
    ]
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf =
        proptest::collection::vec(kind_strategy(), 1..4).prop_map(|ks| Node::Chain(ks, None));
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (
                proptest::collection::vec(kind_strategy(), 1..3),
                inner.clone()
            )
                .prop_map(|(ks, n)| Node::Chain(ks, Some(Box::new(n)))),
            (inner.clone(), inner).prop_map(|(a, b)| Node::Choice(Box::new(a), Box::new(b))),
        ]
    })
}

/// Builds a process from a random tree. Returns `None` when the shape is
/// structurally invalid for the builder (never happens for these trees).
fn build(node: &Node) -> Option<(Catalog, Process)> {
    let mut catalog = Catalog::new();
    let mut builder = ProcessBuilder::new(ProcessId(1), "random");
    fn emit(
        node: &Node,
        catalog: &mut Catalog,
        builder: &mut ProcessBuilder,
        attach: Option<ActivityId>,
        counter: &mut u32,
    ) -> (ActivityId, ActivityId) {
        match node {
            Node::Chain(kinds, next) => {
                let mut first = None;
                let mut prev = attach;
                for k in kinds {
                    *counter += 1;
                    let svc = match k {
                        Kind::Comp => catalog.compensatable(format!("c{counter}")).0,
                        Kind::Pivot => catalog.pivot(format!("p{counter}")),
                        Kind::Retriable => catalog.retriable(format!("r{counter}")),
                    };
                    let a = builder.activity(format!("a{counter}"), svc);
                    if let Some(p) = prev {
                        builder.precede(p, a);
                    }
                    first.get_or_insert(a);
                    prev = Some(a);
                }
                let first = first.expect("non-empty chain");
                match next {
                    Some(n) => {
                        let (_, last) = emit(n, catalog, builder, prev, counter);
                        (first, last)
                    }
                    None => (first, prev.expect("non-empty")),
                }
            }
            Node::Choice(a, b) => {
                // Anchor the choice at a fresh compensatable activity.
                *counter += 1;
                let svc = catalog.compensatable(format!("x{counter}")).0;
                let anchor = builder.activity(format!("anchor{counter}"), svc);
                if let Some(p) = attach {
                    builder.precede(p, anchor);
                }
                let (fa, la) = emit(a, catalog, builder, Some(anchor), counter);
                let (fb, _lb) = emit(b, catalog, builder, Some(anchor), counter);
                builder.prefer(anchor, fa, fb);
                (anchor, la)
            }
        }
    }
    let mut counter = 0;
    emit(node, &mut catalog, &mut builder, None, &mut counter);
    let process = builder.build(&catalog).ok()?;
    Some((catalog, process))
}

/// Exhaustively explores every outcome combination; returns false if any
/// reachable failure is unhandled (operational guaranteed termination).
fn exploration_guarantees(process: &Process, catalog: &Catalog) -> bool {
    valid_executions(process, catalog, 100_000).is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The syntactic guaranteed-termination criterion is *sound*: whenever
    /// it accepts a process, exhaustive operational exploration confirms
    /// that every reachable failure is handled. (The criterion is
    /// conservative: it may reject a process whose risky branch is
    /// operationally unreachable — e.g. a fallback behind an all-retriable
    /// preferred branch that can never fail.)
    #[test]
    fn syntactic_gt_is_sound(node in node_strategy()) {
        let Some((catalog, process)) = build(&node) else {
            return Ok(());
        };
        if process.len() > 14 {
            // Keep the exhaustive exploration affordable.
            return Ok(());
        }
        let analysis = FlexAnalysis::analyze(&process, &catalog);
        if analysis.has_guaranteed_termination() {
            prop_assert!(
                exploration_guarantees(&process, &catalog),
                "syntactic check accepted a process with an unhandled failure: {process:?}"
            );
        }
    }

    /// Strict well-formed flex structure implies guaranteed termination
    /// ([ZNBB94]'s theorem).
    #[test]
    fn strict_wff_implies_gt(node in node_strategy()) {
        let Some((catalog, process)) = build(&node) else {
            return Ok(());
        };
        let analysis = FlexAnalysis::analyze(&process, &catalog);
        if analysis.strict_well_formed {
            prop_assert!(analysis.has_guaranteed_termination());
        }
    }

    /// Every enumerated valid execution replays cleanly through a fresh
    /// state machine and terminates in the advertised way.
    #[test]
    fn valid_executions_replay(node in node_strategy()) {
        let Some((catalog, process)) = build(&node) else {
            return Ok(());
        };
        let analysis = FlexAnalysis::analyze(&process, &catalog);
        if !analysis.has_guaranteed_termination() {
            return Ok(());
        }
        let execs = valid_executions(&process, &catalog, 512).unwrap();
        prop_assert!(!execs.is_empty());
        for e in &execs {
            // Replay: drive a machine so that it reproduces the steps.
            let mut st = ProcessState::new(&process, &catalog).unwrap();
            for step in &e.steps {
                match *step {
                    ExecStep::Executed(a) => {
                        // Fail frontier activities until `a` becomes current.
                        let mut guard = 0;
                        while st.next_activity() != Some(a) {
                            if let Some(c) = st.next_compensation() {
                                st.apply_compensation(c).unwrap();
                            } else {
                                let f = st.next_activity().expect("pending activity");
                                st.apply_failure(f).unwrap();
                            }
                            guard += 1;
                            prop_assert!(guard < 64, "replay diverged");
                        }
                        st.apply_commit(a).unwrap();
                    }
                    ExecStep::Compensated(a) => {
                        let mut guard = 0;
                        while st.next_compensation() != Some(a) {
                            let f = st.next_activity().expect("pending activity");
                            st.apply_failure(f).unwrap();
                            guard += 1;
                            prop_assert!(guard < 64, "replay diverged");
                        }
                        st.apply_compensation(a).unwrap();
                    }
                }
            }
        }
    }

    /// Committed executions never contain dangling compensations: each
    /// compensated activity was executed earlier in the same run.
    #[test]
    fn compensations_follow_their_activities(node in node_strategy()) {
        let Some((catalog, process)) = build(&node) else {
            return Ok(());
        };
        if !FlexAnalysis::analyze(&process, &catalog).has_guaranteed_termination() {
            return Ok(());
        }
        for e in valid_executions(&process, &catalog, 512).unwrap() {
            let mut executed = std::collections::BTreeSet::new();
            for step in &e.steps {
                match *step {
                    ExecStep::Executed(a) => {
                        prop_assert!(executed.insert(a), "activity executed twice");
                    }
                    ExecStep::Compensated(a) => {
                        prop_assert!(executed.contains(&a), "compensated before executed");
                    }
                }
            }
        }
    }
}
