//! Property tests for the conflict-domain partitioner: the union-find
//! construction over service footprints must agree exactly with a naive
//! O(n²) pairwise-conflict + BFS connected-components oracle, and the
//! dynamic-merge path must coarsen the partition consistently.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txproc_core::activity::Catalog;
use txproc_core::conflict::ConflictMatrix;
use txproc_core::domains::{naive_components, DomainPartition};
use txproc_core::ids::{ProcessId, ServiceId};
use txproc_core::process::ProcessBuilder;
use txproc_core::spec::Spec;

/// Builds a random world: `services` base services with a random symmetric
/// conflict relation (including self-conflicts), and `processes` chain
/// processes with random footprints.
fn random_spec(seed: u64, services: usize, processes: usize, conflict_density: f64) -> Spec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let svcs: Vec<ServiceId> = (0..services)
        .map(|i| {
            // Mix service kinds so Catalog::base mapping is exercised.
            if i % 3 == 0 {
                cat.pivot(format!("s{i}"))
            } else {
                cat.compensatable(format!("s{i}")).0
            }
        })
        .collect();
    let mut matrix = ConflictMatrix::new(&cat);
    for i in 0..services {
        for j in i..services {
            if rng.gen_bool(conflict_density) {
                matrix.declare_conflict(&cat, svcs[i], svcs[j]).unwrap();
            }
        }
    }
    let mut spec = Spec::new(cat, matrix);
    for p in 0..processes {
        let mut b = ProcessBuilder::new(ProcessId(p as u32 + 1), format!("p{p}"));
        let len = rng.gen_range(1..=4usize);
        let acts: Vec<_> = (0..len)
            .map(|k| {
                let s = svcs[rng.gen_range(0..svcs.len())];
                b.activity(format!("a{k}"), s)
            })
            .collect();
        b.chain(&acts);
        spec.add_process(b.build(&spec.catalog).unwrap());
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn partition_matches_naive_oracle(
        seed in 0u64..1_000_000,
        services in 1usize..10,
        processes in 1usize..12,
        density_pct in 0u32..=100,
    ) {
        let spec = random_spec(seed, services, processes, f64::from(density_pct) / 100.0);
        let part = DomainPartition::partition(&spec);
        let naive = naive_components(&spec);

        let mut got: Vec<Vec<ProcessId>> = part.domains().to_vec();
        got.sort();
        prop_assert_eq!(&got, &naive, "partition disagrees with O(n²) oracle");

        // Dense ids, ordered by smallest member, covering every process.
        prop_assert_eq!(part.domain_count(), naive.len());
        prop_assert_eq!(part.process_count(), spec.process_count());
        let firsts: Vec<ProcessId> = part.domains().iter().map(|d| d[0]).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        prop_assert_eq!(firsts, sorted, "domain ids not ordered by smallest member");
        for p in spec.processes() {
            let d = part.domain_of(p.id).expect("registered pid has a domain");
            prop_assert!(part.domains()[d as usize].contains(&p.id));
        }
    }

    #[test]
    fn dynamic_merge_coarsens_consistently(
        seed in 0u64..1_000_000,
        services in 1usize..8,
        processes in 2usize..10,
    ) {
        let spec = random_spec(seed, services, processes, 0.2);
        let mut part = DomainPartition::partition(&spec);
        let before = part.domain_count();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let a = ProcessId(rng.gen_range(0..processes) as u32 + 1);
        let b = ProcessId(rng.gen_range(0..processes) as u32 + 1);
        let distinct = !part.same_domain(a, b);
        let merged = part.merge(a, b);
        prop_assert_eq!(merged, distinct, "merge must report whether domains fused");
        prop_assert!(part.same_domain(a, b));
        prop_assert_eq!(
            part.domain_count(),
            if distinct { before - 1 } else { before }
        );
        // Labels stay dense and ordered by smallest member after relabel.
        let firsts: Vec<ProcessId> = part.domains().iter().map(|d| d[0]).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        prop_assert_eq!(firsts, sorted);
        let total: usize = part.domains().iter().map(Vec::len).sum();
        prop_assert_eq!(total, processes);
    }
}
