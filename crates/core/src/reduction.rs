//! Reducibility of completed process schedules (Definition 9).
//!
//! A process schedule is **RED** when its completed schedule `S̃` can be
//! transformed into a *serial* schedule by finitely many applications of
//!
//! 1. the **commutativity rule** — adjacent commuting activities may swap,
//! 2. the **compensation rule** — an adjacent pair `⟨a, a⁻¹⟩` vanishes,
//! 3. the **effect-free rule** — effect-free activities of processes that do
//!    not commit in `S` vanish.
//!
//! Two deciders are provided:
//!
//! * [`reduce`] — an `O(n²)` graph decision procedure: a compensation pair
//!   can be cancelled iff no *live conflicting* operation lies strictly
//!   between the pair in `≪̃_S` (everything else can be commuted out of the
//!   interval), cancellation runs to fixpoint, and the remaining operations
//!   must form an acyclic process-level conflict graph — then a serial
//!   arrangement is reachable by commutativity swaps alone.
//! * [`reduce_exhaustive`] — a faithful state-space search applying the three
//!   rules literally on sequences. Exponential; used to cross-validate the
//!   graph decider on small schedules (see the property tests).

use crate::completion::CompletedSchedule;
use crate::error::ScheduleError;
use crate::schedule::{Op, OpKind, Schedule};
use crate::serializability::{process_graph_ordered, ProcessGraph};
use crate::spec::Spec;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Result of reducing a completed schedule.
#[derive(Debug, Clone)]
pub struct ReductionOutcome {
    /// Whether the schedule is reducible (RED).
    pub reducible: bool,
    /// Index pairs `(forward, compensation)` cancelled by the compensation
    /// rule.
    pub cancelled_pairs: Vec<(usize, usize)>,
    /// Indices removed by the effect-free rule.
    pub removed_effect_free: Vec<usize>,
    /// Liveness per operation index after reduction.
    pub live: Vec<bool>,
    /// Process-level conflict graph over the remaining operations.
    pub process_graph: ProcessGraph,
}

impl ReductionOutcome {
    /// Operations remaining after reduction.
    pub fn live_ops<'a>(&self, completed: &'a CompletedSchedule) -> Vec<&'a Op> {
        completed
            .ops
            .iter()
            .filter(|o| self.live[o.index])
            .collect()
    }
}

/// Graph-based RED decision (see module docs).
pub fn reduce(spec: &Spec, completed: &CompletedSchedule) -> ReductionOutcome {
    let n = completed.ops.len();
    let mut live = vec![true; n];
    let oracle = spec.oracle();
    if n == 0 {
        return ReductionOutcome {
            reducible: true,
            cancelled_pairs: Vec::new(),
            removed_effect_free: Vec::new(),
            live,
            process_graph: ProcessGraph::new(),
        };
    }
    let reach = completed.order.reachability();

    // Rule 3: effect-free activities of processes that do not commit in S.
    let mut removed_effect_free = Vec::new();
    for op in &completed.ops {
        if !completed.committed_in_s.contains(&op.gid.process)
            && spec.catalog.is_effect_free(op.service)
        {
            live[op.index] = false;
            removed_effect_free.push(op.index);
        }
    }

    // Rule 2 (+1): cancel compensation pairs whose ≪̃-interval contains no
    // live conflicting operation; iterate to fixpoint (cancelling an inner
    // pair can free an enclosing one).
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut fwd_of: BTreeMap<crate::ids::GlobalActivityId, usize> = BTreeMap::new();
    for op in &completed.ops {
        if op.kind == OpKind::Forward {
            fwd_of.insert(op.gid, op.index);
        }
    }
    for op in &completed.ops {
        if op.kind == OpKind::Compensation {
            if let Some(&f) = fwd_of.get(&op.gid) {
                debug_assert!(reach.lt(f, op.index));
                pairs.push((f, op.index));
            }
        }
    }
    let mut cancelled_pairs = Vec::new();
    loop {
        let mut changed = false;
        for &(f, c) in &pairs {
            if !live[f] || !live[c] {
                continue;
            }
            let service = completed.ops[f].service;
            let blocked = (0..n).any(|k| {
                k != f
                    && k != c
                    && live[k]
                    && oracle.conflict(completed.ops[k].service, service)
                    && reach.between(f, k, c)
            });
            if !blocked {
                live[f] = false;
                live[c] = false;
                cancelled_pairs.push((f, c));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Rule 1 closure: the remaining operations are serializable iff the
    // process-level conflict graph is acyclic.
    let process_graph = process_graph_ordered(spec, &completed.ops, &reach, &live);
    let reducible = process_graph.is_acyclic();
    ReductionOutcome {
        reducible,
        cancelled_pairs,
        removed_effect_free,
        live,
        process_graph,
    }
}

/// Whether a history is reducible: builds `S̃` and decides RED.
pub fn is_reducible(spec: &Spec, schedule: &Schedule) -> Result<bool, ScheduleError> {
    let completed = crate::completion::complete(spec, schedule)?;
    Ok(reduce(spec, &completed).reducible)
}

/// Result of the exhaustive rule-based reduction search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExhaustiveOutcome {
    /// A serial schedule was reached; contains the operation indices of one
    /// witnessing serial arrangement.
    Reducible(Vec<usize>),
    /// The full reachable state space was explored without finding a serial
    /// arrangement.
    NotReducible,
    /// The state cap was hit before the search completed.
    Inconclusive,
}

/// Faithful rule-rewriting search for a serial arrangement of `S̃`
/// (exponential; small schedules only).
///
/// States are sequences of live operation indices starting from a linear
/// extension of `≪̃_S`. Transitions: swap adjacent commuting operations of
/// different processes, drop an adjacent `⟨a, a⁻¹⟩` pair, drop an effect-free
/// operation of a process that does not commit in `S`. Goal: each process's
/// operations contiguous.
pub fn reduce_exhaustive(
    spec: &Spec,
    completed: &CompletedSchedule,
    max_states: usize,
) -> ExhaustiveOutcome {
    let oracle = spec.oracle();
    let ops = &completed.ops;
    let Some(initial) = completed.order.topological_order() else {
        return ExhaustiveOutcome::NotReducible;
    };

    let is_serial = |seq: &[usize]| -> bool {
        let mut seen_done: HashSet<crate::ids::ProcessId> = HashSet::new();
        let mut current: Option<crate::ids::ProcessId> = None;
        for &i in seq {
            let p = ops[i].gid.process;
            if Some(p) != current {
                if seen_done.contains(&p) {
                    return false;
                }
                if let Some(c) = current {
                    seen_done.insert(c);
                }
                current = Some(p);
            }
        }
        true
    };

    let mut visited: HashSet<Vec<usize>> = HashSet::new();
    let mut queue: VecDeque<Vec<usize>> = VecDeque::new();
    visited.insert(initial.clone());
    queue.push_back(initial);
    while let Some(seq) = queue.pop_front() {
        if is_serial(&seq) {
            return ExhaustiveOutcome::Reducible(seq);
        }
        if visited.len() > max_states {
            return ExhaustiveOutcome::Inconclusive;
        }
        // Rule 3: remove an effect-free op of a non-committing process.
        for (pos, &i) in seq.iter().enumerate() {
            if !completed.committed_in_s.contains(&ops[i].gid.process)
                && spec.catalog.is_effect_free(ops[i].service)
            {
                let mut next = seq.clone();
                next.remove(pos);
                if visited.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        for pos in 0..seq.len().saturating_sub(1) {
            let (i, j) = (seq[pos], seq[pos + 1]);
            let (x, y) = (&ops[i], &ops[j]);
            // Rule 2: adjacent compensation pair.
            if x.gid == y.gid && x.kind == OpKind::Forward && y.kind == OpKind::Compensation {
                let mut next = seq.clone();
                next.remove(pos + 1);
                next.remove(pos);
                if visited.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
            // Rule 1: swap adjacent commuting ops of different processes.
            if x.gid.process != y.gid.process && oracle.commute(x.service, y.service) {
                let mut next = seq.clone();
                next.swap(pos, pos + 1);
                if visited.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
    }
    ExhaustiveOutcome::NotReducible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completion::complete;
    use crate::fixtures;
    use crate::ids::ProcessId;
    use crate::schedule::Schedule;

    fn st2(fx: &fixtures::PaperWorld) -> Schedule {
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(1, 2))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 3));
        s
    }

    fn st1(fx: &fixtures::PaperWorld) -> Schedule {
        // Prefix of Figure 4(a) at t1: a1_1 a2_1 a2_2 a2_3 a2_4.
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4));
        s
    }

    #[test]
    fn example_6_st2_is_reducible() {
        // Example 6: only a1_3/a1_3⁻¹ cancel, the rest serializes P₁ → P₂.
        let fx = fixtures::paper_world();
        let completed = complete(&fx.spec, &st2(&fx)).unwrap();
        let outcome = reduce(&fx.spec, &completed);
        assert!(outcome.reducible);
        assert_eq!(outcome.cancelled_pairs.len(), 1);
        let (f, c) = outcome.cancelled_pairs[0];
        assert_eq!(completed.ops[f].gid, fx.a(1, 3));
        assert_eq!(completed.ops[c].gid, fx.a(1, 3));
        // The reduced schedule serializes P₁ before P₂.
        let order = outcome.process_graph.topological_order().unwrap();
        assert_eq!(order, vec![ProcessId(1), ProcessId(2)]);
    }

    #[test]
    fn example_8_st1_is_not_reducible() {
        // Example 8: completing S_t1 creates the cycle
        // a1_1 ≪ a2_1 ≪ a1_1⁻¹ which no rule can eliminate.
        let fx = fixtures::paper_world();
        let completed = complete(&fx.spec, &st1(&fx)).unwrap();
        let outcome = reduce(&fx.spec, &completed);
        assert!(!outcome.reducible);
        // The compensation pair (a1_1, a1_1⁻¹) must NOT cancel: a2_1 blocks.
        assert!(outcome
            .cancelled_pairs
            .iter()
            .all(|&(f, _)| completed.ops[f].gid != fx.a(1, 1)));
    }

    #[test]
    fn exhaustive_agrees_on_example_6() {
        let fx = fixtures::paper_world();
        let completed = complete(&fx.spec, &st2(&fx)).unwrap();
        let outcome = reduce_exhaustive(&fx.spec, &completed, 500_000);
        assert!(matches!(outcome, ExhaustiveOutcome::Reducible(_)));
    }

    #[test]
    fn exhaustive_agrees_on_example_8() {
        let fx = fixtures::paper_world();
        let completed = complete(&fx.spec, &st1(&fx)).unwrap();
        let outcome = reduce_exhaustive(&fx.spec, &completed, 500_000);
        assert_eq!(outcome, ExhaustiveOutcome::NotReducible);
    }

    #[test]
    fn committed_serial_schedule_is_reducible() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        for k in 1..=4 {
            s.execute(fx.a(1, k));
        }
        s.commit(ProcessId(1));
        for k in 1..=5 {
            s.execute(fx.a(2, k));
        }
        s.commit(ProcessId(2));
        assert!(is_reducible(&fx.spec, &s).unwrap());
    }

    #[test]
    fn non_serializable_schedule_is_not_reducible() {
        // Figure 4(b): cyclic conflicts survive completion.
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3));
        assert!(!is_reducible(&fx.spec, &s).unwrap());
    }

    #[test]
    fn empty_schedule_is_reducible() {
        let fx = fixtures::paper_world();
        assert!(is_reducible(&fx.spec, &Schedule::new()).unwrap());
    }

    #[test]
    fn effect_free_rule_removes_reads_of_aborted_processes() {
        use crate::activity::Catalog;
        use crate::conflict::ConflictMatrix;
        use crate::ids::{ActivityId, GlobalActivityId};
        use crate::process::ProcessBuilder;
        use crate::spec::Spec;
        let mut cat = Catalog::new();
        let read = cat.retriable("read");
        cat.mark_effect_free(read).unwrap();
        let (w, _) = cat.compensatable("w");
        let mut m = ConflictMatrix::new(&cat);
        m.declare_conflict(&cat, read, w).unwrap();
        let mut b = ProcessBuilder::new(ProcessId(1), "R");
        b.activity("r0", read);
        let pr = b.build(&cat).unwrap();
        let mut b = ProcessBuilder::new(ProcessId(2), "W");
        b.activity("w0", w);
        let pw = b.build(&cat).unwrap();
        let mut spec = Spec::new(cat, m);
        spec.add_process(pr);
        spec.add_process(pw);
        let mut s = Schedule::new();
        s.execute(GlobalActivityId::new(ProcessId(1), ActivityId(0)));
        s.execute(GlobalActivityId::new(ProcessId(2), ActivityId(0)));
        s.commit(ProcessId(2));
        // P1 stays active; its read is effect-free and vanishes by rule 3.
        let completed = complete(&spec, &s).unwrap();
        let outcome = reduce(&spec, &completed);
        assert!(outcome.reducible);
        assert_eq!(outcome.removed_effect_free.len(), 1);
    }

    #[test]
    fn live_ops_exposes_survivors() {
        let fx = fixtures::paper_world();
        let completed = complete(&fx.spec, &st2(&fx)).unwrap();
        let outcome = reduce(&fx.spec, &completed);
        let live = outcome.live_ops(&completed);
        assert_eq!(live.len(), completed.ops.len() - 2);
    }

    #[test]
    fn nested_compensation_pairs_cancel() {
        // One process writes w1 then w2, then aborts: completion compensates
        // w2 then w1; both pairs must cancel (inner first).
        use crate::activity::Catalog;
        use crate::conflict::ConflictMatrix;
        use crate::ids::{ActivityId, GlobalActivityId};
        use crate::process::ProcessBuilder;
        use crate::spec::Spec;
        let mut cat = Catalog::new();
        let (w1, _) = cat.compensatable("w1");
        let (w2, _) = cat.compensatable("w2");
        let mut m = ConflictMatrix::new(&cat);
        m.declare_self_conflict(&cat, w1).unwrap();
        m.declare_self_conflict(&cat, w2).unwrap();
        m.declare_conflict(&cat, w1, w2).unwrap();
        let mut b = ProcessBuilder::new(ProcessId(1), "N");
        let x0 = b.activity("x0", w1);
        let x1 = b.activity("x1", w2);
        b.precede(x0, x1);
        let p = b.build(&cat).unwrap();
        let mut spec = Spec::new(cat, m);
        spec.add_process(p);
        let mut s = Schedule::new();
        s.execute(GlobalActivityId::new(ProcessId(1), ActivityId(0)));
        s.execute(GlobalActivityId::new(ProcessId(1), ActivityId(1)));
        let completed = complete(&spec, &s).unwrap();
        let outcome = reduce(&spec, &completed);
        assert!(outcome.reducible);
        assert_eq!(outcome.cancelled_pairs.len(), 2);
        assert!(outcome.live.iter().all(|&l| !l));
    }
}
