//! Error types shared across the core model.

use crate::ids::{ActivityId, GlobalActivityId, ProcessId, ServiceId};
use std::fmt;

/// Errors raised while *defining* a catalog, conflict relation, or process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A service id referenced something outside the catalog.
    UnknownService(ServiceId),
    /// A process id was not registered in the [`Spec`](crate::spec::Spec).
    UnknownProcess(ProcessId),
    /// An activity id was out of range for its process.
    UnknownActivity(GlobalActivityId),
    /// A compensating service was used as a regular process activity.
    ///
    /// Compensating activities only ever appear inside completions; they are
    /// not schedulable process steps (§3.1: a compensating activity is itself
    /// not compensatable and only invoked for recovery).
    CompensatingServiceInProcess {
        /// The offending process.
        process: ProcessId,
        /// The offending activity.
        activity: ActivityId,
        /// The compensating service that was (incorrectly) referenced.
        service: ServiceId,
    },
    /// The precedence order `≪` contains a cycle (it must be a strict partial
    /// order, Definition 5).
    PrecedenceCycle(ProcessId),
    /// The preference order `◁` relates two edges with different source
    /// activities; Definition 5 only defines it over pairs of connectors
    /// starting from the same activity.
    PreferenceSourceMismatch {
        /// The offending process.
        process: ProcessId,
        /// Source of the first edge.
        first_source: ActivityId,
        /// Source of the second edge.
        second_source: ActivityId,
    },
    /// The preference order `◁` over the out-edges of one activity is not a
    /// total order (the paper: "to avoid indeterminism in the execution,
    /// when, by transitivity, ◁ associates several connectors, it can only
    /// define a total order").
    PreferenceNotTotal {
        /// The offending process.
        process: ProcessId,
        /// The activity whose alternatives are ambiguous.
        source: ActivityId,
    },
    /// The preference order contains a cycle.
    PreferenceCycle {
        /// The offending process.
        process: ProcessId,
        /// The activity whose out-edges are cyclically preferred.
        source: ActivityId,
    },
    /// A preference edge referenced a precedence edge that does not exist.
    UnknownPreferenceEdge {
        /// The offending process.
        process: ProcessId,
        /// Source of the missing precedence edge.
        source: ActivityId,
        /// Target of the missing precedence edge.
        target: ActivityId,
    },
    /// The process has no activities.
    EmptyProcess(ProcessId),
    /// The process has more than one start activity (no unique root), which
    /// the flex-structure analysis requires.
    MultipleRoots(ProcessId),
    /// An activity has more than one predecessor; the guaranteed-termination
    /// analysis supports tree-structured processes (sequences with
    /// preference-ordered alternative branches), which covers the well-formed
    /// flex structures of \[ZNBB94\] used by the paper.
    NotATree {
        /// The offending process.
        process: ProcessId,
        /// The activity with several predecessors.
        activity: ActivityId,
    },
    /// A duplicate precedence edge was declared.
    DuplicateEdge {
        /// The offending process.
        process: ProcessId,
        /// Source of the duplicated edge.
        source: ActivityId,
        /// Target of the duplicated edge.
        target: ActivityId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownService(s) => write!(f, "unknown service {s}"),
            ModelError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            ModelError::UnknownActivity(a) => write!(f, "unknown activity {a}"),
            ModelError::CompensatingServiceInProcess {
                process,
                activity,
                service,
            } => write!(
                f,
                "process {process} uses compensating service {service} as regular activity {activity}"
            ),
            ModelError::PrecedenceCycle(p) => {
                write!(f, "precedence order of {p} is cyclic")
            }
            ModelError::PreferenceSourceMismatch {
                process,
                first_source,
                second_source,
            } => write!(
                f,
                "preference order of {process} relates edges with different sources {first_source} and {second_source}"
            ),
            ModelError::PreferenceNotTotal { process, source } => write!(
                f,
                "preference order of {process} does not totally order the alternatives of {source}"
            ),
            ModelError::PreferenceCycle { process, source } => write!(
                f,
                "preference order of {process} is cyclic at {source}"
            ),
            ModelError::UnknownPreferenceEdge {
                process,
                source,
                target,
            } => write!(
                f,
                "preference order of {process} references missing precedence edge {source} -> {target}"
            ),
            ModelError::EmptyProcess(p) => write!(f, "process {p} has no activities"),
            ModelError::MultipleRoots(p) => {
                write!(f, "process {p} has no unique start activity")
            }
            ModelError::NotATree { process, activity } => write!(
                f,
                "process {process} is not tree-structured: activity {activity} has several predecessors"
            ),
            ModelError::DuplicateEdge {
                process,
                source,
                target,
            } => write!(
                f,
                "process {process} declares duplicate precedence edge {source} -> {target}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// Errors raised while *replaying* or *checking* schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule references an unknown process or activity.
    Model(ModelError),
    /// An activity was scheduled although its intra-process predecessors have
    /// not all committed (violates Definition 7.1: every `≪_i ⊆ ≪_S`).
    PrecedenceViolation {
        /// The prematurely scheduled activity.
        activity: GlobalActivityId,
    },
    /// An activity was scheduled twice.
    DuplicateInvocation(GlobalActivityId),
    /// An activity of a process that already terminated was scheduled.
    ProcessAlreadyTerminated(ProcessId),
    /// An activity on an abandoned alternative branch was scheduled.
    NotOnActiveBranch(GlobalActivityId),
    /// A compensation was scheduled for an activity that is not compensatable
    /// or was never executed.
    InvalidCompensation(GlobalActivityId),
    /// A failure was recorded for a retriable activity (Definition 3:
    /// retriable activities never fail).
    RetriableCannotFail(GlobalActivityId),
    /// A commit event was recorded for a process that has not finished a
    /// valid execution path.
    PrematureCommit(ProcessId),
    /// The process could not switch to any alternative and cannot continue.
    NoAlternativeLeft(GlobalActivityId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Model(e) => write!(f, "{e}"),
            ScheduleError::PrecedenceViolation { activity } => {
                write!(
                    f,
                    "activity {activity} scheduled before its predecessors committed"
                )
            }
            ScheduleError::DuplicateInvocation(a) => {
                write!(f, "activity {a} scheduled twice")
            }
            ScheduleError::ProcessAlreadyTerminated(p) => {
                write!(f, "process {p} already terminated")
            }
            ScheduleError::NotOnActiveBranch(a) => {
                write!(f, "activity {a} is not on the active execution branch")
            }
            ScheduleError::InvalidCompensation(a) => {
                write!(f, "invalid compensation of activity {a}")
            }
            ScheduleError::RetriableCannotFail(a) => {
                write!(f, "retriable activity {a} cannot fail (Definition 3)")
            }
            ScheduleError::PrematureCommit(p) => {
                write!(
                    f,
                    "process {p} committed before finishing a valid execution path"
                )
            }
            ScheduleError::NoAlternativeLeft(a) => {
                write!(f, "no alternative left after failure of {a}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<ModelError> for ScheduleError {
    fn from(e: ModelError) -> Self {
        ScheduleError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = ModelError::PrecedenceCycle(ProcessId(1));
        assert!(e.to_string().contains("P1"));
        let e =
            ScheduleError::RetriableCannotFail(GlobalActivityId::new(ProcessId(2), ActivityId(4)));
        assert!(e.to_string().contains("a2_4"));
        assert!(e.to_string().contains("Definition 3"));
    }

    #[test]
    fn model_error_converts_into_schedule_error() {
        let m = ModelError::UnknownProcess(ProcessId(9));
        let s: ScheduleError = m.clone().into();
        assert_eq!(s, ScheduleError::Model(m));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<T: std::error::Error>() {}
        assert_err::<ModelError>();
        assert_err::<ScheduleError>();
    }
}
