//! The paper's running examples as ready-made fixtures.
//!
//! * [`paper_world`] builds processes P₁ and P₂ of Figures 2 and 4, plus P₃
//!   of Figure 9, with exactly the conflicts the paper declares.
//! * [`cim_world`] builds the CIM scenario of Figure 1: a construction
//!   process and a production process coupled through the PDM system.
//!
//! These fixtures are used throughout the test suites, the examples, and the
//! experiment report generator.

use crate::activity::Catalog;
use crate::conflict::ConflictMatrix;
use crate::ids::{ActivityId, GlobalActivityId, ProcessId};
use crate::process::{Process, ProcessBuilder};
use crate::spec::Spec;

/// Fixture bundling the paper's example processes.
#[derive(Debug, Clone)]
pub struct PaperWorld {
    /// Catalog, conflicts, and registered processes.
    pub spec: Spec,
    /// P₁ of Figure 2: `a1₁ᶜ ≪ a1₂ᵖ ≪ a1₃ᶜ ≪ a1₄ᵖ` with the alternative
    /// `a1₂ ≪ a1₅ʳ ≪ a1₆ʳ` where `(a1₂≪a1₃) ◁ (a1₂≪a1₅)`.
    pub p1: Process,
    /// P₂ of Figure 4: `a2₁ᶜ ≪ a2₂ᶜ ≪ a2₃ᵖ ≪ a2₄ʳ ≪ a2₅ʳ`.
    pub p2: Process,
    /// P₃ of Figure 9: `a3₁ᶜ ≪ a3₂ʳ`, with `a3₁` conflicting `a1₁`.
    pub p3: Process,
}

impl PaperWorld {
    /// Global activity id using the paper's 1-based notation: `a(i, k)` is
    /// `a_{i_k}`.
    pub fn a(&self, process: u32, k: u32) -> GlobalActivityId {
        assert!(k >= 1, "paper activity ids are 1-based");
        GlobalActivityId::new(ProcessId(process), ActivityId(k - 1))
    }
}

/// Builds the paper's example world (Figures 2, 4 and 9).
pub fn paper_world() -> PaperWorld {
    let mut cat = Catalog::new();
    // P₁'s services.
    let (s11, _) = cat.compensatable("s1_1");
    let s12 = cat.pivot("s1_2");
    let (s13, _) = cat.compensatable("s1_3");
    let s14 = cat.pivot("s1_4");
    let s15 = cat.retriable("s1_5");
    let s16 = cat.retriable("s1_6");
    // P₂'s services.
    let (s21, _) = cat.compensatable("s2_1");
    let (s22, _) = cat.compensatable("s2_2");
    let s23 = cat.pivot("s2_3");
    let s24 = cat.retriable("s2_4");
    let s25 = cat.retriable("s2_5");
    // P₃'s services.
    let (s31, _) = cat.compensatable("s3_1");
    let s32 = cat.retriable("s3_2");

    let mut conflicts = ConflictMatrix::new(&cat);
    // Figure 4: the pairs (a1_1, a2_1), (a1_2, a2_4), (a1_5, a2_5) do not
    // commute.
    conflicts.declare_conflict(&cat, s11, s21).unwrap();
    conflicts.declare_conflict(&cat, s12, s24).unwrap();
    conflicts.declare_conflict(&cat, s15, s25).unwrap();
    // Figure 9: a1_1 and a3_1 do conflict.
    conflicts.declare_conflict(&cat, s11, s31).unwrap();

    // P₁ (Figure 2).
    let mut b = ProcessBuilder::new(ProcessId(1), "P1");
    let a11 = b.activity("a1_1", s11);
    let a12 = b.activity("a1_2", s12);
    let a13 = b.activity("a1_3", s13);
    let a14 = b.activity("a1_4", s14);
    let a15 = b.activity("a1_5", s15);
    let a16 = b.activity("a1_6", s16);
    b.chain(&[a11, a12, a13, a14]);
    b.precede(a12, a15);
    b.precede(a15, a16);
    b.prefer(a12, a13, a15);
    let p1 = b.build(&cat).unwrap();

    // P₂ (Figure 4).
    let mut b = ProcessBuilder::new(ProcessId(2), "P2");
    let a21 = b.activity("a2_1", s21);
    let a22 = b.activity("a2_2", s22);
    let a23 = b.activity("a2_3", s23);
    let a24 = b.activity("a2_4", s24);
    let a25 = b.activity("a2_5", s25);
    b.chain(&[a21, a22, a23, a24, a25]);
    let p2 = b.build(&cat).unwrap();

    // P₃ (Figure 9).
    let mut b = ProcessBuilder::new(ProcessId(3), "P3");
    let a31 = b.activity("a3_1", s31);
    let a32 = b.activity("a3_2", s32);
    b.precede(a31, a32);
    let p3 = b.build(&cat).unwrap();

    let mut spec = Spec::new(cat, conflicts);
    spec.add_process(p1.clone());
    spec.add_process(p2.clone());
    spec.add_process(p3.clone());
    PaperWorld { spec, p1, p2, p3 }
}

/// Fixture for the CIM scenario of Figure 1.
#[derive(Debug, Clone)]
pub struct CimWorld {
    /// Catalog, conflicts, and the two registered processes.
    pub spec: Spec,
    /// The construction process: `design ≪ pdm_entry ≪ test ≪ tech_doc`, with
    /// the alternative branch `design ≪ doc_cad` taken when the test fails
    /// (after compensating the PDM entry).
    pub construction: Process,
    /// The production process: `read_bom ≪ schedule ≪ production ≪ deliver`.
    /// `production` has no inverse (it is the pivot).
    pub production: Process,
}

impl CimWorld {
    /// Activity of the construction process by name.
    pub fn construction_activity(&self, name: &str) -> GlobalActivityId {
        GlobalActivityId::new(
            self.construction.id,
            self.construction.find(name).expect("known activity"),
        )
    }

    /// Activity of the production process by name.
    pub fn production_activity(&self, name: &str) -> GlobalActivityId {
        GlobalActivityId::new(
            self.production.id,
            self.production.find(name).expect("known activity"),
        )
    }
}

/// Builds the CIM scenario of Figure 1 and §2.
///
/// The single declared conflict couples the two PDM activities: the
/// construction process *writes* the bill of materials (`pdm_entry`), the
/// production process *reads* it (`read_bom`). The production activity is a
/// pivot — §2.2: "as no inverse for the production activity exists, it must
/// not be executed before the test terminated successfully".
pub fn cim_world() -> CimWorld {
    let mut cat = Catalog::new();
    // Construction subsystems: CAD, PDM, test database, documentation.
    let (design, _) = cat.compensatable("design");
    let (pdm_entry, _) = cat.compensatable("pdm_entry");
    let test = cat.pivot("test");
    let tech_doc = cat.retriable("tech_doc");
    let doc_cad = cat.retriable("doc_cad");
    // Production subsystems: PDM (read), business application, floor.
    let (read_bom, _) = cat.compensatable("read_bom");
    let (schedule, _) = cat.compensatable("schedule");
    let production = cat.pivot("production");
    let deliver = cat.retriable("deliver");

    let mut conflicts = ConflictMatrix::new(&cat);
    // §2.2: "only the two activities within the PDM system do conflict".
    conflicts
        .declare_conflict(&cat, pdm_entry, read_bom)
        .unwrap();

    let mut b = ProcessBuilder::new(ProcessId(1), "construction");
    let a_design = b.activity("design", design);
    let a_pdm = b.activity("pdm_entry", pdm_entry);
    let a_test = b.activity("test", test);
    let a_doc = b.activity("tech_doc", tech_doc);
    let a_cad_doc = b.activity("doc_cad", doc_cad);
    b.chain(&[a_design, a_pdm, a_test, a_doc]);
    // §2.1: if the test fails, undo the PDM entry and document the CAD
    // drawing instead of the full technical documentation.
    b.precede(a_design, a_cad_doc);
    b.prefer(a_design, a_pdm, a_cad_doc);
    let construction = b.build(&cat).unwrap();

    let mut b = ProcessBuilder::new(ProcessId(2), "production");
    let a_read = b.activity("read_bom", read_bom);
    let a_sched = b.activity("schedule", schedule);
    let a_prod = b.activity("production", production);
    let a_deliver = b.activity("deliver", deliver);
    b.chain(&[a_read, a_sched, a_prod, a_deliver]);
    let production_p = b.build(&cat).unwrap();

    let mut spec = Spec::new(cat, conflicts);
    spec.add_process(construction.clone());
    spec.add_process(production_p.clone());
    CimWorld {
        spec,
        construction,
        production: production_p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flex::FlexAnalysis;

    #[test]
    fn paper_processes_have_guaranteed_termination() {
        let fx = paper_world();
        for p in [&fx.p1, &fx.p2, &fx.p3] {
            let analysis = FlexAnalysis::analyze(p, &fx.spec.catalog);
            assert!(
                analysis.has_guaranteed_termination(),
                "{} must be a process with guaranteed termination",
                p.name
            );
        }
    }

    #[test]
    fn p2_and_p3_are_strict_wff() {
        let fx = paper_world();
        assert!(FlexAnalysis::analyze(&fx.p2, &fx.spec.catalog).strict_well_formed);
        assert!(FlexAnalysis::analyze(&fx.p3, &fx.spec.catalog).strict_well_formed);
        assert!(FlexAnalysis::analyze(&fx.p1, &fx.spec.catalog).strict_well_formed);
    }

    #[test]
    fn cim_processes_have_guaranteed_termination() {
        let fx = cim_world();
        let c = FlexAnalysis::analyze(&fx.construction, &fx.spec.catalog);
        assert!(c.has_guaranteed_termination());
        let p = FlexAnalysis::analyze(&fx.production, &fx.spec.catalog);
        assert!(p.has_guaranteed_termination());
        assert!(p.strict_well_formed);
    }

    #[test]
    fn cim_conflict_is_the_pdm_pair_only() {
        let fx = cim_world();
        let pdm = fx.construction_activity("pdm_entry");
        let read = fx.production_activity("read_bom");
        assert!(fx.spec.activities_conflict(pdm, read).unwrap());
        let design = fx.construction_activity("design");
        assert!(!fx.spec.activities_conflict(design, read).unwrap());
    }

    #[test]
    fn paper_activity_indexing_is_one_based() {
        let fx = paper_world();
        let gid = fx.a(1, 2);
        assert_eq!(gid.process, ProcessId(1));
        assert_eq!(gid.activity, ActivityId(1));
    }
}
