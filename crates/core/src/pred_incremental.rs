//! Incremental PRED certification (Definition 10, evaluated event by event).
//!
//! [`crate::pred::check_pred`] re-derives the completed schedule `S̃` and its
//! reduction for *every* prefix, which is `O(n³)` over a history of `n`
//! events. An online scheduler, however, only ever extends the history by one
//! event at a time, and almost all of the certification state is shared
//! between consecutive prefixes:
//!
//! * the per-process state machines advance by exactly one transition,
//! * the `≪̃`-predecessor closure of every already-recorded operation is
//!   final — a new operation of the original history is always a *sink*
//!   among the original operations (8.3a orders conflicting pairs by history
//!   position, per-process chains follow execution order),
//! * the per-service conflict aggregates (union of the predecessor closures
//!   of all operations of a service) let the closure of a new operation be
//!   assembled in `O(conflicting services · n/64)` words,
//! * permanence of an operation (it survives every reduction) only flips
//!   when a process's pending completion changes — the affected operations
//!   are found through their activity ids and re-counted against their
//!   conflict buckets in `O(degree)`,
//! * the process-level conflict-pair counters for both the mandatory-rank
//!   graph and the final serializability check are maintained by the same
//!   flip-diff scheme.
//!
//! Only the *completion overlay* — the operations Definition 8 appends for
//! the still-active processes — is rebuilt per event, from cached
//! [`crate::state::Completion`]s. Its size is bounded by the remaining work
//! of the active processes, so the per-event cost is `O(n/64)`-ish plus terms
//! in the overlay size and the conflict degree, instead of the batch
//! decider's full `O(n²)` per prefix.
//!
//! The certifier is **bit-for-bit compatible** with the batch pipeline
//! (`complete` + `reduce` per prefix): `check_pred_incremental` returns a
//! [`PredReport`] equal to [`crate::pred::check_pred`]'s, and the
//! differential property tests in `tests/properties.rs` drive both — plus
//! [`crate::reduction::reduce_exhaustive`] on small inputs — over random
//! histories. The batch decider remains the reference implementation.

use crate::error::ScheduleError;
use crate::ids::{GlobalActivityId, ProcessId, ServiceId};
use crate::pred::PredReport;
use crate::schedule::{Event, OpKind, Schedule};
use crate::spec::Spec;
use crate::state::{Completion, FailureOutcome, ProcessState};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

fn words_for(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

fn bit_get(row: &[u64], i: usize) -> bool {
    row.get(i / 64).is_some_and(|w| w & (1u64 << (i % 64)) != 0)
}

fn bit_set(row: &mut Vec<u64>, i: usize) {
    if row.len() <= i / 64 {
        row.resize(i / 64 + 1, 0);
    }
    row[i / 64] |= 1u64 << (i % 64);
}

fn or_into(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d |= *s;
    }
}

/// Dense process graph over a fixed, sorted pid universe. `plan` builds two
/// throwaway graphs per event over tens of thousands of pair entries; with
/// [`crate::serializability::ProcessGraph`] every edge costs a `BTreeSet`
/// insert, which dominated the per-event budget on long commit-heavy
/// histories. Here an edge is one bit. The Kahn traversal reproduces
/// `ProcessGraph::topological_order` exactly — FIFO queue seeded in
/// ascending pid order, successors visited in ascending pid order — because
/// the 8.3(d)/(f) ranks feed order-sensitive tie-breaks downstream.
struct DenseGraph {
    /// Sorted node universe; local index = position.
    pids: Vec<ProcessId>,
    words: usize,
    /// Row-major adjacency bitmap (`np × words`).
    adj: Vec<u64>,
    indeg: Vec<u32>,
}

impl DenseGraph {
    fn new(pids: Vec<ProcessId>) -> Self {
        debug_assert!(pids.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
        let np = pids.len();
        let words = words_for(np);
        DenseGraph {
            pids,
            words,
            adj: vec![0u64; np * words],
            indeg: vec![0u32; np],
        }
    }

    /// Adds an edge by local node index (position in the sorted universe);
    /// the hot loops pre-resolve indices once instead of binary-searching
    /// per edge.
    fn add_edge_idx(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let w = &mut self.adj[a * self.words + b / 64];
        let bit = 1u64 << (b % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.indeg[b] += 1;
        }
    }

    /// Topological order (FIFO Kahn in ascending-pid order, matching
    /// `ProcessGraph::topological_order`), or `None` if cyclic.
    fn topological_order(&self) -> Option<Vec<ProcessId>> {
        let np = self.pids.len();
        let mut indeg = self.indeg.clone();
        let mut queue: VecDeque<usize> = (0..np).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(np);
        while let Some(i) = queue.pop_front() {
            out.push(self.pids[i]);
            let row = &self.adj[i * self.words..(i + 1) * self.words];
            for (wi, &w) in row.iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let j = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        queue.push_back(j);
                    }
                }
            }
        }
        (out.len() == np).then_some(out)
    }

    fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }
}

/// Dense matrix of cross-process pair counters, keyed by the *dense
/// process index* assigned to each process when its first operation is
/// recorded ([`OrigOp::pidx`]). `counts[a * np + b]` counts pairs whose
/// earlier operation belongs to dense process `a` and later to `b`.
///
/// The certifier clones its pair counters on every planned event; as a
/// `BTreeMap<(ProcessId, ProcessId), u32>` that clone (plus the per-pair
/// lookups of the adjustment loops) dominated the whole certify budget on
/// commit-heavy 256-process histories. Here a clone is one `memcpy` and an
/// adjustment is one indexed add.
#[derive(Debug, Clone)]
struct PairCounts {
    np: usize,
    counts: Vec<u32>,
}

impl PairCounts {
    fn new(np: usize) -> Self {
        PairCounts {
            np,
            counts: vec![0u32; np * np],
        }
    }

    /// Clone with capacity for `np` processes (row re-layout only on the
    /// at-most-once-per-process growth step).
    fn grown(&self, np: usize) -> Self {
        if np == self.np {
            return self.clone();
        }
        debug_assert!(np > self.np);
        let mut counts = vec![0u32; np * np];
        for a in 0..self.np {
            counts[a * np..a * np + self.np]
                .copy_from_slice(&self.counts[a * self.np..(a + 1) * self.np]);
        }
        PairCounts { np, counts }
    }

    #[inline]
    fn inc(&mut self, a: u32, b: u32) {
        self.counts[a as usize * self.np + b as usize] += 1;
    }

    #[inline]
    fn dec(&mut self, a: u32, b: u32) {
        let e = &mut self.counts[a as usize * self.np + b as usize];
        debug_assert!(*e > 0, "pair count underflow");
        *e -= 1;
    }

    /// Dense-index pairs with a non-zero count.
    fn nonzero(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| ((i / self.np) as u32, (i % self.np) as u32))
    }
}

/// One operation of the recorded (original) history.
#[derive(Debug, Clone, Copy)]
struct OrigOp {
    gid: GlobalActivityId,
    service: ServiceId,
    kind: OpKind,
    /// Dense index of `gid.process` (see [`PairCounts`]).
    pidx: u32,
}

/// The operation a planned event appends to the original history.
#[derive(Debug, Clone)]
struct NewOp {
    gid: GlobalActivityId,
    service: ServiceId,
    kind: OpKind,
    eff_free: bool,
    /// Dense index of `gid.process` — the existing one, or the tentative
    /// next index if this op introduces the process (made real by `apply`).
    pidx: u32,
    /// `≪̃`-predecessor closure over the original operations.
    row: Vec<u64>,
}

/// A completion-overlay operation (rebuilt per event from cached
/// completions; cheap because the overlay only covers active processes).
#[derive(Debug, Clone, Copy)]
struct Cop {
    gid: GlobalActivityId,
    service: ServiceId,
    kind: OpKind,
    pid: ProcessId,
    eff_free: bool,
}

/// Everything [`IncrementalPred::plan`] derives for one event: the verdict
/// plus the state updates [`IncrementalPred::apply`] folds in. Planning is
/// pure — a rejected event leaves the certifier untouched.
#[derive(Clone)]
struct StepDelta<'a> {
    reducible: bool,
    states: BTreeMap<ProcessId, ProcessState<'a>>,
    commit: Option<ProcessId>,
    compensated: Option<GlobalActivityId>,
    new_op: Option<NewOp>,
    completion_updates: BTreeMap<ProcessId, Option<Completion>>,
    will_comp: BTreeSet<GlobalActivityId>,
    perm: Vec<bool>,
    live_base: Vec<bool>,
    m: PairCounts,
    m2: PairCounts,
}

/// Verdict for one planned or recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepVerdict {
    /// Length of the prefix the verdict covers (events, including this one).
    pub prefix_len: usize,
    /// Whether the extended prefix is reducible.
    pub reducible: bool,
}

/// Per-event outcome inside an epoch batch (see
/// [`IncrementalPred::record_epoch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochStep {
    /// Applied: the prefix extended by this event stays reducible.
    Accepted(StepVerdict),
    /// Planned but *not* applied: extending the accepted prefix by this
    /// event would break reducibility. Poisons the rest of the epoch.
    Rejected(StepVerdict),
    /// Illegal under the process state machines (the per-event API would
    /// return the matching [`ScheduleError`]); not applied, poisons the
    /// rest of the epoch.
    Illegal,
    /// Never examined: an earlier step poisoned the epoch. The caller
    /// degrades to per-event retry for skipped events.
    Skipped,
}

/// Verdict for a candidate epoch: per-event accept/reject plus the length
/// of the accepted prefix that was (or would be) folded in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochVerdict {
    /// One entry per submitted event, in submission order.
    pub steps: Vec<EpochStep>,
    /// Events of the accepted prefix (`steps[..accepted]` are all
    /// [`EpochStep::Accepted`]).
    pub accepted: usize,
    /// Whether a rejection or illegal event cut the epoch short. A poisoned
    /// epoch is not an error: the accepted prefix is valid, and the caller
    /// retries the remainder event by event.
    pub poisoned: bool,
}

impl EpochVerdict {
    /// Whether every submitted event was accepted.
    pub fn accepted_all(&self) -> bool {
        !self.poisoned
    }
}

/// A plan retained by [`IncrementalPred::certify_keep`]: the next
/// [`IncrementalPred::record`] (or [`IncrementalPred::record_epoch`]) of
/// the *same* event at the *same* prefix length folds the cached delta in
/// instead of re-planning, so an admitted event costs one closure /
/// `PairCounts` update instead of two (certify-then-lazy-record).
#[derive(Clone)]
struct CachedPlan<'a> {
    at_len: usize,
    event: Event,
    delta: StepDelta<'a>,
}

/// Incremental PRED certifier: answers "is this extended prefix still
/// reducible?" per appended event, maintaining the serialization/weak-order
/// closure, compensation-pair state and completion obligations across events.
///
/// `Clone` snapshots the whole certification state; [`Self::certify_epoch`]
/// uses one such snapshot per candidate batch so trial-applying `N` events
/// amortizes the closure/`PairCounts` copy across the epoch.
#[derive(Clone)]
pub struct IncrementalPred<'a> {
    spec: &'a Spec,
    len: usize,
    states: BTreeMap<ProcessId, ProcessState<'a>>,
    committed: BTreeSet<ProcessId>,
    // -- original operations and their ≪̃ closure --
    ops: Vec<OrigOp>,
    rows: Vec<Vec<u64>>,
    eff_free: Vec<bool>,
    /// Per base service: union of `rows[i] | {i}` over operations of that
    /// service (closure aggregate for O(words) row assembly).
    agg: BTreeMap<ServiceId, Vec<u64>>,
    buckets: BTreeMap<ServiceId, Vec<usize>>,
    proc_ops: BTreeMap<ProcessId, Vec<usize>>,
    last_of: BTreeMap<ProcessId, usize>,
    fwd_of: BTreeMap<GlobalActivityId, usize>,
    gid_ops: BTreeMap<GlobalActivityId, Vec<usize>>,
    comp_gids: BTreeSet<GlobalActivityId>,
    orig_comps: Vec<usize>,
    procs_with_ops: BTreeSet<ProcessId>,
    // -- permanence and liveness pair counters --
    perm: Vec<bool>,
    will_comp: BTreeSet<GlobalActivityId>,
    completion_cache: BTreeMap<ProcessId, Completion>,
    /// Dense index of every process with at least one operation, in
    /// first-operation order (index ↔ [`OrigOp::pidx`]).
    dense_pids: Vec<ProcessId>,
    pid_dense: BTreeMap<ProcessId, u32>,
    /// Permanent conflicting cross-process original pairs, keyed in history
    /// order (feeds the 8.3(d)/(f) mandatory-rank graph).
    m2: PairCounts,
    /// Rule-3-live conflicting cross-process original pairs, keyed in
    /// history order (feeds the final serializability graph).
    m: PairCounts,
    live_base: Vec<bool>,
    // -- report --
    prefix_reducible: Vec<bool>,
    first_violation: Option<usize>,
    /// Plan retained by `certify_keep` for the matching `record` (pure
    /// optimization: `apply(plan(e))` either way; invalidated by length or
    /// event mismatch).
    cache: Option<CachedPlan<'a>>,
    /// Applied events in application order — the certifier's durable form
    /// (see [`Self::snapshot`]).
    events: Vec<Event>,
}

/// Serializable image of an [`IncrementalPred`]: the applied event prefix.
///
/// The certifier is a pure fold over its event sequence, so its durable
/// form is the sequence itself and [`IncrementalPred::restore`] is a
/// replay — the same discipline the WAL uses for agents and history.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CertifierSnapshot {
    /// Events folded into the certifier, in application order.
    pub events: Vec<Event>,
}

fn touch<'a, 'b>(
    spec: &'a Spec,
    base: &BTreeMap<ProcessId, ProcessState<'a>>,
    touched: &'b mut BTreeMap<ProcessId, ProcessState<'a>>,
    pid: ProcessId,
) -> Result<&'b mut ProcessState<'a>, ScheduleError> {
    match touched.entry(pid) {
        std::collections::btree_map::Entry::Occupied(e) => Ok(e.into_mut()),
        std::collections::btree_map::Entry::Vacant(e) => {
            let st = match base.get(&pid) {
                Some(st) => st.clone(),
                None => {
                    let process = spec.process(pid)?;
                    ProcessState::new(process, &spec.catalog).map_err(|_| {
                        ScheduleError::Model(crate::error::ModelError::NotATree {
                            process: pid,
                            activity: crate::ids::ActivityId(0),
                        })
                    })?
                }
            };
            Ok(e.insert(st))
        }
    }
}

impl<'a> IncrementalPred<'a> {
    /// Creates a certifier for the empty history (which is reducible).
    pub fn new(spec: &'a Spec) -> Self {
        IncrementalPred {
            spec,
            len: 0,
            states: BTreeMap::new(),
            committed: BTreeSet::new(),
            ops: Vec::new(),
            rows: Vec::new(),
            eff_free: Vec::new(),
            agg: BTreeMap::new(),
            buckets: BTreeMap::new(),
            proc_ops: BTreeMap::new(),
            last_of: BTreeMap::new(),
            fwd_of: BTreeMap::new(),
            gid_ops: BTreeMap::new(),
            comp_gids: BTreeSet::new(),
            orig_comps: Vec::new(),
            procs_with_ops: BTreeSet::new(),
            perm: Vec::new(),
            will_comp: BTreeSet::new(),
            completion_cache: BTreeMap::new(),
            dense_pids: Vec::new(),
            pid_dense: BTreeMap::new(),
            m2: PairCounts::new(0),
            m: PairCounts::new(0),
            live_base: Vec::new(),
            prefix_reducible: vec![true],
            first_violation: None,
            cache: None,
            events: Vec::new(),
        }
    }

    /// Captures the certification state as a serializable snapshot.
    pub fn snapshot(&self) -> CertifierSnapshot {
        CertifierSnapshot {
            events: self.events.clone(),
        }
    }

    /// Rebuilds a certifier from a snapshot by replaying its prefix. The
    /// result answers every query (`pred`, `report`, `certify`, …) exactly
    /// as the snapshotted instance did.
    pub fn restore(spec: &'a Spec, snapshot: &CertifierSnapshot) -> Result<Self, ScheduleError> {
        let mut inc = Self::new(spec);
        for event in &snapshot.events {
            inc.record(event)?;
        }
        Ok(inc)
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every recorded prefix was reducible.
    pub fn pred(&self) -> bool {
        self.first_violation.is_none()
    }

    /// The shortest non-reducible recorded prefix, if any.
    pub fn first_violation(&self) -> Option<usize> {
        self.first_violation
    }

    /// Reducibility per recorded prefix length `0..=len`.
    pub fn prefix_reducible(&self) -> &[bool] {
        &self.prefix_reducible
    }

    /// The report over the recorded history, equal to
    /// [`crate::pred::check_pred`] of the same event sequence.
    pub fn report(&self) -> PredReport {
        PredReport {
            pred: self.first_violation.is_none(),
            prefix_reducible: self.prefix_reducible.clone(),
            first_violation: self.first_violation,
        }
    }

    /// Pure what-if: would the history extended by `event` still be
    /// reducible? Does not change the certifier.
    pub fn certify(&self, event: &Event) -> Result<StepVerdict, ScheduleError> {
        let delta = self.plan(event)?;
        Ok(StepVerdict {
            prefix_len: self.len + 1,
            reducible: delta.reducible,
        })
    }

    /// Like [`Self::certify`], but retains the planned delta: if the very
    /// next mutation records the same event at the same prefix length, the
    /// cached delta is folded in instead of re-planned. Admitting an event
    /// through `certify_keep` + `record` costs one closure/`PairCounts`
    /// update total, where `certify` + `record` pays two. Decisions are
    /// identical either way (`record` = `apply(plan(event))`, and planning
    /// is pure).
    pub fn certify_keep(&mut self, event: &Event) -> Result<StepVerdict, ScheduleError> {
        let delta = self.plan(event)?;
        let verdict = StepVerdict {
            prefix_len: self.len + 1,
            reducible: delta.reducible,
        };
        self.cache = Some(CachedPlan {
            at_len: self.len,
            event: event.clone(),
            delta,
        });
        Ok(verdict)
    }

    /// Takes the cached plan if it matches `event` at the current length.
    fn take_cached(&mut self, event: &Event) -> Option<StepDelta<'a>> {
        let hit = self
            .cache
            .as_ref()
            .is_some_and(|c| c.at_len == self.len && c.event == *event);
        if hit {
            self.cache.take().map(|c| c.delta)
        } else {
            None
        }
    }

    /// Records `event` as appended to the history and returns the verdict
    /// for the extended prefix.
    pub fn record(&mut self, event: &Event) -> Result<StepVerdict, ScheduleError> {
        let delta = match self.take_cached(event) {
            Some(delta) => delta,
            None => self.plan(event)?,
        };
        let reducible = delta.reducible;
        self.apply(delta);
        self.events.push(event.clone());
        Ok(StepVerdict {
            prefix_len: self.len,
            reducible,
        })
    }

    /// Records a candidate epoch: events are folded in, in submission
    /// order, until the first one whose extended prefix would not be
    /// reducible (or that is illegal). That event is *not* applied — it
    /// poisons the epoch, the remainder is skipped, and the caller degrades
    /// to per-event retry for the tail. PRED (Definition 10) is a property
    /// of *every* prefix, so each event still gets its own frontier
    /// verdict; the batch amortizes the bookkeeping around those verdicts,
    /// it never weakens them. The accepted deltas merge into the live dense
    /// matrices in one pass with no intermediate snapshots.
    pub fn record_epoch(&mut self, events: &[Event]) -> EpochVerdict {
        let mut steps = Vec::with_capacity(events.len());
        let mut accepted = 0usize;
        let mut poisoned = false;
        for event in events {
            if poisoned {
                steps.push(EpochStep::Skipped);
                continue;
            }
            let planned = match self.take_cached(event) {
                Some(delta) => Ok(delta),
                None => self.plan(event),
            };
            let delta = match planned {
                Ok(delta) => delta,
                Err(_) => {
                    poisoned = true;
                    steps.push(EpochStep::Illegal);
                    continue;
                }
            };
            let verdict = StepVerdict {
                prefix_len: self.len + 1,
                reducible: delta.reducible,
            };
            if delta.reducible {
                self.apply(delta);
                self.events.push(event.clone());
                accepted += 1;
                steps.push(EpochStep::Accepted(verdict));
            } else {
                poisoned = true;
                steps.push(EpochStep::Rejected(verdict));
            }
        }
        EpochVerdict {
            steps,
            accepted,
            poisoned,
        }
    }

    /// Pure what-if over a candidate batch: validates the epoch on one
    /// scratch snapshot of the certification state — a single
    /// closure/`PairCounts` copy amortized over the whole batch, instead of
    /// one copy per candidate — and reports per-event accept/reject without
    /// changing the certifier. `certify_epoch(&[e])` agrees with
    /// [`Self::certify`] on `e`, and the accepted prefix is exactly what
    /// [`Self::record_epoch`] would fold in.
    pub fn certify_epoch(&self, events: &[Event]) -> EpochVerdict {
        let mut scratch = self.clone();
        scratch.record_epoch(events)
    }

    /// Derives the verdict and state updates for one event without mutating
    /// the certifier. Mirrors `complete` + `reduce` on the extended prefix.
    fn plan(&self, event: &Event) -> Result<StepDelta<'a>, ScheduleError> {
        let spec = self.spec;
        let oracle = spec.oracle();
        let n_old = self.ops.len();

        // 1. Advance the touched process state machines (on clones),
        //    mirroring `Schedule::replay` including its error behaviour.
        let mut states: BTreeMap<ProcessId, ProcessState<'a>> = BTreeMap::new();
        let mut commit: Option<ProcessId> = None;
        let mut compensated: Option<GlobalActivityId> = None;
        let mut appended: Option<(GlobalActivityId, ServiceId, OpKind)> = None;
        match event {
            Event::Execute(g) => {
                let service = spec.catalog.base(spec.service_of(*g)?);
                touch(spec, &self.states, &mut states, g.process)?.apply_commit(g.activity)?;
                appended = Some((*g, service, OpKind::Forward));
            }
            Event::Fail(g) => {
                spec.service_of(*g)?;
                let outcome =
                    touch(spec, &self.states, &mut states, g.process)?.apply_failure(g.activity)?;
                if outcome == FailureOutcome::Stuck {
                    return Err(ScheduleError::NoAlternativeLeft(*g));
                }
            }
            Event::Compensate(g) => {
                let service = spec.catalog.base(spec.service_of(*g)?);
                touch(spec, &self.states, &mut states, g.process)?
                    .apply_compensation(g.activity)?;
                appended = Some((*g, service, OpKind::Compensation));
                compensated = Some(*g);
            }
            Event::Commit(p) => {
                touch(spec, &self.states, &mut states, *p)?.apply_process_commit()?;
                commit = Some(*p);
            }
            Event::Abort(p) => {
                touch(spec, &self.states, &mut states, *p)?.apply_process_abort()?;
            }
            Event::GroupAbort(ps) => {
                for p in ps {
                    let st = touch(spec, &self.states, &mut states, *p)?;
                    if st.is_active() {
                        st.apply_process_abort()?;
                    }
                }
            }
        }

        // 2. Closure row of the appended operation: chain predecessor plus
        //    the aggregates of every conflicting service (8.3a; same-process
        //    aggregate members are chain predecessors anyway).
        let new_op = appended.map(|(gid, service, kind)| {
            let mut row = vec![0u64; words_for(n_old)];
            if let Some(&prev) = self.last_of.get(&gid.process) {
                or_into(&mut row, &self.rows[prev]);
                bit_set(&mut row, prev);
            }
            for (s, bits) in &self.agg {
                if oracle.conflict(service, *s) {
                    or_into(&mut row, bits);
                }
            }
            NewOp {
                gid,
                service,
                kind,
                eff_free: spec.catalog.is_effect_free(service),
                pidx: self
                    .pid_dense
                    .get(&gid.process)
                    .copied()
                    .unwrap_or(self.dense_pids.len() as u32),
                row,
            }
        });
        // Pair-matrix dimension for this plan: every process with recorded
        // ops, plus the new op's process if it is introducing one.
        let np_plan = self
            .dense_pids
            .len()
            .max(new_op.as_ref().map_or(0, |o| o.pidx as usize + 1));
        let n_new = n_old + usize::from(new_op.is_some());
        let idx_new = n_old;
        let committed_now = |p: ProcessId| self.committed.contains(&p) || commit == Some(p);

        // 3. Completion caches of the touched processes, and the
        //    will-compensate delta they induce.
        let mut completion_updates: BTreeMap<ProcessId, Option<Completion>> = BTreeMap::new();
        let mut will_comp = self.will_comp.clone();
        let mut changed_gids: BTreeSet<GlobalActivityId> = BTreeSet::new();
        for (&pid, st) in &states {
            let next = st.is_active().then(|| st.completion());
            if let Some(old) = self.completion_cache.get(&pid) {
                for &a in &old.compensations {
                    let g = GlobalActivityId::new(pid, a);
                    if will_comp.remove(&g) {
                        changed_gids.insert(g);
                    }
                }
            }
            if let Some(next) = &next {
                for &a in &next.compensations {
                    let g = GlobalActivityId::new(pid, a);
                    if will_comp.insert(g) {
                        changed_gids.insert(g);
                    }
                }
            }
            completion_updates.insert(pid, next);
        }
        if let Some(g) = compensated {
            changed_gids.insert(g);
        }
        let comp_now =
            |g: &GlobalActivityId| self.comp_gids.contains(g) || compensated.as_ref() == Some(g);

        // 4. Permanence flips and the mandatory-pair counters (m2).
        let mut m2 = self.m2.grown(np_plan);
        let mut perm = self.perm.clone();
        for g in &changed_gids {
            for &i in self.gid_ops.get(g).map(Vec::as_slice).unwrap_or(&[]) {
                let target =
                    self.ops[i].kind == OpKind::Forward && !comp_now(g) && !will_comp.contains(g);
                if target == perm[i] {
                    continue;
                }
                let pi = self.ops[i].pidx;
                for (s, bucket) in &self.buckets {
                    if !oracle.conflict(self.ops[i].service, *s) {
                        continue;
                    }
                    for &j in bucket {
                        if j == i || !perm[j] || self.ops[j].pidx == pi {
                            continue;
                        }
                        let pj = self.ops[j].pidx;
                        let (a, b) = if i < j { (pi, pj) } else { (pj, pi) };
                        if target {
                            m2.inc(a, b);
                        } else {
                            m2.dec(a, b);
                        }
                    }
                }
                perm[i] = target;
            }
        }
        let perm_push = new_op.as_ref().is_some_and(|o| {
            o.kind == OpKind::Forward && !comp_now(&o.gid) && !will_comp.contains(&o.gid)
        });
        if let Some(o) = &new_op {
            if perm_push {
                for (s, bucket) in &self.buckets {
                    if !oracle.conflict(o.service, *s) {
                        continue;
                    }
                    for &j in bucket {
                        if perm[j] && self.ops[j].pidx != o.pidx {
                            m2.inc(self.ops[j].pidx, o.pidx);
                        }
                    }
                }
            }
        }

        // 5. Completion overlay, in the same order `complete` appends:
        //    processes ascending, compensations before forward recovery.
        let mut cops: Vec<Cop> = Vec::new();
        let mut cop_pids: BTreeSet<ProcessId> = self.completion_cache.keys().copied().collect();
        cop_pids.extend(completion_updates.keys().copied());
        for pid in cop_pids {
            let completion = match completion_updates.get(&pid) {
                Some(update) => update.as_ref(),
                None => self.completion_cache.get(&pid),
            };
            let Some(completion) = completion else {
                continue;
            };
            let process = spec.process(pid)?;
            for (&a, kind) in completion
                .compensations
                .iter()
                .map(|a| (a, OpKind::Compensation))
                .chain(completion.forward.iter().map(|a| (a, OpKind::Forward)))
            {
                let service = spec.catalog.base(process.service(a));
                cops.push(Cop {
                    gid: GlobalActivityId::new(pid, a),
                    service,
                    kind,
                    pid,
                    eff_free: spec.catalog.is_effect_free(service),
                });
            }
        }
        let cn = cops.len();
        let total = n_new + cn;
        let perm_cop =
            |c: &Cop| c.kind == OpKind::Forward && !comp_now(&c.gid) && !will_comp.contains(&c.gid);

        // 6. Mandatory ranks (8.3d/8.3f): permanent original pairs (m2) plus
        //    the forced 8.3e edges into permanent completion activities.
        //    Both process graphs of this step and step 10 share one node
        //    universe; extra isolated nodes cannot affect acyclicity, and the
        //    rank graph's node set is exactly this universe.
        let universe: Vec<ProcessId> = {
            let mut u: Vec<ProcessId> = self.procs_with_ops.iter().copied().collect();
            if let Some(o) = &new_op {
                u.push(o.gid.process);
            }
            u.extend(cops.iter().map(|c| c.pid));
            u.sort_unstable();
            u.dedup();
            u
        };
        // Pre-resolved universe indices: dense process index → universe
        // index, and one index per overlay op. The graph loops below add
        // thousands of edges per plan; resolving each endpoint by binary
        // search there dominated the graph budget.
        let gidx_of: Vec<usize> = (0..np_plan)
            .map(|px| {
                let pid = if px < self.dense_pids.len() {
                    self.dense_pids[px]
                } else {
                    new_op
                        .as_ref()
                        .expect("tentative index only exists with a new op")
                        .gid
                        .process
                };
                universe.binary_search(&pid).expect("pid in universe")
            })
            .collect();
        let cop_gidx: Vec<usize> = cops
            .iter()
            .map(|c| universe.binary_search(&c.pid).expect("pid in universe"))
            .collect();
        let mut rg = DenseGraph::new(universe.clone());
        for (a, b) in m2.nonzero() {
            rg.add_edge_idx(gidx_of[a as usize], gidx_of[b as usize]);
        }
        for (ci, c) in cops.iter().enumerate() {
            if !perm_cop(c) {
                continue;
            }
            for (s, bucket) in &self.buckets {
                if !oracle.conflict(*s, c.service) {
                    continue;
                }
                for &i in bucket {
                    if perm[i] && self.ops[i].gid.process != c.pid {
                        rg.add_edge_idx(gidx_of[self.ops[i].pidx as usize], cop_gidx[ci]);
                    }
                }
            }
            if let Some(o) = &new_op {
                if perm_push && o.gid.process != c.pid && oracle.conflict(o.service, c.service) {
                    rg.add_edge_idx(gidx_of[o.pidx as usize], cop_gidx[ci]);
                }
            }
        }
        // Rank per universe index (8.3d/8.3f). Relative order is all the
        // step-7 tie-breaks consume, so isolated universe nodes are harmless.
        let ranks_by_gidx: Vec<usize> = match rg.topological_order() {
            Some(order) => {
                let mut r = vec![0usize; universe.len()];
                for (rank, p) in order.iter().enumerate() {
                    r[universe.binary_search(p).expect("pid in universe")] = rank;
                }
                r
            }
            None => (0..universe.len()).collect(),
        };

        // 7. Order edges among the overlay operations (8.3b/c chains plus
        //    the 8.3d/f + Lemma 2/3 arms; overlay order equals the batch
        //    completion order, so local index order matches global order).
        let fwd_pos = |g: &GlobalActivityId| -> Option<usize> {
            if let Some(o) = &new_op {
                if o.kind == OpKind::Forward && o.gid == *g {
                    return Some(idx_new);
                }
            }
            self.fwd_of.get(g).copied()
        };
        let mut cedges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for ci in 1..cn {
            if cops[ci].pid == cops[ci - 1].pid {
                cedges.insert((ci - 1, ci));
            }
        }
        for i in 0..cn {
            for j in (i + 1)..cn {
                let (x, y) = (&cops[i], &cops[j]);
                if x.pid == y.pid || !oracle.conflict(x.service, y.service) {
                    continue;
                }
                let edge = match (x.kind, y.kind) {
                    (OpKind::Compensation, OpKind::Forward) => (i, j),
                    (OpKind::Forward, OpKind::Compensation) => (j, i),
                    (OpKind::Compensation, OpKind::Compensation) => {
                        match (fwd_pos(&x.gid), fwd_pos(&y.gid)) {
                            (Some(bx), Some(by)) if bx < by => (j, i),
                            _ => (i, j),
                        }
                    }
                    (OpKind::Forward, OpKind::Forward) => {
                        let rx = ranks_by_gidx[cop_gidx[i]];
                        let ry = ranks_by_gidx[cop_gidx[j]];
                        if (rx, x.pid) <= (ry, y.pid) {
                            (i, j)
                        } else {
                            (j, i)
                        }
                    }
                };
                cedges.insert(edge);
            }
        }

        // 8. Closure rows of the overlay, in topological order.
        let mut indeg = vec![0usize; cn];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); cn];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); cn];
        for &(a, b) in &cedges {
            indeg[b] += 1;
            succ[a].push(b);
            preds[b].push(a);
        }
        let mut queue: VecDeque<usize> = (0..cn).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(cn);
        while let Some(i) = queue.pop_front() {
            topo.push(i);
            for &j in &succ[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
        assert_eq!(topo.len(), cn, "≪̃ construction must stay acyclic");
        let first_flag: Vec<bool> = (0..cn)
            .map(|ci| ci == 0 || cops[ci].pid != cops[ci - 1].pid)
            .collect();
        let mut crows: Vec<Vec<u64>> = vec![Vec::new(); cn];
        for &ci in &topo {
            let c = &cops[ci];
            let mut row = vec![0u64; words_for(total)];
            if first_flag[ci] {
                let last = match &new_op {
                    Some(o) if o.gid.process == c.pid => Some(idx_new),
                    _ => self.last_of.get(&c.pid).copied(),
                };
                if let Some(l) = last {
                    match &new_op {
                        Some(o) if l == idx_new => or_into(&mut row, &o.row),
                        _ => or_into(&mut row, &self.rows[l]),
                    }
                    bit_set(&mut row, l);
                }
            }
            for (s, bits) in &self.agg {
                if oracle.conflict(*s, c.service) {
                    or_into(&mut row, bits);
                }
            }
            if let Some(o) = &new_op {
                if oracle.conflict(o.service, c.service) {
                    or_into(&mut row, &o.row);
                    bit_set(&mut row, idx_new);
                }
            }
            for &a in &preds[ci] {
                let prow = crows[a].clone();
                or_into(&mut row, &prow);
                bit_set(&mut row, n_new + a);
            }
            crows[ci] = row;
        }

        // 9. Reduction: rule 3 liveness, then the compensation-pair
        //    cancellation fixpoint over the bitset reachability.
        let mut live = vec![true; total];
        for ((lv, &ef), op) in live.iter_mut().zip(&self.eff_free).zip(&self.ops) {
            *lv = !ef || committed_now(op.gid.process);
        }
        if let Some(o) = &new_op {
            live[idx_new] = !o.eff_free || committed_now(o.gid.process);
        }
        for (ci, c) in cops.iter().enumerate() {
            live[n_new + ci] = !c.eff_free || committed_now(c.pid);
        }

        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for &c in &self.orig_comps {
            if let Some(f) = fwd_pos(&self.ops[c].gid) {
                pairs.push((f, c));
            }
        }
        if let Some(o) = &new_op {
            if o.kind == OpKind::Compensation {
                if let Some(f) = fwd_pos(&o.gid) {
                    pairs.push((f, idx_new));
                }
            }
        }
        for (ci, c) in cops.iter().enumerate() {
            if c.kind == OpKind::Compensation {
                if let Some(f) = fwd_pos(&c.gid) {
                    pairs.push((f, n_new + ci));
                }
            }
        }

        let nrow = new_op.as_ref().map(|o| &o.row);
        let row_of = |x: usize| -> &[u64] {
            if x < n_old {
                &self.rows[x]
            } else if x < n_new {
                nrow.expect("index n_old only exists with a new op")
            } else {
                &crows[x - n_new]
            }
        };
        let lt = |a: usize, b: usize| bit_get(row_of(b), a);
        let service_at = |x: usize| -> ServiceId {
            if x < n_old {
                self.ops[x].service
            } else if x < n_new {
                new_op.as_ref().expect("new op").service
            } else {
                cops[x - n_new].service
            }
        };
        let conflicting_with = |s: ServiceId| -> Vec<usize> {
            let mut out = Vec::new();
            for (s2, bucket) in &self.buckets {
                if oracle.conflict(*s2, s) {
                    out.extend_from_slice(bucket);
                }
            }
            if let Some(o) = &new_op {
                if oracle.conflict(o.service, s) {
                    out.push(idx_new);
                }
            }
            for (ci, c) in cops.iter().enumerate() {
                if oracle.conflict(c.service, s) {
                    out.push(n_new + ci);
                }
            }
            out
        };
        // The candidate list only depends on the service, and the fixpoint
        // revisits the same pairs every round — memoize per service rather
        // than rebuilding an O(history) vector per pair per round.
        let mut cw_cache: BTreeMap<ServiceId, Vec<usize>> = BTreeMap::new();
        loop {
            let mut changed = false;
            for &(f, c) in &pairs {
                if !live[f] || !live[c] {
                    continue;
                }
                let candidates = cw_cache
                    .entry(service_at(f))
                    .or_insert_with_key(|&s| conflicting_with(s));
                let blocked = candidates
                    .iter()
                    .any(|&k| k != f && k != c && live[k] && lt(f, k) && lt(k, c));
                if !blocked {
                    live[f] = false;
                    live[c] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // 10. Serializability of the remainder: rule-3 pair counters (m)
        //     adjusted for commit flips and the new operation, then with the
        //     cancelled operations subtracted, plus the overlay edges.
        let mut m = self.m.grown(np_plan);
        let mut live_base = self.live_base.clone();
        if let Some(p) = commit {
            for &i in self.proc_ops.get(&p).map(Vec::as_slice).unwrap_or(&[]) {
                if live_base[i] {
                    continue;
                }
                let pi = self.ops[i].pidx;
                for (s, bucket) in &self.buckets {
                    if !oracle.conflict(self.ops[i].service, *s) {
                        continue;
                    }
                    for &j in bucket {
                        if j == i || !live_base[j] || self.ops[j].pidx == pi {
                            continue;
                        }
                        let pj = self.ops[j].pidx;
                        let (a, b) = if i < j { (pi, pj) } else { (pj, pi) };
                        m.inc(a, b);
                    }
                }
                live_base[i] = true;
            }
        }
        let bl_new = new_op
            .as_ref()
            .is_some_and(|o| !o.eff_free || committed_now(o.gid.process));
        if let Some(o) = &new_op {
            if bl_new {
                for (s, bucket) in &self.buckets {
                    if !oracle.conflict(o.service, *s) {
                        continue;
                    }
                    for &j in bucket {
                        if live_base[j] && self.ops[j].pidx != o.pidx {
                            m.inc(self.ops[j].pidx, o.pidx);
                        }
                    }
                }
            }
        }

        let mut m_adj = m.clone();
        let mut removed = vec![false; n_new];
        for x in 0..n_new {
            let blx = if x < n_old { live_base[x] } else { bl_new };
            if !blx || live[x] {
                continue;
            }
            let (px, sx) = if x < n_old {
                (self.ops[x].pidx, self.ops[x].service)
            } else {
                let o = new_op.as_ref().expect("new op");
                (o.pidx, o.service)
            };
            for (s, bucket) in &self.buckets {
                if !oracle.conflict(sx, *s) {
                    continue;
                }
                for &j in bucket {
                    if j == x || removed[j] || !live_base[j] {
                        continue;
                    }
                    let pj = self.ops[j].pidx;
                    if pj == px {
                        continue;
                    }
                    let (a, b) = if x < j { (px, pj) } else { (pj, px) };
                    m_adj.dec(a, b);
                }
            }
            if let Some(o) = &new_op {
                let j = idx_new;
                if j != x && !removed[j] && bl_new && o.pidx != px && oracle.conflict(sx, o.service)
                {
                    m_adj.dec(px, o.pidx);
                }
            }
            removed[x] = true;
        }

        let mut pg = DenseGraph::new(universe);
        for (a, b) in m_adj.nonzero() {
            pg.add_edge_idx(gidx_of[a as usize], gidx_of[b as usize]);
        }
        for (ci, c) in cops.iter().enumerate() {
            if !live[n_new + ci] {
                continue;
            }
            for (s, bucket) in &self.buckets {
                if !oracle.conflict(*s, c.service) {
                    continue;
                }
                for &i in bucket {
                    if live[i] && self.ops[i].gid.process != c.pid {
                        pg.add_edge_idx(gidx_of[self.ops[i].pidx as usize], cop_gidx[ci]);
                    }
                }
            }
            if let Some(o) = &new_op {
                if live[idx_new] && o.gid.process != c.pid && oracle.conflict(o.service, c.service)
                {
                    pg.add_edge_idx(gidx_of[o.pidx as usize], cop_gidx[ci]);
                }
            }
        }
        for &(a, b) in &cedges {
            if cops[a].pid != cops[b].pid && live[n_new + a] && live[n_new + b] {
                pg.add_edge_idx(cop_gidx[a], cop_gidx[b]);
            }
        }
        let reducible = pg.is_acyclic();

        let mut perm_full = perm;
        let mut live_base_full = live_base;
        if new_op.is_some() {
            perm_full.push(perm_push);
            live_base_full.push(bl_new);
        }
        Ok(StepDelta {
            reducible,
            states,
            commit,
            compensated,
            new_op,
            completion_updates,
            will_comp,
            perm: perm_full,
            live_base: live_base_full,
            m,
            m2,
        })
    }

    /// Folds a planned delta into the certifier.
    fn apply(&mut self, delta: StepDelta<'a>) {
        self.len += 1;
        self.states.extend(delta.states);
        if let Some(p) = delta.commit {
            self.committed.insert(p);
        }
        if let Some(g) = delta.compensated {
            self.comp_gids.insert(g);
        }
        for (pid, update) in delta.completion_updates {
            match update {
                Some(c) => {
                    self.completion_cache.insert(pid, c);
                }
                None => {
                    self.completion_cache.remove(&pid);
                }
            }
        }
        self.will_comp = delta.will_comp;
        self.perm = delta.perm;
        self.live_base = delta.live_base;
        self.m = delta.m;
        self.m2 = delta.m2;
        if let Some(o) = delta.new_op {
            let idx = self.ops.len();
            let mut closure = o.row.clone();
            bit_set(&mut closure, idx);
            let agg = self.agg.entry(o.service).or_default();
            or_into(agg, &closure);
            self.buckets.entry(o.service).or_default().push(idx);
            self.proc_ops.entry(o.gid.process).or_default().push(idx);
            self.last_of.insert(o.gid.process, idx);
            self.gid_ops.entry(o.gid).or_default().push(idx);
            if o.kind == OpKind::Forward {
                self.fwd_of.insert(o.gid, idx);
            } else {
                self.orig_comps.push(idx);
            }
            self.procs_with_ops.insert(o.gid.process);
            // Make the tentative dense index real if this op introduced its
            // process (the planned matrices were sized for it already).
            if o.pidx as usize == self.dense_pids.len() {
                self.dense_pids.push(o.gid.process);
                self.pid_dense.insert(o.gid.process, o.pidx);
            }
            debug_assert_eq!(self.pid_dense.get(&o.gid.process), Some(&o.pidx));
            self.rows.push(o.row);
            self.eff_free.push(o.eff_free);
            self.ops.push(OrigOp {
                gid: o.gid,
                service: o.service,
                kind: o.kind,
                pidx: o.pidx,
            });
        }
        self.prefix_reducible.push(delta.reducible);
        if !delta.reducible && self.first_violation.is_none() {
            self.first_violation = Some(self.len);
        }
    }
}

/// Checks PRED by driving the incremental certifier over the history.
/// Agrees exactly (report and errors) with [`crate::pred::check_pred`].
pub fn check_pred_incremental(
    spec: &Spec,
    schedule: &Schedule,
) -> Result<PredReport, ScheduleError> {
    let mut certifier = IncrementalPred::new(spec);
    for event in schedule.events() {
        certifier.record(event)?;
    }
    Ok(certifier.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ids::ProcessId;
    use crate::pred::check_pred;

    fn st2(fx: &fixtures::PaperWorld) -> Schedule {
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(1, 2))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 3));
        s
    }

    fn figure7(fx: &fixtures::PaperWorld) -> Schedule {
        let mut s = Schedule::new();
        s.execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 1))
            .execute(fx.a(2, 5))
            .commit(ProcessId(2))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3));
        s
    }

    fn assert_parity(spec: &Spec, s: &Schedule) {
        let batch = check_pred(spec, s).expect("batch succeeds");
        let inc = check_pred_incremental(spec, s).expect("incremental succeeds");
        assert_eq!(
            batch,
            inc,
            "batch/incremental disagree on {}",
            crate::schedule::render(s)
        );
    }

    #[test]
    fn parity_on_example_8_st2() {
        let fx = fixtures::paper_world();
        assert_parity(&fx.spec, &st2(&fx));
        let report = check_pred_incremental(&fx.spec, &st2(&fx)).unwrap();
        assert!(!report.pred);
        assert_eq!(report.first_violation, Some(4));
    }

    #[test]
    fn parity_on_example_9_figure7() {
        let fx = fixtures::paper_world();
        assert_parity(&fx.spec, &figure7(&fx));
        assert!(
            check_pred_incremental(&fx.spec, &figure7(&fx))
                .unwrap()
                .pred
        );
    }

    #[test]
    fn parity_with_failures_and_compensations() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3))
            .fail(fx.a(1, 4))
            .compensate(fx.a(1, 3))
            .execute(fx.a(1, 5))
            .execute(fx.a(1, 6))
            .commit(ProcessId(1));
        assert_parity(&fx.spec, &s);
    }

    #[test]
    fn parity_with_abort_and_completion_events() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3))
            .abort(ProcessId(1))
            .compensate(fx.a(1, 3))
            .execute(fx.a(1, 5))
            .execute(fx.a(1, 6));
        assert_parity(&fx.spec, &s);
    }

    #[test]
    fn parity_with_group_abort() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1));
        for k in 1..=5 {
            s.execute(fx.a(2, k));
        }
        s.commit(ProcessId(2));
        s.group_abort(vec![ProcessId(1), ProcessId(2)]);
        assert_parity(&fx.spec, &s);
    }

    #[test]
    fn parity_on_quasi_commit_example_10() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(1, 2))
            .execute(fx.a(3, 1))
            .execute(fx.a(1, 3));
        assert_parity(&fx.spec, &s);
    }

    #[test]
    fn verdicts_match_batch_prefixes_event_by_event() {
        let fx = fixtures::paper_world();
        let s = st2(&fx);
        let batch = check_pred(&fx.spec, &s).unwrap();
        let mut certifier = IncrementalPred::new(&fx.spec);
        for (i, e) in s.events().iter().enumerate() {
            let v = certifier.record(e).unwrap();
            assert_eq!(v.prefix_len, i + 1);
            assert_eq!(
                v.reducible,
                batch.prefix_reducible[i + 1],
                "event {i}: verdict diverges"
            );
        }
    }

    #[test]
    fn certify_is_pure() {
        let fx = fixtures::paper_world();
        let s = figure7(&fx);
        let mut certifier = IncrementalPred::new(&fx.spec);
        for e in s.events() {
            let before = certifier.report();
            let what_if = certifier.certify(e).unwrap();
            assert_eq!(certifier.report(), before, "certify must not mutate");
            let recorded = certifier.record(e).unwrap();
            assert_eq!(what_if, recorded);
        }
    }

    #[test]
    fn illegal_event_errors_and_leaves_state_intact() {
        let fx = fixtures::paper_world();
        let mut certifier = IncrementalPred::new(&fx.spec);
        // a1_2 before a1_1 violates the precedence order.
        let bad = Event::Execute(fx.a(1, 2));
        assert!(certifier.record(&bad).is_err());
        assert_eq!(certifier.len(), 0);
        // The certifier still works afterwards.
        certifier.record(&Event::Execute(fx.a(1, 1))).unwrap();
        assert_eq!(certifier.len(), 1);
    }

    #[test]
    fn error_parity_with_batch() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1)).execute(fx.a(1, 3));
        let batch = check_pred(&fx.spec, &s);
        let inc = check_pred_incremental(&fx.spec, &s);
        assert!(batch.is_err());
        assert!(inc.is_err());
    }

    #[test]
    fn empty_history_is_pred() {
        let fx = fixtures::paper_world();
        let report = check_pred_incremental(&fx.spec, &Schedule::new()).unwrap();
        assert!(report.pred);
        assert_eq!(report.prefix_reducible, vec![true]);
    }

    #[test]
    fn first_violation_sticks() {
        let fx = fixtures::paper_world();
        let s = st2(&fx);
        let mut certifier = IncrementalPred::new(&fx.spec);
        for e in s.events() {
            certifier.record(e).unwrap();
        }
        assert_eq!(certifier.first_violation(), Some(4));
        assert!(!certifier.pred());
        // The final prefix itself is reducible (Example 6) …
        assert!(certifier.prefix_reducible().last().copied().unwrap());
        // … but the violation at prefix 4 is remembered.
        assert!(!certifier.prefix_reducible()[4]);
    }

    #[test]
    fn record_epoch_matches_sequential_record() {
        let fx = fixtures::paper_world();
        let s = figure7(&fx);
        let mut seq = IncrementalPred::new(&fx.spec);
        for e in s.events() {
            seq.record(e).unwrap();
        }
        let mut epoch = IncrementalPred::new(&fx.spec);
        let verdict = epoch.record_epoch(s.events());
        assert!(verdict.accepted_all());
        assert_eq!(verdict.accepted, s.events().len());
        for (i, step) in verdict.steps.iter().enumerate() {
            assert_eq!(
                *step,
                EpochStep::Accepted(StepVerdict {
                    prefix_len: i + 1,
                    reducible: true,
                })
            );
        }
        assert_eq!(epoch.report(), seq.report());
        assert_eq!(epoch.len(), seq.len());
    }

    #[test]
    fn snapshot_restore_matches_the_live_certifier() {
        let fx = fixtures::paper_world();
        for s in [st2(&fx), figure7(&fx)] {
            let mut live = IncrementalPred::new(&fx.spec);
            for e in s.events() {
                live.record(e).unwrap();
            }
            // Restore must behave like a fresh replay of the same prefix —
            // state, report, and every future certification answer.
            let snap = live.snapshot();
            let restored = IncrementalPred::restore(&fx.spec, &snap).unwrap();
            assert_eq!(restored.len(), live.len());
            assert_eq!(restored.report(), live.report());
            assert_eq!(restored.first_violation(), live.first_violation());
            for p in 1..=2u64 {
                for a in 1..=5u64 {
                    let probe = Event::Execute(fx.a(p as u32, a as u32));
                    match (live.certify(&probe), restored.certify(&probe)) {
                        (Ok(x), Ok(y)) => assert_eq!(x, y, "certify diverged on {probe:?}"),
                        (Err(_), Err(_)) => {}
                        other => panic!("certify diverged on {probe:?}: {other:?}"),
                    }
                }
            }
            // The snapshot is the durable form: it round-trips through JSON.
            let json = serde_json::to_string(&snap).unwrap();
            let back: CertifierSnapshot = serde_json::from_str(&json).unwrap();
            assert_eq!(back, snap);
            assert_eq!(
                IncrementalPred::restore(&fx.spec, &back).unwrap().report(),
                live.report()
            );
        }
    }

    #[test]
    fn poisoned_epoch_applies_accepted_prefix_only() {
        let fx = fixtures::paper_world();
        let s = st2(&fx); // prefix 4 is the first non-reducible one
        let mut epoch = IncrementalPred::new(&fx.spec);
        let verdict = epoch.record_epoch(s.events());
        assert!(verdict.poisoned);
        assert_eq!(verdict.accepted, 3);
        assert!(matches!(
            verdict.steps[3],
            EpochStep::Rejected(StepVerdict {
                prefix_len: 4,
                reducible: false,
            })
        ));
        assert!(verdict.steps[4..].iter().all(|s| *s == EpochStep::Skipped));
        // The certifier holds exactly the accepted prefix.
        let mut expect = IncrementalPred::new(&fx.spec);
        for e in &s.events()[..3] {
            expect.record(e).unwrap();
        }
        assert_eq!(epoch.len(), 3);
        assert_eq!(epoch.report(), expect.report());
        // Degradation: per-event retry of the rejected event still rejects
        // (certify sees the same state) — the driver keeps it blocked.
        assert!(!epoch.certify(&s.events()[3]).unwrap().reducible);
    }

    #[test]
    fn certify_epoch_is_pure_and_matches_record_epoch() {
        let fx = fixtures::paper_world();
        let s = st2(&fx);
        let mut base = IncrementalPred::new(&fx.spec);
        base.record(&s.events()[0]).unwrap();
        let before = base.report();
        let what_if = base.certify_epoch(&s.events()[1..]);
        assert_eq!(base.report(), before, "certify_epoch must not mutate");
        assert_eq!(base.len(), 1);
        let recorded = base.record_epoch(&s.events()[1..]);
        assert_eq!(what_if, recorded);
    }

    #[test]
    fn illegal_event_poisons_epoch_and_leaves_accepted_prefix() {
        let fx = fixtures::paper_world();
        let mut epoch = IncrementalPred::new(&fx.spec);
        // a1_3 after a1_1 skips a1_2: illegal under the precedence order.
        let batch = vec![
            Event::Execute(fx.a(1, 1)),
            Event::Execute(fx.a(1, 3)),
            Event::Execute(fx.a(1, 2)),
        ];
        let verdict = epoch.record_epoch(&batch);
        assert!(verdict.poisoned);
        assert_eq!(verdict.accepted, 1);
        assert_eq!(verdict.steps[1], EpochStep::Illegal);
        assert_eq!(verdict.steps[2], EpochStep::Skipped);
        assert_eq!(epoch.len(), 1);
        // The certifier still works afterwards.
        epoch.record(&Event::Execute(fx.a(1, 2))).unwrap();
        assert_eq!(epoch.len(), 2);
    }

    #[test]
    fn empty_epoch_is_accepted() {
        let fx = fixtures::paper_world();
        let mut certifier = IncrementalPred::new(&fx.spec);
        let verdict = certifier.record_epoch(&[]);
        assert!(verdict.accepted_all());
        assert!(verdict.steps.is_empty());
        assert_eq!(certifier.len(), 0);
    }

    #[test]
    fn certify_keep_then_record_matches_plain_record() {
        let fx = fixtures::paper_world();
        for s in [st2(&fx), figure7(&fx)] {
            let mut plain = IncrementalPred::new(&fx.spec);
            let mut kept = IncrementalPred::new(&fx.spec);
            for e in s.events() {
                let what_if = kept.certify_keep(e).unwrap();
                assert_eq!(what_if, plain.certify(e).unwrap());
                assert_eq!(kept.record(e).unwrap(), plain.record(e).unwrap());
                assert_eq!(kept.report(), plain.report());
            }
        }
    }

    #[test]
    fn stale_certify_keep_cache_is_ignored() {
        let fx = fixtures::paper_world();
        let a11 = Event::Execute(fx.a(1, 1));
        let a21 = Event::Execute(fx.a(2, 1));
        let a22 = Event::Execute(fx.a(2, 2));
        let mut kept = IncrementalPred::new(&fx.spec);
        let mut plain = IncrementalPred::new(&fx.spec);
        // Keep a plan for one event, then record a *different* one (the
        // certified candidate was never emitted): the cache must miss.
        kept.certify_keep(&a11).unwrap();
        assert_eq!(kept.record(&a21).unwrap(), plain.record(&a21).unwrap());
        // Keep again, record another event, then record the kept event at a
        // *later* length: the length check must reject the stale plan.
        kept.certify_keep(&a11).unwrap();
        assert_eq!(kept.record(&a22).unwrap(), plain.record(&a22).unwrap());
        assert_eq!(kept.record(&a11).unwrap(), plain.record(&a11).unwrap());
        assert_eq!(kept.report(), plain.report());
    }
}
