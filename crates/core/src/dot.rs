//! Graphviz (DOT) exporters for processes and schedules — handy for
//! inspecting process structures (Figure 2-style) and conflict graphs.

use crate::activity::Termination;
use crate::process::{Process, Successors};
use crate::schedule::Schedule;
use crate::serializability::process_graph_linear;
use crate::spec::Spec;
use std::fmt::Write as _;

/// Renders a process as a DOT digraph: solid edges for the precedence order
/// `≪`, dashed ranked edges for preference-ordered alternatives (the
/// notation of Figure 2).
pub fn process_to_dot(process: &Process, spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", process.name);
    let _ = writeln!(out, "  rankdir=LR;");
    for (id, def) in process.iter() {
        let termination = spec.catalog.termination(def.service);
        let (shape, superscript) = match termination {
            Termination::Compensatable => ("ellipse", "c"),
            Termination::Pivot => ("box", "p"),
            Termination::Retriable => ("diamond", "r"),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}^{superscript}\", shape={shape}];",
            id.0, def.name
        );
    }
    for (id, _) in process.iter() {
        match process.successors(id) {
            Successors::None => {}
            Successors::Seq(y) => {
                let _ = writeln!(out, "  n{} -> n{};", id.0, y.0);
            }
            Successors::Parallel(ys) => {
                for y in ys {
                    let _ = writeln!(out, "  n{} -> n{};", id.0, y.0);
                }
            }
            Successors::Alternatives(branches) => {
                for (rank, y) in branches.iter().enumerate() {
                    let style = if rank == 0 { "solid" } else { "dashed" };
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [style={style}, label=\"{}\"];",
                        id.0,
                        y.0,
                        rank + 1
                    );
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a schedule's process-level conflict graph as a DOT digraph
/// (the cycles of Figure 4(b) become visible immediately).
pub fn conflict_graph_to_dot(
    spec: &Spec,
    schedule: &Schedule,
) -> Result<String, crate::error::ScheduleError> {
    let ops = schedule.ops(spec)?;
    let graph = process_graph_linear(spec, &ops);
    let mut out = String::new();
    out.push_str("digraph conflicts {\n");
    for node in graph.nodes() {
        let _ = writeln!(out, "  p{} [label=\"P{}\"];", node.0, node.0);
    }
    for (a, b) in graph.edges() {
        let _ = writeln!(out, "  p{} -> p{};", a.0, b.0);
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn process_dot_contains_all_activities_and_alternatives() {
        let fx = fixtures::paper_world();
        let dot = process_to_dot(&fx.p1, &fx.spec);
        assert!(dot.starts_with("digraph"));
        for (_, def) in fx.p1.iter() {
            assert!(dot.contains(&def.name), "missing {}", def.name);
        }
        // The alternative edge a1_2 -> a1_5 is dashed with rank 2.
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("shape=box"), "pivots render as boxes");
        assert!(
            dot.contains("shape=diamond"),
            "retriables render as diamonds"
        );
    }

    #[test]
    fn conflict_graph_dot_shows_cycle_of_figure_4b() {
        let fx = fixtures::paper_world();
        let mut s = crate::schedule::Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 2));
        let dot = conflict_graph_to_dot(&fx.spec, &s).unwrap();
        assert!(dot.contains("p1 -> p2"));
        assert!(dot.contains("p2 -> p1"));
    }

    #[test]
    fn empty_schedule_conflict_graph() {
        let fx = fixtures::paper_world();
        let dot = conflict_graph_to_dot(&fx.spec, &crate::schedule::Schedule::new()).unwrap();
        assert!(dot.contains("digraph conflicts"));
    }
}
