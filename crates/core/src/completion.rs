//! Completed process schedules `S̃` (Definition 8, Figure 5).
//!
//! The completion construction makes recovery explicit: all processes that
//! did not commit in `S` are treated as aborted via a set-oriented group
//! abort appended at the end of the history, and each such process's abort is
//! replaced by the activities of its completion `𝒞(P_i)` — compensations of
//! local backward recovery followed by the retriable activities of the
//! forward recovery path. Unlike the *expanded* schedules of the traditional
//! unified theory, completions may introduce **new** activities (the forward
//! recovery path) and hence new conflicts (§3.5), which is why correctness of
//! transactional processes must always be judged on `S̃`.
//!
//! The ordering rules for completion activities follow Definition 8.3 and
//! the paper's Lemmas 2 and 3:
//!
//! * intra-process: completion activities follow the process's original
//!   activities, compensations before forward activities (8.3b, 8.3c),
//! * a completion activity follows every conflicting activity of the
//!   original history (8.3e — the group abort sits at the end of `S`),
//! * conflicting compensations of different processes run in reverse order
//!   of their base activities (Lemma 2),
//! * a conflicting (compensation, forward-recovery) pair runs compensation
//!   first (Lemma 3),
//! * conflicting forward-recovery activities of different processes follow
//!   the serialization order of `S` where one exists (8.3d/8.3f), with a
//!   deterministic tie-break otherwise.

use crate::error::ScheduleError;
use crate::ids::{GlobalActivityId, ProcessId};
use crate::order::PartialOrder;
use crate::schedule::{Op, OpKind, Schedule};
use crate::spec::Spec;
use std::collections::{BTreeMap, BTreeSet};

/// A completed process schedule `S̃`.
#[derive(Debug, Clone)]
pub struct CompletedSchedule {
    /// All operations: the original history's (in order), then the
    /// completion-added ones (`from_completion = true`).
    pub ops: Vec<Op>,
    /// The partial order `≪̃_S` over operation indices.
    pub order: PartialOrder,
    /// Processes that committed in the original history `S`.
    pub committed_in_s: BTreeSet<ProcessId>,
    /// Processes completed through (group) abort.
    pub aborted: BTreeSet<ProcessId>,
    /// Number of operations that stem from the original history.
    pub original_len: usize,
}

impl CompletedSchedule {
    /// Operations added by the completion construction.
    pub fn completion_ops(&self) -> &[Op] {
        &self.ops[self.original_len..]
    }
}

/// Builds the completed process schedule `S̃` of a history (Definition 8).
pub fn complete(spec: &Spec, schedule: &Schedule) -> Result<CompletedSchedule, ScheduleError> {
    let replay = schedule.replay(spec)?;
    let committed_in_s: BTreeSet<ProcessId> = replay.commit_event.keys().copied().collect();
    let mut ops: Vec<Op> = replay.ops.clone();
    let original_len = ops.len();
    let mut aborted: BTreeSet<ProcessId> = replay.abort_event.keys().copied().collect();

    // 8.2b/8.2c: group-abort all active processes and append the remaining
    // completion activities of every process that did not commit.
    let event_base = schedule.len();
    for (&pid, state) in &replay.states {
        if !state.is_active() {
            continue;
        }
        aborted.insert(pid);
        let completion = state.completion();
        let process = spec.process(pid)?;
        for &a in &completion.compensations {
            let service = spec.catalog.base(process.service(a));
            let index = ops.len();
            ops.push(Op {
                index,
                event_index: event_base + (index - original_len),
                gid: GlobalActivityId::new(pid, a),
                service,
                kind: OpKind::Compensation,
                from_completion: true,
            });
        }
        for &a in &completion.forward {
            let service = spec.catalog.base(process.service(a));
            let index = ops.len();
            ops.push(Op {
                index,
                event_index: event_base + (index - original_len),
                gid: GlobalActivityId::new(pid, a),
                service,
                kind: OpKind::Forward,
                from_completion: true,
            });
        }
    }

    // Permanence analysis: which operations survive every reduction? An
    // operation is *permanent* when it will never cancel against a
    // compensation — forward operations of committed processes, pre-boundary
    // operations of forward-recoverable processes, and the forward recovery
    // activities themselves. Permanent operations induce the mandatory
    // ordering constraints that the 8.3(d)/(f) choices below must respect.
    let mut permanent = vec![false; ops.len()];
    {
        let mut compensated_in_s: BTreeSet<GlobalActivityId> = BTreeSet::new();
        for op in &ops[..original_len] {
            if op.kind == OpKind::Compensation {
                compensated_in_s.insert(op.gid);
            }
        }
        let mut will_compensate: BTreeSet<GlobalActivityId> = BTreeSet::new();
        for op in &ops[original_len..] {
            if op.kind == OpKind::Compensation {
                will_compensate.insert(op.gid);
            }
        }
        for op in &ops {
            permanent[op.index] = op.kind == OpKind::Forward
                && !compensated_in_s.contains(&op.gid)
                && !will_compensate.contains(&op.gid);
        }
    }

    let order = build_order(spec, &ops, original_len, &permanent);
    Ok(CompletedSchedule {
        ops,
        order,
        committed_in_s,
        aborted,
        original_len,
    })
}

/// Builds `≪̃_S` (Definition 8.3).
fn build_order(spec: &Spec, ops: &[Op], original_len: usize, permanent: &[bool]) -> PartialOrder {
    let oracle = spec.oracle();
    let mut po = PartialOrder::new(ops.len());

    // 8.3a/8.3b/8.3c: per-process chains — original execution order, then
    // completion activities in completion order.
    let mut per_process: BTreeMap<ProcessId, Vec<usize>> = BTreeMap::new();
    for op in ops {
        per_process
            .entry(op.gid.process)
            .or_default()
            .push(op.index);
    }
    for chain in per_process.values() {
        for w in chain.windows(2) {
            po.add(w[0], w[1]);
        }
    }

    // 8.3a: conflicting pairs of the original history keep their order.
    for i in 0..original_len {
        for j in (i + 1)..original_len {
            if ops[i].gid.process != ops[j].gid.process
                && oracle.conflict(ops[i].service, ops[j].service)
            {
                po.add(i, j);
            }
        }
    }

    // 8.3e: every completion activity follows the conflicting activities of
    // the original history (the group abort sits at the end of S).
    for (j, cop) in ops.iter().enumerate().skip(original_len) {
        for (i, sop) in ops.iter().enumerate().take(original_len) {
            if sop.gid.process != cop.gid.process && oracle.conflict(sop.service, cop.service) {
                po.add(i, j);
            }
        }
        let _ = j;
    }

    // 8.3d/8.3f + Lemmas 2 and 3: conflicting completion activities of
    // different processes.
    // Base-activity position lookup for Lemma 2's reverse ordering.
    let base_pos: BTreeMap<(GlobalActivityId, OpKind), usize> =
        ops.iter().map(|o| ((o.gid, o.kind), o.index)).collect();
    // Ranks for ordering conflicting forward-recovery activities of
    // different processes (8.3d/8.3f): derived from the *mandatory* process
    // dependencies — conflicting permanent operation pairs of the original
    // history, plus the forced 8.3(e) edges from permanent original
    // operations to permanent completion activities. Any 8.3(d) choice must
    // be consistent with these or the completion is needlessly irreducible.
    let ranks = mandatory_ranks(spec, ops, original_len, permanent);
    for i in original_len..ops.len() {
        for j in (i + 1)..ops.len() {
            let (x, y) = (&ops[i], &ops[j]);
            if x.gid.process == y.gid.process || !oracle.conflict(x.service, y.service) {
                continue;
            }
            let edge = match (x.kind, y.kind) {
                // Lemma 3: compensation precedes conflicting forward
                // recovery.
                (OpKind::Compensation, OpKind::Forward) => (i, j),
                (OpKind::Forward, OpKind::Compensation) => (j, i),
                // Lemma 2: compensations in reverse order of their bases.
                (OpKind::Compensation, OpKind::Compensation) => {
                    let bx = base_pos.get(&(x.gid, OpKind::Forward)).copied();
                    let by = base_pos.get(&(y.gid, OpKind::Forward)).copied();
                    match (bx, by) {
                        (Some(bx), Some(by)) if bx < by => (j, i),
                        (Some(_), Some(_)) => (i, j),
                        _ => (i, j),
                    }
                }
                // 8.3d/8.3f: forward-recovery activities follow the
                // serialization order of S.
                (OpKind::Forward, OpKind::Forward) => {
                    let rx = ranks.get(&x.gid.process).copied().unwrap_or(usize::MAX);
                    let ry = ranks.get(&y.gid.process).copied().unwrap_or(usize::MAX);
                    if (rx, x.gid.process) <= (ry, y.gid.process) {
                        (i, j)
                    } else {
                        (j, i)
                    }
                }
            };
            po.add(edge.0, edge.1);
        }
    }
    debug_assert!(po.is_acyclic(), "≪̃_S construction must stay acyclic");
    po
}

/// Process ranks from the mandatory dependency graph (see `build_order`);
/// falls back to process-id order when that graph is cyclic (the completion
/// is irreducible regardless of the 8.3(d) choices then).
fn mandatory_ranks(
    spec: &Spec,
    ops: &[Op],
    original_len: usize,
    permanent: &[bool],
) -> BTreeMap<ProcessId, usize> {
    let oracle = spec.oracle();
    let mut g = crate::serializability::ProcessGraph::new();
    for op in ops {
        g.add_node(op.gid.process);
    }
    for (i, x) in ops.iter().enumerate() {
        if !permanent[i] {
            continue;
        }
        for (j, y) in ops.iter().enumerate().skip(i + 1) {
            if !permanent[j]
                || x.gid.process == y.gid.process
                || !oracle.conflict(x.service, y.service)
            {
                continue;
            }
            let both_original = i < original_len && j < original_len;
            let forced_8_3e = i < original_len && j >= original_len;
            if both_original || forced_8_3e {
                g.add_edge(x.gid.process, y.gid.process);
            }
        }
    }
    match g.topological_order() {
        Some(order) => order.into_iter().enumerate().map(|(r, p)| (p, r)).collect(),
        None => g.nodes().enumerate().map(|(r, p)| (p, r)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ids::ActivityId;

    fn st2(fx: &fixtures::PaperWorld) -> Schedule {
        // Figure 4(a) at t2.
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(1, 2))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 3));
        s
    }

    #[test]
    fn example_5_completion_activities() {
        // Example 5: Ã_St2 adds {a1_3⁻¹, a1_5, a1_6} for P₁ and {a2_5} for
        // P₂ to the seven activities of S_t2.
        let fx = fixtures::paper_world();
        let completed = complete(&fx.spec, &st2(&fx)).unwrap();
        assert_eq!(completed.original_len, 7);
        assert_eq!(completed.ops.len(), 11);
        let added: Vec<String> = completed
            .completion_ops()
            .iter()
            .map(|o| o.to_string())
            .collect();
        assert!(added.contains(&"a1_2⁻¹".to_string())); // a1_3⁻¹ (0-based a1_2)
        assert!(added.contains(&"a1_4".to_string())); // a1_5
        assert!(added.contains(&"a1_5".to_string())); // a1_6
        assert!(added.contains(&"a2_4".to_string())); // a2_5
        assert_eq!(completed.aborted.len(), 2);
        assert!(completed.committed_in_s.is_empty());
    }

    #[test]
    fn example_5_order_constraints() {
        // ≪̃ of Example 5: a1_3 ≪ a1_3⁻¹ ≪ a1_5 ≪ a1_6, a2_4 ≪ a2_5, and
        // a1_5 ≪ a2_5 (forward-recovery conflict ordered by serialization
        // order P₁ before P₂).
        let fx = fixtures::paper_world();
        let completed = complete(&fx.spec, &st2(&fx)).unwrap();
        let reach = completed.order.reachability();
        let find = |name: &str| {
            completed
                .ops
                .iter()
                .find(|o| o.to_string() == name)
                .unwrap_or_else(|| panic!("op {name} not found"))
                .index
        };
        let a13 = find("a1_2"); // forward a1_3 (0-based display)
        let a13_inv = find("a1_2⁻¹");
        let a15 = find("a1_4");
        let a16 = find("a1_5");
        let a24 = find("a2_3");
        let a25 = find("a2_4");
        assert!(reach.lt(a13, a13_inv));
        assert!(reach.lt(a13_inv, a15));
        assert!(reach.lt(a15, a16));
        assert!(reach.lt(a24, a25));
        assert!(reach.lt(a15, a25), "Lemma/8.3d: a1_5 ≪̃ a2_5");
    }

    #[test]
    fn committed_processes_add_nothing() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        for k in 1..=5 {
            s.execute(fx.a(2, k));
        }
        s.commit(ProcessId(2));
        let completed = complete(&fx.spec, &s).unwrap();
        assert_eq!(completed.completion_ops().len(), 0);
        assert!(completed.committed_in_s.contains(&ProcessId(2)));
        assert!(completed.aborted.is_empty());
    }

    #[test]
    fn brec_process_completes_with_pure_compensation() {
        // Example 8 / Figure 8: completing S_t1 compensates a1_1 while P₂
        // runs its forward recovery path.
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4));
        let completed = complete(&fx.spec, &s).unwrap();
        let added: Vec<String> = completed
            .completion_ops()
            .iter()
            .map(|o| o.to_string())
            .collect();
        assert!(added.contains(&"a1_0⁻¹".to_string())); // a1_1⁻¹
        assert!(added.contains(&"a2_4".to_string())); // a2_5 forward recovery
                                                      // The conflict cycle of Example 8: a1_1 ≪ a2_1 ≪ a1_1⁻¹.
        let reach = completed.order.reachability();
        let a11 = completed
            .ops
            .iter()
            .find(|o| o.gid == fx.a(1, 1) && o.kind == OpKind::Forward)
            .unwrap()
            .index;
        let a21 = completed
            .ops
            .iter()
            .find(|o| o.gid == fx.a(2, 1))
            .unwrap()
            .index;
        let a11_inv = completed
            .ops
            .iter()
            .find(|o| o.kind == OpKind::Compensation)
            .unwrap()
            .index;
        assert!(reach.lt(a11, a21));
        assert!(reach.lt(a21, a11_inv));
    }

    #[test]
    fn completion_of_empty_schedule_is_empty() {
        let fx = fixtures::paper_world();
        let completed = complete(&fx.spec, &Schedule::new()).unwrap();
        assert!(completed.ops.is_empty());
        assert!(completed.order.is_empty());
    }

    #[test]
    fn mid_recovery_prefix_completion_includes_pending_compensations() {
        // Cut right after a failure: the queued compensations must appear in
        // the completion.
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3))
            .fail(fx.a(1, 4));
        let completed = complete(&fx.spec, &s).unwrap();
        let comp_ops: Vec<_> = completed
            .completion_ops()
            .iter()
            .filter(|o| o.kind == OpKind::Compensation)
            .collect();
        assert_eq!(comp_ops.len(), 1);
        assert_eq!(comp_ops[0].gid.activity, ActivityId(2));
        // Forward recovery continues with a1_5, a1_6.
        let fwd: Vec<_> = completed
            .completion_ops()
            .iter()
            .filter(|o| o.kind == OpKind::Forward)
            .map(|o| o.gid.activity)
            .collect();
        assert_eq!(fwd, vec![ActivityId(4), ActivityId(5)]);
    }

    #[test]
    fn lemma2_reverse_order_of_conflicting_compensations() {
        // Two processes whose compensatable activities conflict; both abort.
        // The compensations must appear in reverse order of the originals.
        use crate::activity::Catalog;
        use crate::conflict::ConflictMatrix;
        use crate::process::ProcessBuilder;
        let mut cat = Catalog::new();
        let (w1, _) = cat.compensatable("w1");
        let (w2, _) = cat.compensatable("w2");
        let mut m = ConflictMatrix::new(&cat);
        m.declare_conflict(&cat, w1, w2).unwrap();
        let mut b = ProcessBuilder::new(ProcessId(1), "X");
        let x0 = b.activity("x0", w1);
        let _ = x0;
        let px = b.build(&cat).unwrap();
        let mut b = ProcessBuilder::new(ProcessId(2), "Y");
        let y0 = b.activity("y0", w2);
        let _ = y0;
        let py = b.build(&cat).unwrap();
        let mut spec = Spec::new(cat, m);
        spec.add_process(px);
        spec.add_process(py);
        let mut s = Schedule::new();
        s.execute(GlobalActivityId::new(ProcessId(1), ActivityId(0)));
        s.execute(GlobalActivityId::new(ProcessId(2), ActivityId(0)));
        let completed = complete(&spec, &s).unwrap();
        let reach = completed.order.reachability();
        let cx = completed
            .ops
            .iter()
            .find(|o| o.kind == OpKind::Compensation && o.gid.process == ProcessId(1))
            .unwrap()
            .index;
        let cy = completed
            .ops
            .iter()
            .find(|o| o.kind == OpKind::Compensation && o.gid.process == ProcessId(2))
            .unwrap()
            .index;
        // Originals: x0 before y0 ⇒ compensations y0⁻¹ before x0⁻¹.
        assert!(reach.lt(cy, cx));
    }
}
