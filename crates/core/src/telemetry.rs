//! Low-overhead runtime telemetry: a metrics registry of atomic counters,
//! gauges and log₂ histograms, plus scoped phase timers for the scheduler's
//! hot paths.
//!
//! The paper's claim is quantitative — the unified scheduler admits more
//! concurrency than locking at bounded decision cost — so the runtime must be
//! able to answer *where wall time goes*: certification vs. policy decisions
//! vs. shard lock wait vs. run-queue residency vs. the 2PC prepare→decide gap
//! vs. compensation. This module decomposes metrics the same way the
//! architecture decomposes (certifier / policy / shard / worker / 2PC), per
//! the level-by-level analyzability argument of multi-level transaction
//! control.
//!
//! Design mirrors [`crate::trace`]'s `NoopSink` discipline: a [`Telemetry`]
//! handle is either *off* (the default — every operation is one predictable
//! branch on an `Option`, no clock reads, no allocation) or *on* (an
//! `Arc<Registry>` of plain atomics; recording a phase duration is two
//! `fetch_add`s and one bucket increment, lock-free). Drivers thread the
//! handle through their hot paths and call [`Telemetry::phase_ns`] with
//! durations they already measure, or bracket new regions with
//! [`Telemetry::phase_start`] / [`Telemetry::phase_end`] (which read the
//! clock only when enabled).
//!
//! Exports: [`Registry::snapshot`] produces a consistent-at-quiescence
//! [`Snapshot`] that serializes to JSON (shim serde) and renders to the
//! Prometheus text exposition format via [`prometheus_text`].

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log₂ histogram buckets. Matches
/// `txproc_sim::metrics::SCHED_DELAY_BUCKETS` — bucket 0 holds exact zeros,
/// bucket `i ≥ 1` holds values `v` with `⌊log₂ v⌋ = i`, and the last bucket
/// absorbs everything larger.
pub const HIST_BUCKETS: usize = 40;

/// Bucket index for a nanosecond value (log₂ bucketing, 0 stays in bucket 0).
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Upper edge (inclusive, in ns) of histogram bucket `i`: 0 for bucket 0,
/// `2^(i+1)` otherwise. The resolution quantiles are reported at.
#[inline]
pub fn bucket_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << ((i + 1).min(63))
    }
}

/// The instrumented scheduler phases — one scoped timer per architectural
/// layer, so the per-phase wall breakdown decomposes the same way the system
/// does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// PRED certification: `IncrementalPred::certify`/`record` (or the batch
    /// checker) on one candidate event, including closure maintenance.
    Certify,
    /// Protocol policy decisions: `request` / `can_commit` / compensation and
    /// forward gates (Lemmas 1–3 admission logic).
    Policy,
    /// Waiting to acquire a shard's state lock (concurrent driver).
    LockWait,
    /// Holding a shard's state lock, condvar wait time excluded.
    LockHold,
    /// Run-queue residency: dequeue time minus enqueue time (events runtime).
    QueueDelay,
    /// Deferred-2PC gap: activity *prepared* → commit decided (released or
    /// aborted), the paper's §4 window.
    TwoPc,
    /// Compensation execution at the subsystem (backward recovery).
    Compensation,
    /// Epoch fill at close time. Samples are *event counts per epoch*, not
    /// nanoseconds: the log₂ histogram shows how full epochs are when the
    /// size-N / deadline / conflict-pressure close conditions fire.
    EpochFill,
    /// Latency of one epoch flush: the batched trace/journal append plus
    /// group-commit round, one sample per closed epoch.
    EpochFlush,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 9] = [
        Phase::Certify,
        Phase::Policy,
        Phase::LockWait,
        Phase::LockHold,
        Phase::QueueDelay,
        Phase::TwoPc,
        Phase::Compensation,
        Phase::EpochFill,
        Phase::EpochFlush,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case label (used in exports and the bench schema).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Certify => "certify",
            Phase::Policy => "policy",
            Phase::LockWait => "lock_wait",
            Phase::LockHold => "lock_hold",
            Phase::QueueDelay => "queue_delay",
            Phase::TwoPc => "two_pc",
            Phase::Compensation => "compensation",
            Phase::EpochFill => "epoch_fill",
            Phase::EpochFlush => "epoch_flush",
        }
    }

    /// Dense index into the registry's phase table.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One phase's accumulator: sample count, summed nanoseconds, log₂ histogram.
#[derive(Debug)]
struct PhaseCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl PhaseCell {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// Instrument kind, for export typing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
}

struct Instrument {
    name: String,
    labels: Vec<(String, String)>,
    kind: Kind,
    cell: Arc<AtomicU64>,
}

/// A monotone counter handle. Cheap to clone; a no-op when telemetry is off.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.cell {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle (last-set value wins). Cheap to clone; no-op when off.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to at least `v` (peak tracking).
    #[inline]
    pub fn raise(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// The metrics registry: a fixed table of phase accumulators plus named,
/// labelled counters and gauges registered on demand. All hot-path writes are
/// relaxed atomics; registration takes a mutex and is expected at setup time
/// (per shard / per worker), not per event.
pub struct Registry {
    start: Instant,
    phases: [PhaseCell; Phase::COUNT],
    instruments: Mutex<Vec<Instrument>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    fn new() -> Self {
        Self {
            start: Instant::now(),
            phases: std::array::from_fn(|_| PhaseCell::new()),
            instruments: Mutex::new(Vec::new()),
        }
    }

    /// Record one `ns` sample for `phase`.
    #[inline]
    pub fn record_phase(&self, phase: Phase, ns: u64) {
        self.phases[phase.index()].record(ns);
    }

    fn instrument(&self, name: &str, labels: &[(&str, String)], kind: Kind) -> Arc<AtomicU64> {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let mut g = self.instruments.lock().expect("registry poisoned");
        if let Some(existing) = g
            .iter()
            .find(|i| i.kind == kind && i.name == name && i.labels == labels)
        {
            return Arc::clone(&existing.cell);
        }
        let cell = Arc::new(AtomicU64::new(0));
        g.push(Instrument {
            name: name.to_string(),
            labels,
            kind,
            cell: Arc::clone(&cell),
        });
        cell
    }

    /// Consistent-at-quiescence snapshot of every instrument. Safe to call
    /// concurrently with writers (the sampler does); mid-flight reads may see
    /// a histogram one sample behind its count.
    pub fn snapshot(&self) -> Snapshot {
        let phases = Phase::ALL
            .iter()
            .map(|&p| {
                let cell = &self.phases[p.index()];
                let buckets: Vec<u64> = cell
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                let count = cell.count.load(Ordering::Relaxed);
                PhaseSnapshot {
                    phase: p.name().to_string(),
                    count,
                    total_ns: cell.total_ns.load(Ordering::Relaxed),
                    p50_ns: hist_percentile(&buckets, 0.50).unwrap_or(0),
                    p95_ns: hist_percentile(&buckets, 0.95).unwrap_or(0),
                    max_ns: buckets
                        .iter()
                        .rposition(|&n| n > 0)
                        .map(bucket_edge)
                        .unwrap_or(0),
                    buckets,
                }
            })
            .collect();
        let instruments = self
            .instruments
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|i| InstrumentSnapshot {
                name: i.name.clone(),
                labels: i.labels.clone(),
                kind: match i.kind {
                    Kind::Counter => "counter".to_string(),
                    Kind::Gauge => "gauge".to_string(),
                },
                value: i.cell.load(Ordering::Relaxed),
            })
            .collect();
        Snapshot {
            wall_ns: self.start.elapsed().as_nanos() as u64,
            phases,
            instruments,
        }
    }
}

/// Percentile over a log₂ histogram, resolved to the bucket's upper edge.
/// `None` on an empty histogram. Monotone in `q` by construction.
pub fn hist_percentile(buckets: &[u64], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen > rank {
            return Some(bucket_edge(i));
        }
    }
    Some(bucket_edge(buckets.len() - 1))
}

/// The cheap, cloneable driver-facing handle: either off (default, near-zero
/// cost — one branch per call site, no clock reads) or on (shared
/// [`Registry`]).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    reg: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A disabled handle. Every operation is a single `Option` branch.
    pub fn off() -> Self {
        Self { reg: None }
    }

    /// A fresh enabled handle with its own registry.
    pub fn on() -> Self {
        Self {
            reg: Some(Arc::new(Registry::new())),
        }
    }

    /// Whether a registry is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.reg.is_some()
    }

    /// The registry, when enabled (for samplers and exporters).
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.reg.as_ref()
    }

    /// Start a phase timer: reads the clock only when enabled. Pair with
    /// [`Telemetry::phase_end`].
    #[inline]
    pub fn phase_start(&self) -> Option<Instant> {
        if self.reg.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close a timer opened by [`Telemetry::phase_start`].
    #[inline]
    pub fn phase_end(&self, phase: Phase, t0: Option<Instant>) {
        if let (Some(reg), Some(t0)) = (&self.reg, t0) {
            reg.record_phase(phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Record an externally measured duration for `phase` — the entry point
    /// for call sites that already compute the duration (shard lock wait,
    /// run-queue residency).
    #[inline]
    pub fn phase_ns(&self, phase: Phase, ns: u64) {
        if let Some(reg) = &self.reg {
            reg.record_phase(phase, ns);
        }
    }

    /// Register (or look up) a labelled counter. Disabled handles return a
    /// no-op counter.
    pub fn counter(&self, name: &str, labels: &[(&str, String)]) -> Counter {
        Counter {
            cell: self
                .reg
                .as_ref()
                .map(|r| r.instrument(name, labels, Kind::Counter)),
        }
    }

    /// Register (or look up) a labelled gauge. Disabled handles return a
    /// no-op gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, String)]) -> Gauge {
        Gauge {
            cell: self
                .reg
                .as_ref()
                .map(|r| r.instrument(name, labels, Kind::Gauge)),
        }
    }

    /// Snapshot the registry (`None` when disabled).
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.reg.as_ref().map(|r| r.snapshot())
    }
}

/// Point-in-time state of one phase accumulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    /// Phase label ([`Phase::name`]).
    pub phase: String,
    /// Number of samples.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Median sample, at log₂-bucket resolution (upper edge).
    pub p50_ns: u64,
    /// 95th-percentile sample, at log₂-bucket resolution.
    pub p95_ns: u64,
    /// Upper edge of the highest non-empty bucket.
    pub max_ns: u64,
    /// The raw log₂ buckets ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

/// Point-in-time value of one named instrument.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentSnapshot {
    /// Instrument name (unprefixed; exports prepend `txproc_`).
    pub name: String,
    /// Label set, e.g. `[("shard", "3")]`.
    pub labels: Vec<(String, String)>,
    /// `"counter"` or `"gauge"`.
    pub kind: String,
    /// Current value.
    pub value: u64,
}

/// A full registry snapshot: every phase and every named instrument, stamped
/// with wall time since the registry was created.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Nanoseconds since registry creation.
    pub wall_ns: u64,
    /// Per-phase accumulators, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseSnapshot>,
    /// Named counters and gauges, in registration order.
    pub instruments: Vec<InstrumentSnapshot>,
}

impl Snapshot {
    /// The phase entry by label, if present.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseSnapshot> {
        self.phases.iter().find(|p| p.phase == phase.name())
    }
}

fn label_str(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Render a [`Snapshot`] in the Prometheus text exposition format (version
/// 0.0.4): `# TYPE` comments, `_bucket`/`_sum`/`_count` histogram triples
/// with cumulative `le` edges, and one sample line per instrument.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP txproc_uptime_ns Nanoseconds since the telemetry registry was created.\n");
    out.push_str("# TYPE txproc_uptime_ns gauge\n");
    out.push_str(&format!("txproc_uptime_ns {}\n", snap.wall_ns));

    out.push_str("# HELP txproc_phase_duration_ns Scheduler phase durations (log2 buckets).\n");
    out.push_str("# TYPE txproc_phase_duration_ns histogram\n");
    for p in &snap.phases {
        let mut cum = 0u64;
        for (i, &n) in p.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            out.push_str(&format!(
                "txproc_phase_duration_ns_bucket{{phase=\"{}\",le=\"{}\"}} {cum}\n",
                p.phase,
                bucket_edge(i)
            ));
        }
        out.push_str(&format!(
            "txproc_phase_duration_ns_bucket{{phase=\"{}\",le=\"+Inf\"}} {}\n",
            p.phase, p.count
        ));
        out.push_str(&format!(
            "txproc_phase_duration_ns_sum{{phase=\"{}\"}} {}\n",
            p.phase, p.total_ns
        ));
        out.push_str(&format!(
            "txproc_phase_duration_ns_count{{phase=\"{}\"}} {}\n",
            p.phase, p.count
        ));
    }

    let mut typed: Vec<&str> = Vec::new();
    for i in &snap.instruments {
        let full = format!("txproc_{}", i.name);
        if !typed.contains(&i.name.as_str()) {
            typed.push(&i.name);
            out.push_str(&format!("# TYPE {full} {}\n", i.kind));
        }
        out.push_str(&format!("{full}{} {}\n", label_str(&i.labels), i.value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        assert!(t.phase_start().is_none());
        t.phase_end(Phase::Certify, None);
        t.phase_ns(Phase::Policy, 1234);
        let c = t.counter("events_total", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn bucketing_matches_log2_and_edges_are_monotone() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for i in 1..HIST_BUCKETS {
            assert!(bucket_edge(i) > bucket_edge(i - 1));
        }
    }

    #[test]
    fn phase_records_land_in_snapshot() {
        let t = Telemetry::on();
        t.phase_ns(Phase::Certify, 100);
        t.phase_ns(Phase::Certify, 200);
        let t0 = t.phase_start();
        t.phase_end(Phase::Policy, t0);
        let snap = t.snapshot().unwrap();
        let cert = snap.phase(Phase::Certify).unwrap();
        assert_eq!(cert.count, 2);
        assert_eq!(cert.total_ns, 300);
        assert_eq!(cert.buckets.iter().sum::<u64>(), cert.count);
        assert_eq!(snap.phase(Phase::Policy).unwrap().count, 1);
        assert_eq!(snap.phase(Phase::TwoPc).unwrap().count, 0);
    }

    #[test]
    fn instruments_dedupe_by_name_and_labels() {
        let t = Telemetry::on();
        let a = t.counter("events_total", &[("shard", "0".to_string())]);
        let b = t.counter("events_total", &[("shard", "0".to_string())]);
        let other = t.counter("events_total", &[("shard", "1".to_string())]);
        a.inc();
        b.inc();
        other.add(5);
        let snap = t.snapshot().unwrap();
        let vals: Vec<u64> = snap
            .instruments
            .iter()
            .filter(|i| i.name == "events_total")
            .map(|i| i.value)
            .collect();
        assert_eq!(vals, vec![2, 5]);
    }

    #[test]
    fn snapshot_is_consistent_under_concurrent_writers() {
        let t = Telemetry::on();
        let threads = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let t = t.clone();
                thread::spawn(move || {
                    let c = t.counter("events_total", &[("worker", w.to_string())]);
                    for i in 0..per {
                        c.inc();
                        t.phase_ns(Phase::Certify, i);
                        // Interleave a mid-flight snapshot: must never panic
                        // and histogram mass must never exceed... (skew of at
                        // most in-flight writers is allowed either way).
                        if i % 4096 == 0 {
                            let _ = t.snapshot();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot().unwrap();
        let total: u64 = snap
            .instruments
            .iter()
            .filter(|i| i.name == "events_total")
            .map(|i| i.value)
            .sum();
        assert_eq!(total, threads as u64 * per);
        let cert = snap.phase(Phase::Certify).unwrap();
        assert_eq!(cert.count, threads as u64 * per);
        assert_eq!(cert.buckets.iter().sum::<u64>(), cert.count);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let t = Telemetry::on();
        for ns in [1u64, 5, 50, 500, 5_000, 50_000, 500_000] {
            for _ in 0..10 {
                t.phase_ns(Phase::QueueDelay, ns);
            }
        }
        let snap = t.snapshot().unwrap();
        let p = snap.phase(Phase::QueueDelay).unwrap();
        assert!(p.p50_ns <= p.p95_ns, "p50 {} > p95 {}", p.p50_ns, p.p95_ns);
        assert!(p.p95_ns <= p.max_ns, "p95 {} > max {}", p.p95_ns, p.max_ns);
        let q: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| hist_percentile(&p.buckets, q).unwrap())
            .collect();
        for w in q.windows(2) {
            assert!(w[0] <= w[1], "percentiles not monotone: {q:?}");
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let t = Telemetry::on();
        t.phase_ns(Phase::Certify, 777);
        let g = t.gauge("run_queue_depth", &[("shard", "2".to_string())]);
        g.set(9);
        let snap = t.snapshot().unwrap();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let t = Telemetry::on();
        t.phase_ns(Phase::Certify, 100);
        t.phase_ns(Phase::Certify, 100_000);
        t.counter("events_total", &[("shard", "0".to_string())])
            .add(3);
        t.gauge("run_queue_depth", &[("shard", "0".to_string())])
            .set(2);
        let text = prometheus_text(&t.snapshot().unwrap());
        assert!(text.contains("# TYPE txproc_phase_duration_ns histogram"));
        assert!(text.contains("txproc_phase_duration_ns_bucket{phase=\"certify\",le=\"+Inf\"} 2"));
        assert!(text.contains("txproc_phase_duration_ns_sum{phase=\"certify\"} 100100"));
        assert!(text.contains("txproc_events_total{shard=\"0\"} 3"));
        assert!(text.contains("# TYPE txproc_events_total counter"));
        assert!(text.contains("# TYPE txproc_run_queue_depth gauge"));
        // Every sample line: `name{labels} value` with a numeric value and
        // cumulative bucket counts per phase.
        let mut last_bucket: Option<(String, u64)> = None;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            let name = metric.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            if let Some(rest) = metric.strip_prefix("txproc_phase_duration_ns_bucket{") {
                let phase = rest.split('"').nth(1).unwrap().to_string();
                let v: u64 = value.parse().unwrap();
                if let Some((last_phase, last_v)) = &last_bucket {
                    if *last_phase == phase {
                        assert!(v >= *last_v, "buckets not cumulative in {line:?}");
                    }
                }
                last_bucket = Some((phase, v));
            }
        }
    }
}
