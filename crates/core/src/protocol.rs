//! The online scheduling protocol implied by the PRED criterion
//! (Lemmas 1–3, §3.5): the pure decision core used by the
//! `txproc-engine` scheduler.
//!
//! The protocol tracks, across all concurrent processes:
//!
//! * the executed operations and the conflict-dependency edges they induce,
//! * which operations are *stable* — they can never be compensated anymore
//!   because a later non-compensatable activity of the same process committed
//!   (the "quasi-commit" of §3.5 / Example 10),
//! * which non-compensatable activities executed under deferred commit
//!   (prepared at their subsystem, to be committed atomically via 2PC once
//!   the blocking predecessors terminate — Lemma 1.1 and §3.5).
//!
//! Scheduling obligations enforced:
//!
//! 1. **Serializability** — an activity whose conflict edges would close a
//!    cycle is rejected.
//! 2. **Lemma 1.2** — an activity conflicting with a *non-stable* operation
//!    of an active process must be compensatable; a non-compensatable
//!    activity in that situation executes with deferred commit (or waits,
//!    depending on [`DeferPolicy`]).
//! 3. **Lemma 1.1 / Definition 11.1** — a process may only commit after all
//!    processes it conflict-depends on terminated; deferred activity commits
//!    are released (atomically) at that point.
//! 4. **Cascading aborts** — when a process aborts, every dependent process
//!    that conflicts with a compensated operation, or with the aborting
//!    process's forward-recovery activities, is aborted too; victims are
//!    reported in reverse dependency order so their completions respect
//!    Lemmas 2 and 3.

use crate::ids::{GlobalActivityId, ProcessId, ServiceId};
use crate::spec::Spec;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How the scheduler handles a non-compensatable activity that conflicts
/// with an active predecessor (Lemma 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeferPolicy {
    /// Execute the activity but defer its subsystem commit via 2PC (§3.5).
    PrepareAndDefer,
    /// Do not execute the activity until the predecessors terminated.
    DeferExecution,
}

/// Scheduling decision for a requested activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Execute and commit at the subsystem immediately.
    Allow,
    /// Execute, but keep the subsystem transaction prepared; the commit is
    /// released when the listed processes terminate (Lemma 1.1).
    AllowDeferred {
        /// Active processes whose termination releases the commit.
        blockers: Vec<ProcessId>,
    },
    /// Do not execute yet; retry after the listed processes terminate.
    Wait {
        /// Active processes blocking execution.
        blockers: Vec<ProcessId>,
    },
    /// Executing now would close a serializability cycle; the process should
    /// abort (or the request must be abandoned).
    Reject {
        /// A process on the offending cycle.
        conflicting: ProcessId,
    },
}

/// Lifecycle of a process as seen by the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtStatus {
    /// Executing (possibly running its completion).
    Active,
    /// Terminated with commit.
    Committed,
    /// Terminated by abort (completion fully executed).
    Aborted,
}

/// One executed operation as tracked by the protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ExecRecord {
    gid: GlobalActivityId,
    /// Base service (perfect commutativity).
    service: ServiceId,
    /// Whether a compensating activity has undone this operation.
    compensated: bool,
    /// Whether the operation can never be compensated anymore.
    stable: bool,
    /// Whether the subsystem commit is still deferred (prepared).
    deferred: bool,
    /// Whether the service is compensatable (base termination).
    compensatable: bool,
}

/// Gate decision for a completion activity (§3.5: "the completed process
/// schedule has always to be considered"). Compensations must run in reverse
/// order of their conflicting originals (Lemma 2) and before conflicting
/// forward-recovery activities (Lemma 3); conflicting live operations of
/// other processes either block the completion step or force a cascade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionGate {
    /// The completion activity may execute now.
    Ready,
    /// Wait until the listed (aborting) processes compensated their
    /// conflicting operations.
    WaitFor(Vec<ProcessId>),
    /// The listed active processes hold conflicting operations that would
    /// make the completion irreducible; they must be cascade-aborted first.
    Cascade(Vec<ProcessId>),
}

/// The protocol state machine (single-threaded core; the engine wraps it in
/// a lock).
#[derive(Debug, Clone)]
pub struct Protocol<'a> {
    spec: &'a Spec,
    policy: DeferPolicy,
    ops: Vec<ExecRecord>,
    /// Conflict-dependency edges `P_i → P_j`.
    edges: BTreeSet<(ProcessId, ProcessId)>,
    status: BTreeMap<ProcessId, ProtStatus>,
    /// Per process: activities executed under deferred commit.
    deferred: BTreeMap<ProcessId, Vec<GlobalActivityId>>,
    /// Processes currently executing their completion (abort in progress).
    aborting: BTreeSet<ProcessId>,
}

impl<'a> Protocol<'a> {
    /// Creates an empty protocol state.
    pub fn new(spec: &'a Spec, policy: DeferPolicy) -> Self {
        Self {
            spec,
            policy,
            ops: Vec::new(),
            edges: BTreeSet::new(),
            status: BTreeMap::new(),
            deferred: BTreeMap::new(),
            aborting: BTreeSet::new(),
        }
    }

    /// Registers a newly admitted process.
    pub fn register(&mut self, pid: ProcessId) {
        self.status.insert(pid, ProtStatus::Active);
    }

    /// Status of a process (unknown processes are reported active).
    pub fn status(&self, pid: ProcessId) -> ProtStatus {
        self.status.get(&pid).copied().unwrap_or(ProtStatus::Active)
    }

    /// Current dependency edges.
    pub fn edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.edges.iter().copied()
    }

    /// Deferred (prepared) activities of a process.
    pub fn deferred_of(&self, pid: ProcessId) -> &[GlobalActivityId] {
        self.deferred.get(&pid).map(Vec::as_slice).unwrap_or(&[])
    }

    fn is_active(&self, pid: ProcessId) -> bool {
        self.status(pid) == ProtStatus::Active
    }

    /// Whether `from` can reach `to` through dependency edges.
    fn reaches(&self, from: ProcessId, to: ProcessId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            for &(a, b) in &self.edges {
                if a == p {
                    if b == to {
                        return true;
                    }
                    stack.push(b);
                }
            }
        }
        false
    }

    /// Processes (≠ `pid`) holding a live conflicting operation against
    /// `service`, with the stability of the newest conflicting operation.
    fn conflicting_predecessors(
        &self,
        pid: ProcessId,
        service: ServiceId,
    ) -> BTreeMap<ProcessId, bool> {
        let oracle = self.spec.oracle();
        let mut preds: BTreeMap<ProcessId, bool> = BTreeMap::new();
        for rec in &self.ops {
            if rec.gid.process == pid || rec.compensated {
                continue;
            }
            if oracle.conflict(rec.service, service) {
                let entry = preds.entry(rec.gid.process).or_insert(true);
                *entry = *entry && rec.stable;
            }
        }
        preds
    }

    /// Decides whether process `pid` may now execute the activity `gid`
    /// invoking `service`.
    pub fn request(&self, pid: ProcessId, service: ServiceId) -> Admission {
        let preds = self.conflicting_predecessors(pid, service);
        // Serializability: adding P_i → P_j must not close a cycle.
        for &pi in preds.keys() {
            if !self.edges.contains(&(pi, pid)) && self.reaches(pid, pi) {
                return Admission::Reject { conflicting: pi };
            }
        }
        // A conflict with a non-stable operation of an *aborting* process
        // would land between that operation and its imminent compensation —
        // the Example 8 cycle. Wait until the compensation ran.
        let oracle = self.spec.oracle();
        let due_compensation: Vec<ProcessId> = self
            .ops
            .iter()
            .filter(|r| {
                r.gid.process != pid
                    && !r.compensated
                    && !r.stable
                    && self.aborting.contains(&r.gid.process)
                    && oracle.conflict(r.service, self.spec.catalog.base(service))
            })
            .map(|r| r.gid.process)
            .collect();
        if !due_compensation.is_empty() {
            let mut blockers = due_compensation;
            blockers.sort();
            blockers.dedup();
            return Admission::Wait { blockers };
        }
        let compensatable = self
            .spec
            .catalog
            .termination(self.spec.catalog.base(service))
            .is_compensatable();
        if compensatable {
            return Admission::Allow;
        }
        // Lemma 1.1: *every* non-compensatable activity of P_j may only
        // commit after the commit of each active P_i that P_j conflict-
        // depends on — whether the dependency comes from this activity or an
        // earlier one. Blockers include quasi-committed (stable) conflicts
        // too: Lemma 1.1 defers on C_i, not on stability.
        let mut blockers: BTreeSet<ProcessId> = preds
            .keys()
            .copied()
            .filter(|&pi| self.is_active(pi))
            .collect();
        for &(pi, pj) in &self.edges {
            if pj == pid && self.is_active(pi) {
                blockers.insert(pi);
            }
        }
        let blockers: Vec<ProcessId> = blockers.into_iter().collect();
        if blockers.is_empty() {
            return Admission::Allow;
        }
        match self.policy {
            DeferPolicy::PrepareAndDefer => Admission::AllowDeferred { blockers },
            DeferPolicy::DeferExecution => Admission::Wait { blockers },
        }
    }

    /// Records an executed forward activity. `deferred` mirrors the
    /// [`Admission::AllowDeferred`] decision.
    pub fn record_executed(&mut self, gid: GlobalActivityId, deferred: bool) {
        let pid = gid.process;
        self.status.entry(pid).or_insert(ProtStatus::Active);
        let service = self
            .spec
            .catalog
            .base(self.spec.service_of(gid).expect("validated activity"));
        let compensatable = self.spec.catalog.termination(service).is_compensatable();
        // Dependency edges from every conflicting predecessor.
        let preds = self.conflicting_predecessors(pid, service);
        for &pi in preds.keys() {
            self.edges.insert((pi, pid));
        }
        // A committed non-compensatable activity stabilizes every earlier
        // operation of the same process (quasi-commit, §3.5).
        let stabilizes = !compensatable && !deferred;
        if stabilizes {
            for rec in &mut self.ops {
                if rec.gid.process == pid {
                    rec.stable = true;
                }
            }
        }
        self.ops.push(ExecRecord {
            gid,
            service,
            compensated: false,
            stable: stabilizes,
            deferred,
            compensatable,
        });
        if deferred {
            self.deferred.entry(pid).or_default().push(gid);
        }
    }

    /// Records the compensation of a previously executed activity.
    pub fn record_compensated(&mut self, gid: GlobalActivityId) {
        if let Some(rec) = self
            .ops
            .iter_mut()
            .rev()
            .find(|r| r.gid == gid && !r.compensated)
        {
            debug_assert!(!rec.stable, "stable operations are never compensated");
            rec.compensated = true;
        }
    }

    /// Whether `pid` may commit: all processes it depends on have terminated
    /// (Definition 11.1) and it has no deferred activities left unreleased.
    pub fn can_commit(&self, pid: ProcessId) -> Result<(), Vec<ProcessId>> {
        let blockers: Vec<ProcessId> = self
            .edges
            .iter()
            .filter(|&&(pi, pj)| pj == pid && self.is_active(pi))
            .map(|&(pi, _)| pi)
            .collect();
        if blockers.is_empty() {
            Ok(())
        } else {
            Err(blockers)
        }
    }

    /// Records the commit of a process; returns, per dependent process, the
    /// deferred activities whose subsystem commits may now be released
    /// **atomically** (2PC) because their last active blocker terminated.
    pub fn record_process_commit(
        &mut self,
        pid: ProcessId,
    ) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.status.insert(pid, ProtStatus::Committed);
        // Every operation of a committed process is final.
        for rec in &mut self.ops {
            if rec.gid.process == pid {
                rec.stable = !rec.compensated;
            }
        }
        self.collect_releasable()
    }

    /// Releasable deferred commits: processes whose active blockers are gone.
    fn collect_releasable(&mut self) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        let mut out = Vec::new();
        let pids: Vec<ProcessId> = self.deferred.keys().copied().collect();
        for pj in pids {
            if !self.is_active(pj) {
                continue;
            }
            let blocked = self
                .edges
                .iter()
                .any(|&(pi, p)| p == pj && self.is_active(pi));
            if !blocked {
                let acts = self.deferred.remove(&pj).unwrap_or_default();
                if !acts.is_empty() {
                    out.push((pj, acts));
                }
            }
        }
        out
    }

    /// Records that a deferred (prepared) activity was aborted before its
    /// commit was released: it leaves no effects and stops participating in
    /// conflicts.
    pub fn record_prepared_aborted(&mut self, gid: GlobalActivityId) {
        for rec in &mut self.ops {
            if rec.gid == gid && rec.deferred {
                rec.compensated = true;
                rec.deferred = false;
            }
        }
        if let Some(list) = self.deferred.get_mut(&gid.process) {
            list.retain(|&g| g != gid);
            if list.is_empty() {
                self.deferred.remove(&gid.process);
            }
        }
    }

    /// Marks a deferred activity as released (subsystem commit executed).
    /// Stabilizes the process's earlier operations like a direct commit.
    pub fn record_deferred_released(&mut self, gid: GlobalActivityId) {
        let pid = gid.process;
        let mut found = false;
        for rec in &mut self.ops {
            if rec.gid == gid {
                rec.deferred = false;
                found = true;
            }
        }
        if found {
            // Stabilize everything up to and including the released op.
            let mut hit = false;
            for rec in self.ops.iter_mut().rev() {
                if rec.gid == gid {
                    hit = true;
                }
                if hit && rec.gid.process == pid && !rec.compensated {
                    rec.stable = true;
                }
            }
        }
        if let Some(list) = self.deferred.get_mut(&pid) {
            list.retain(|&g| g != gid);
            if list.is_empty() {
                self.deferred.remove(&pid);
            }
        }
    }

    /// Plans a process abort: which dependent processes must cascade.
    ///
    /// `compensating` are the operations the aborting process will
    /// compensate; `forward_services` the (base) services of its forward
    /// recovery path. A dependent `P_j` cascades when it conflicts with a
    /// compensated operation (the Example 8 cycle) or with a forward
    /// recovery activity while `P_i → P_j` exists (Theorem 1, cases 1/3).
    /// Victims are returned in reverse dependency order (dependents first)
    /// so that completions respect Lemma 2.
    pub fn plan_abort(
        &self,
        pid: ProcessId,
        compensating: &[GlobalActivityId],
        forward_services: &[ServiceId],
    ) -> Vec<ProcessId> {
        let oracle = self.spec.oracle();
        let comp_services: Vec<ServiceId> = compensating
            .iter()
            .map(|g| {
                self.spec
                    .catalog
                    .base(self.spec.service_of(*g).expect("validated"))
            })
            .collect();
        let mut victims: BTreeSet<ProcessId> = BTreeSet::new();
        let mut frontier = vec![(pid, comp_services, forward_services.to_vec())];
        while let Some((pi, comps, fwds)) = frontier.pop() {
            for &(a, b) in &self.edges {
                if a != pi || !self.is_active(b) || b == pid || victims.contains(&b) {
                    continue;
                }
                // Does P_b conflict with anything P_a will compensate or
                // forward-execute?
                let pb_conflicts = self.ops.iter().any(|r| {
                    r.gid.process == b
                        && !r.compensated
                        && comps
                            .iter()
                            .chain(fwds.iter())
                            .any(|&s| oracle.conflict(r.service, s))
                });
                if pb_conflicts {
                    victims.insert(b);
                    // The victim's own completion cascades further; its
                    // compensations cover its non-stable operations.
                    let victim_comps: Vec<ServiceId> = self
                        .ops
                        .iter()
                        .filter(|r| r.gid.process == b && !r.compensated && !r.stable)
                        .map(|r| r.service)
                        .collect();
                    frontier.push((b, victim_comps, Vec::new()));
                }
            }
        }
        // Reverse dependency order: dependents (later in the serialization)
        // first.
        let mut ordered: Vec<ProcessId> = victims.into_iter().collect();
        ordered.sort_by(|&x, &y| {
            if self.reaches(x, y) && x != y {
                std::cmp::Ordering::Greater
            } else if self.reaches(y, x) && x != y {
                std::cmp::Ordering::Less
            } else {
                y.cmp(&x)
            }
        });
        ordered
    }

    /// Debug dump of the tracked operation records.
    pub fn debug_ops(&self) -> String {
        let mut out = String::new();
        for r in &self.ops {
            out.push_str(&format!(
                "{} svc={} comp'd={} stable={} deferred={}\n",
                r.gid, r.service, r.compensated, r.stable, r.deferred
            ));
        }
        out
    }

    /// Marks a process as aborting: its completion is about to execute.
    /// Until [`record_process_abort`](Self::record_process_abort), requests
    /// conflicting with its to-be-compensated operations wait.
    pub fn mark_aborting(&mut self, pid: ProcessId) {
        self.aborting.insert(pid);
    }

    /// Whether a process is currently aborting.
    pub fn is_aborting(&self, pid: ProcessId) -> bool {
        self.aborting.contains(&pid)
    }

    /// Gate for executing the compensation of `gid` (Lemma 2 and the
    /// Example 8 cycle): every conflicting operation executed *after* `gid`
    /// must be compensated first (if its owner is aborting) or its owner
    /// must cascade (if still running).
    pub fn compensation_gate(&self, gid: GlobalActivityId) -> CompletionGate {
        let oracle = self.spec.oracle();
        let Some(pos) = self.ops.iter().position(|r| r.gid == gid && !r.compensated) else {
            return CompletionGate::Ready;
        };
        let service = self.ops[pos].service;
        let mut wait = Vec::new();
        let mut cascade = Vec::new();
        for r in &self.ops[pos + 1..] {
            if r.gid.process == gid.process
                || r.compensated
                || r.stable
                || !oracle.conflict(r.service, service)
            {
                continue;
            }
            match self.status(r.gid.process) {
                ProtStatus::Active if self.aborting.contains(&r.gid.process) => {
                    wait.push(r.gid.process)
                }
                ProtStatus::Active => cascade.push(r.gid.process),
                _ => {}
            }
        }
        Self::gate(wait, cascade)
    }

    /// Gate for executing a forward-recovery activity of aborting process
    /// `pid` invoking `service` (Lemma 3 and §3.5's new-conflict hazard):
    /// conflicting live non-stable operations of other processes must be
    /// compensated first.
    pub fn forward_gate(&self, pid: ProcessId, service: ServiceId) -> CompletionGate {
        let oracle = self.spec.oracle();
        let base = self.spec.catalog.base(service);
        let mut wait = Vec::new();
        let mut cascade = Vec::new();
        for r in &self.ops {
            if r.gid.process == pid
                || r.compensated
                || r.stable
                || !oracle.conflict(r.service, base)
            {
                continue;
            }
            match self.status(r.gid.process) {
                ProtStatus::Active if self.aborting.contains(&r.gid.process) => {
                    wait.push(r.gid.process)
                }
                ProtStatus::Active => cascade.push(r.gid.process),
                _ => {}
            }
        }
        Self::gate(wait, cascade)
    }

    fn gate(mut wait: Vec<ProcessId>, mut cascade: Vec<ProcessId>) -> CompletionGate {
        if !cascade.is_empty() {
            cascade.sort();
            cascade.dedup();
            CompletionGate::Cascade(cascade)
        } else if !wait.is_empty() {
            wait.sort();
            wait.dedup();
            CompletionGate::WaitFor(wait)
        } else {
            CompletionGate::Ready
        }
    }

    /// Records the completion of a process abort.
    pub fn record_process_abort(
        &mut self,
        pid: ProcessId,
    ) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.status.insert(pid, ProtStatus::Aborted);
        self.aborting.remove(&pid);
        // Whatever effects the completed abort left behind (pre-boundary
        // operations and forward-recovery activities) are final.
        for rec in &mut self.ops {
            if rec.gid.process == pid && !rec.compensated {
                rec.stable = true;
            }
        }
        // Drop its unreleased deferred activities (they abort at prepare).
        if let Some(acts) = self.deferred.remove(&pid) {
            for gid in acts {
                if let Some(rec) = self.ops.iter_mut().find(|r| r.gid == gid) {
                    rec.compensated = true; // prepared-then-aborted: no effect
                }
            }
        }
        self.collect_releasable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn svc(fx: &fixtures::PaperWorld, p: u32, k: u32) -> ServiceId {
        fx.spec.service_of(fx.a(p, k)).unwrap()
    }

    #[test]
    fn independent_activities_allowed() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        assert_eq!(prot.request(ProcessId(1), svc(&fx, 1, 1)), Admission::Allow);
        prot.record_executed(fx.a(1, 1), false);
        // a2_2 does not conflict with anything executed.
        assert_eq!(prot.request(ProcessId(2), svc(&fx, 2, 2)), Admission::Allow);
    }

    #[test]
    fn conflicting_compensatable_allowed_with_dependency() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        // a2_1 conflicts a1_1 but is compensatable: allowed (Lemma 1.2).
        assert_eq!(prot.request(ProcessId(2), svc(&fx, 2, 1)), Admission::Allow);
        prot.record_executed(fx.a(2, 1), false);
        assert!(prot.edges().any(|e| e == (ProcessId(1), ProcessId(2))));
        // P₂ may not commit before P₁ (Definition 11.1).
        assert_eq!(prot.can_commit(ProcessId(2)), Err(vec![ProcessId(1)]));
        assert!(prot.can_commit(ProcessId(1)).is_ok());
    }

    #[test]
    fn non_compensatable_defers_behind_active_predecessor() {
        // The Example 8 situation: P₂'s pivot a2_3 must not commit while P₁
        // (which P₂ conflict-depends on) is active.
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        match prot.request(ProcessId(2), svc(&fx, 2, 3)) {
            Admission::AllowDeferred { blockers } => assert_eq!(blockers, vec![ProcessId(1)]),
            other => panic!("expected AllowDeferred, got {other:?}"),
        }
        prot.record_executed(fx.a(2, 3), true);
        assert_eq!(prot.deferred_of(ProcessId(2)), &[fx.a(2, 3)]);
    }

    #[test]
    fn deferred_commit_released_on_predecessor_commit() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        prot.record_executed(fx.a(2, 3), true);
        let released = prot.record_process_commit(ProcessId(1));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].0, ProcessId(2));
        assert_eq!(released[0].1, vec![fx.a(2, 3)]);
        prot.record_deferred_released(fx.a(2, 3));
        assert!(prot.deferred_of(ProcessId(2)).is_empty());
        assert!(prot.can_commit(ProcessId(2)).is_ok());
    }

    #[test]
    fn wait_policy_blocks_execution() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::DeferExecution);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        assert!(matches!(
            prot.request(ProcessId(2), svc(&fx, 2, 3)),
            Admission::Wait { .. }
        ));
    }

    #[test]
    fn cycle_rejected() {
        // a1_1 ≪ a2_1 gives P₁ → P₂; then a2_4 executing before a1_2 would
        // give P₂ → P₁ — the Figure 4(b) cycle.
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        prot.record_executed(fx.a(2, 3), true);
        prot.record_executed(fx.a(2, 4), false);
        assert!(matches!(
            prot.request(ProcessId(1), svc(&fx, 1, 2)),
            Admission::Reject { .. }
        ));
    }

    #[test]
    fn quasi_commit_allows_compensatable_conflict_without_cascade() {
        // Figure 9 / Example 10: after P₁'s pivot commits, a1_1 is stable;
        // P₃'s conflicting a3_1 is admitted, and an abort of P₁ does not
        // cascade into P₃ (a1_1 will never be compensated).
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(3));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(1, 2), false); // pivot commits: a1_1 stable
        assert_eq!(prot.request(ProcessId(3), svc(&fx, 3, 1)), Admission::Allow);
        prot.record_executed(fx.a(3, 1), false);
        // P₁ aborts: completion = a1_3⁻¹-style compensations (none here
        // touching P₃) + forward path a1_5, a1_6.
        let victims = prot.plan_abort(ProcessId(1), &[], &[svc(&fx, 1, 5), svc(&fx, 1, 6)]);
        assert!(victims.is_empty());
    }

    #[test]
    fn abort_cascades_into_conflicting_dependent() {
        // P₁ executed a1_1 (B-REC), P₃ read conflicting a3_1; P₁'s abort
        // compensates a1_1 ⇒ P₃ must cascade (the Example 8 cycle otherwise).
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(3));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(3, 1), false);
        let victims = prot.plan_abort(ProcessId(1), &[fx.a(1, 1)], &[]);
        assert_eq!(victims, vec![ProcessId(3)]);
    }

    #[test]
    fn abort_drops_prepared_activities() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        prot.record_executed(fx.a(2, 3), true);
        prot.record_process_abort(ProcessId(2));
        assert!(prot.deferred_of(ProcessId(2)).is_empty());
        assert_eq!(prot.status(ProcessId(2)), ProtStatus::Aborted);
    }

    #[test]
    fn commit_dependency_cleared_by_predecessor_abort() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        assert!(prot.can_commit(ProcessId(2)).is_err());
        prot.record_process_abort(ProcessId(1));
        assert!(prot.can_commit(ProcessId(2)).is_ok());
    }
}
